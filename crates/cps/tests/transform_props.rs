//! Property tests for the CPS transformation: size linearity, label-map
//! completeness, variable preservation, and the cps(Λ) grammar invariants
//! of Definition 3.2.

use cpsdfa_anf::AnfProgram;
use cpsdfa_cps::untransform::uncps;
use cpsdfa_cps::{cps_transform, CTermKind, CValKind, CpsProgram, VarKey};
use cpsdfa_syntax::ast::{Term, Value};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "f", "g", "x", "y"]).prop_map(str::to_owned)
}

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|n| Term::Value(Value::Num(n))),
        ident_strategy().prop_map(|x| Term::Value(Value::Var(x.into()))),
        Just(Term::Value(Value::Add1)),
        Just(Term::Value(Value::Sub1)),
        Just(Term::Loop),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (ident_strategy(), inner.clone())
                .prop_map(|(x, b)| Term::Value(Value::Lam(x.into(), Box::new(b)))),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| Term::App(Box::new(f), Box::new(a))),
            (ident_strategy(), inner.clone(), inner.clone()).prop_map(|(x, r, b)| Term::Let(
                x.into(),
                Box::new(r),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Term::If0(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn transform_size_is_linear(t in term_strategy()) {
        let p = AnfProgram::from_term(&t);
        let c = CpsProgram::from_anf(&p);
        let anf_size = p.root().size();
        let cps_size = c.root().size();
        // F adds one continuation λ per frame and one (k W) per return:
        // strictly bounded by a small constant factor.
        prop_assert!(cps_size <= 3 * anf_size + 2, "{anf_size} → {cps_size}");
        prop_assert!(cps_size >= anf_size / 2);
    }

    #[test]
    fn label_map_is_total_on_lambdas_and_frames(t in term_strategy()) {
        use cpsdfa_anf::{AnfKind, Bind};
        let p = AnfProgram::from_term(&t);
        let c = CpsProgram::from_anf(&p);
        // every source λ has a CPS image
        for l in p.lambda_labels() {
            prop_assert!(c.label_map().lam.contains_key(l));
        }
        // every frame-creating let has a continuation image
        let mut frame_lets = Vec::new();
        p.root().visit_terms(&mut |m| {
            if let AnfKind::Let { bind, .. } = &m.kind {
                if matches!(bind, Bind::App(..) | Bind::If0(..) | Bind::Loop) {
                    frame_lets.push(m.label);
                }
            }
        });
        for l in &frame_lets {
            prop_assert!(c.label_map().cont_of_let.contains_key(l), "no cont for {l}");
        }
        prop_assert_eq!(frame_lets.len(), c.label_map().cont_of_let.len());
        // and the images are exactly the program's λ/continuation universes
        prop_assert_eq!(c.label_map().lam.len(), c.lambda_labels().len());
        prop_assert_eq!(c.label_map().cont_of_let.len(), c.cont_labels().len());
    }

    #[test]
    fn uncps_inverts_the_transform_exactly(t in term_strategy()) {
        // Reference [7]'s equivalence, executable: U_k ∘ F_k = id on ANF,
        // down to variable names.
        let p = AnfProgram::from_term(&t);
        let mut gen = p.fresh_gen();
        let tx = cps_transform(p.root(), &mut gen);
        let back = uncps(&tx.root, &tx.top_k).expect("transform images invert");
        prop_assert_eq!(back.to_string(), p.root().to_string());
    }

    #[test]
    fn user_variables_survive_the_transform(t in term_strategy()) {
        let p = AnfProgram::from_term(&t);
        let c = CpsProgram::from_anf(&p);
        for (_, name) in p.iter_vars() {
            prop_assert!(
                c.user_var_id(name).is_some(),
                "source variable {name} lost by the transform"
            );
        }
    }

    #[test]
    fn cps_grammar_invariants(t in term_strategy()) {
        // Definition 3.2: user λs take exactly (x, k); every Ret names a
        // bound or top continuation variable; binders are unique.
        let p = AnfProgram::from_term(&t);
        let c = CpsProgram::from_anf(&p);
        let mut binders = std::collections::HashSet::new();
        let mut dup = false;
        let mut record = |key: VarKey| {
            dup |= !binders.insert(key);
        };
        fn walk(
            t: &cpsdfa_cps::CTerm,
            record: &mut impl FnMut(VarKey),
        ) {
            match &t.kind {
                CTermKind::Ret(_, w) => walk_val(w, record),
                CTermKind::Let { var, val, body } => {
                    record(VarKey::User(var.clone()));
                    walk_val(val, record);
                    walk(body, record);
                }
                CTermKind::Call { f, arg, cont } => {
                    walk_val(f, record);
                    walk_val(arg, record);
                    record(VarKey::User(cont.var.clone()));
                    walk(&cont.body, record);
                }
                CTermKind::LetK { k, cont, test, then_, else_ } => {
                    record(VarKey::Kont(k.clone()));
                    record(VarKey::User(cont.var.clone()));
                    walk(&cont.body, record);
                    walk_val(test, record);
                    walk(then_, record);
                    walk(else_, record);
                }
                CTermKind::Loop { cont } => {
                    record(VarKey::User(cont.var.clone()));
                    walk(&cont.body, record);
                }
            }
        }
        fn walk_val(v: &cpsdfa_cps::CVal, record: &mut impl FnMut(VarKey)) {
            if let CValKind::Lam { param, k, body } = &v.kind {
                record(VarKey::User(param.clone()));
                record(VarKey::Kont(k.clone()));
                walk(body, record);
            }
        }
        walk(c.root(), &mut record);
        prop_assert!(!dup, "duplicate binder in CPS output of {t}");
    }
}
