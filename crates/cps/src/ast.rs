//! Abstract syntax of the CPS language cps(Λ) (Definition 3.2):
//!
//! ```text
//! P ::= (k W)
//!     | (let (x W) P)
//!     | (W W (λx.P))
//!     | (let (k λx.P) (if0 W P P))
//!     | (loop (λx.P))                 ; §6.2 extension
//! W ::= n | x | add1k | sub1k | (λx k.P)
//! ```
//!
//! with `x ∈ Vars`, `k ∈ KVars`, and `KVars ∩ Vars = ∅` (enforced by the
//! [`Ident`]/[`KIdent`] types). Every node carries a [`Label`]; λ labels
//! identify abstract closures `(cle xk, P)` and continuation-λ labels
//! identify abstract continuations `(coe x, P)`.

use cpsdfa_syntax::{Ident, KIdent, Label};
use std::fmt;

/// A CPS program term `P`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CTerm {
    /// The label of this node.
    pub label: Label,
    /// The structure of the term.
    pub kind: CTermKind,
}

/// The shape of a CPS term.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum CTermKind {
    /// `(k W)` — return `W` to the continuation bound to `k`.
    Ret(KIdent, CVal),
    /// `(let (x W) P)` — bind a value.
    Let {
        /// The bound variable.
        var: Ident,
        /// The bound value.
        val: CVal,
        /// The rest of the program.
        body: Box<CTerm>,
    },
    /// `(W₁ W₂ (λx.P))` — call `W₁` with argument `W₂` and the reified
    /// continuation `(λx.P)`.
    Call {
        /// The operator.
        f: CVal,
        /// The operand.
        arg: CVal,
        /// The continuation receiving the result.
        cont: ContLam,
    },
    /// `(let (k λx.P) (if0 W P₁ P₂))` — name the join continuation `k`, then
    /// branch.
    LetK {
        /// The continuation variable naming the join point.
        k: KIdent,
        /// The join continuation `(λx.P)`.
        cont: ContLam,
        /// The tested value.
        test: CVal,
        /// Taken when `test` is `0`.
        then_: Box<CTerm>,
        /// Taken otherwise.
        else_: Box<CTerm>,
    },
    /// `(loop (λx.P))` — §6.2 extension: pass each of `{0,1,2,…}` to the
    /// continuation.
    Loop {
        /// The continuation receiving the loop's values.
        cont: ContLam,
    },
}

/// A continuation λ-abstraction `(λx.P)`; reifies an evaluation-context
/// frame `(let (x []) M)` of the source program.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ContLam {
    /// The label identifying the abstract continuation `(coe x, P)`.
    pub label: Label,
    /// The variable receiving the returned value.
    pub var: Ident,
    /// The rest of the program.
    pub body: Box<CTerm>,
}

/// A CPS value `W`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CVal {
    /// The label of this value; for λ it identifies the abstract closure.
    pub label: Label,
    /// The structure of the value.
    pub kind: CValKind,
}

/// The shape of a CPS value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum CValKind {
    /// A numeral.
    Num(i64),
    /// An ordinary variable occurrence.
    Var(Ident),
    /// The CPS successor primitive `add1k`.
    Add1K,
    /// The CPS predecessor primitive `sub1k`.
    Sub1K,
    /// A user procedure `(λx k.P)` taking an argument and a continuation.
    Lam {
        /// The ordinary parameter.
        param: Ident,
        /// The continuation parameter.
        k: KIdent,
        /// The body.
        body: Box<CTerm>,
    },
}

impl CTerm {
    /// Creates an unlabeled node (labels are assigned by the transform or
    /// the program builder).
    pub fn new(kind: CTermKind) -> Self {
        CTerm {
            label: Label::UNASSIGNED,
            kind,
        }
    }

    /// The number of nodes (terms + values + continuation λs).
    pub fn size(&self) -> usize {
        match &self.kind {
            CTermKind::Ret(_, w) => 1 + w.size(),
            CTermKind::Let { val, body, .. } => 1 + val.size() + body.size(),
            CTermKind::Call { f, arg, cont } => 1 + f.size() + arg.size() + cont.size(),
            CTermKind::LetK {
                cont,
                test,
                then_,
                else_,
                ..
            } => 1 + cont.size() + test.size() + then_.size() + else_.size(),
            CTermKind::Loop { cont } => 1 + cont.size(),
        }
    }

    /// Visits every term node, outermost first (including λ and
    /// continuation-λ bodies).
    pub fn visit_terms<'a>(&'a self, f: &mut impl FnMut(&'a CTerm)) {
        f(self);
        match &self.kind {
            CTermKind::Ret(_, w) => w.visit_inner(f),
            CTermKind::Let { val, body, .. } => {
                val.visit_inner(f);
                body.visit_terms(f);
            }
            CTermKind::Call { f: fun, arg, cont } => {
                fun.visit_inner(f);
                arg.visit_inner(f);
                cont.body.visit_terms(f);
            }
            CTermKind::LetK {
                cont,
                test,
                then_,
                else_,
                ..
            } => {
                cont.body.visit_terms(f);
                test.visit_inner(f);
                then_.visit_terms(f);
                else_.visit_terms(f);
            }
            CTermKind::Loop { cont } => cont.body.visit_terms(f),
        }
    }

    /// Visits every value node, and every continuation λ, outermost first.
    pub fn visit_parts<'a>(
        &'a self,
        on_val: &mut impl FnMut(&'a CVal),
        on_cont: &mut impl FnMut(&'a ContLam),
    ) {
        match &self.kind {
            CTermKind::Ret(_, w) => w.visit_values(on_val, on_cont),
            CTermKind::Let { val, body, .. } => {
                val.visit_values(on_val, on_cont);
                body.visit_parts(on_val, on_cont);
            }
            CTermKind::Call { f, arg, cont } => {
                f.visit_values(on_val, on_cont);
                arg.visit_values(on_val, on_cont);
                on_cont(cont);
                cont.body.visit_parts(on_val, on_cont);
            }
            CTermKind::LetK {
                cont,
                test,
                then_,
                else_,
                ..
            } => {
                on_cont(cont);
                cont.body.visit_parts(on_val, on_cont);
                test.visit_values(on_val, on_cont);
                then_.visit_parts(on_val, on_cont);
                else_.visit_parts(on_val, on_cont);
            }
            CTermKind::Loop { cont } => {
                on_cont(cont);
                cont.body.visit_parts(on_val, on_cont);
            }
        }
    }
}

impl ContLam {
    /// Creates an unlabeled continuation λ.
    pub fn new(var: Ident, body: CTerm) -> Self {
        ContLam {
            label: Label::UNASSIGNED,
            var,
            body: Box::new(body),
        }
    }

    /// The number of nodes.
    pub fn size(&self) -> usize {
        1 + self.body.size()
    }
}

impl CVal {
    /// Creates an unlabeled value node.
    pub fn new(kind: CValKind) -> Self {
        CVal {
            label: Label::UNASSIGNED,
            kind,
        }
    }

    /// The number of nodes.
    pub fn size(&self) -> usize {
        match &self.kind {
            CValKind::Lam { body, .. } => 1 + body.size(),
            _ => 1,
        }
    }

    /// True for user λ values.
    pub fn is_lambda(&self) -> bool {
        matches!(self.kind, CValKind::Lam { .. })
    }

    fn visit_inner<'a>(&'a self, f: &mut impl FnMut(&'a CTerm)) {
        if let CValKind::Lam { body, .. } = &self.kind {
            body.visit_terms(f);
        }
    }

    fn visit_values<'a>(
        &'a self,
        on_val: &mut impl FnMut(&'a CVal),
        on_cont: &mut impl FnMut(&'a ContLam),
    ) {
        on_val(self);
        if let CValKind::Lam { body, .. } = &self.kind {
            body.visit_parts(on_val, on_cont);
        }
    }
}

impl fmt::Display for CTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CTermKind::Ret(k, w) => write!(f, "({k} {w})"),
            CTermKind::Let { var, val, body } => write!(f, "(let ({var} {val}) {body})"),
            CTermKind::Call { f: fun, arg, cont } => write!(f, "({fun} {arg} {cont})"),
            CTermKind::LetK {
                k,
                cont,
                test,
                then_,
                else_,
            } => {
                write!(f, "(let ({k} {cont}) (if0 {test} {then_} {else_}))")
            }
            CTermKind::Loop { cont } => write!(f, "(loop {cont})"),
        }
    }
}

impl fmt::Display for ContLam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(lambda ({}) {})", self.var, self.body)
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CValKind::Num(n) => write!(f, "{n}"),
            CValKind::Var(x) => write!(f, "{x}"),
            CValKind::Add1K => f.write_str("add1k"),
            CValKind::Sub1K => f.write_str("sub1k"),
            CValKind::Lam { param, k, body } => write!(f, "(lambda ({param} {k}) {body})"),
        }
    }
}

impl fmt::Debug for CTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self, self.label)
    }
}

impl fmt::Debug for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self, self.label)
    }
}

impl fmt::Debug for ContLam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ret(k: &str, w: CVal) -> CTerm {
        CTerm::new(CTermKind::Ret(KIdent::new(k), w))
    }

    #[test]
    fn display_matches_paper_syntax() {
        // (f 1 (lambda (a) (k a)))
        let t = CTerm::new(CTermKind::Call {
            f: CVal::new(CValKind::Var(Ident::new("f"))),
            arg: CVal::new(CValKind::Num(1)),
            cont: ContLam::new(
                Ident::new("a"),
                ret("k", CVal::new(CValKind::Var(Ident::new("a")))),
            ),
        });
        assert_eq!(t.to_string(), "(f 1 (lambda (a) (k a)))");
    }

    #[test]
    fn letk_displays_as_let_then_if0() {
        let t = CTerm::new(CTermKind::LetK {
            k: KIdent::new("k1"),
            cont: ContLam::new(
                Ident::new("x"),
                ret("k", CVal::new(CValKind::Var(Ident::new("x")))),
            ),
            test: CVal::new(CValKind::Var(Ident::new("z"))),
            then_: Box::new(ret("k1", CVal::new(CValKind::Num(0)))),
            else_: Box::new(ret("k1", CVal::new(CValKind::Num(1)))),
        });
        assert_eq!(
            t.to_string(),
            "(let (k1 (lambda (x) (k x))) (if0 z (k1 0) (k1 1)))"
        );
    }

    #[test]
    fn size_counts_conts_and_lambdas() {
        let lam = CVal::new(CValKind::Lam {
            param: Ident::new("x"),
            k: KIdent::new("k"),
            body: Box::new(ret("k", CVal::new(CValKind::Var(Ident::new("x"))))),
        });
        assert_eq!(lam.size(), 1 + 2); // λ + ret + var
    }

    #[test]
    fn visit_parts_sees_every_cont() {
        let t = CTerm::new(CTermKind::Call {
            f: CVal::new(CValKind::Var(Ident::new("f"))),
            arg: CVal::new(CValKind::Num(1)),
            cont: ContLam::new(
                Ident::new("a"),
                CTerm::new(CTermKind::Loop {
                    cont: ContLam::new(
                        Ident::new("b"),
                        ret("k", CVal::new(CValKind::Var(Ident::new("b")))),
                    ),
                }),
            ),
        });
        let mut conts = 0;
        let mut vals = 0;
        t.visit_parts(&mut |_| vals += 1, &mut |_| conts += 1);
        assert_eq!(conts, 2);
        assert_eq!(vals, 3); // f, 1, b
    }
}
