//! The CPS language cps(Λ) and the syntactic CPS transformation (§3.3,
//! Definition 3.2) of Sabry & Felleisen (PLDI 1994).
//!
//! A CPS program never returns: every source-program "return" becomes an
//! application of a reified continuation. The transformation `F`/`V` maps
//! the restricted subset of Λ (see `cpsdfa-anf`) into cps(Λ); this crate
//! also records the program-point correspondence ([`transform::LabelMap`])
//! needed by the paper's δ function (§3.3) and its abstract version δₑ (§5).
//!
//! ```
//! use cpsdfa_anf::AnfProgram;
//! use cpsdfa_cps::CpsProgram;
//!
//! let p = AnfProgram::parse("(let (a1 (f 1)) (let (a2 (f 2)) a1))")?;
//! let c = CpsProgram::from_anf(&p);
//! // F_k[(let (a1 (f 1)) (let (a2 (f 2)) a1))] = (f 1 (λa1.(f 2 (λa2.(k a1)))))
//! assert_eq!(
//!     c.root().to_string(),
//!     format!("(f 1 (lambda (a1) (f 2 (lambda (a2) ({} a1)))))", c.top_k())
//! );
//! # Ok::<(), cpsdfa_syntax::parse::ParseError>(())
//! ```

pub mod arena;
pub mod ast;
pub mod program;
pub mod transform;
pub mod untransform;

pub use arena::{cps_transform_arena, CTermId, CpsArena, TransformedArena};
pub use ast::{CTerm, CTermKind, CVal, CValKind, ContLam};
pub use program::{CLambdaRef, CVarId, ContRef, CpsProgram, VarKey};
pub use transform::{cps_transform, LabelMap, Transformed};
pub use untransform::{uncps, UntransformError};
