//! The syntactic CPS transformation `F`/`V` of Definition 3.2.
//!
//! ```text
//! F_k[V]                          = (k V[V])
//! F_k[(let (x V) M)]              = (let (x V[V]) F_k[M])
//! F_k[(let (x (V₁ V₂)) M)]        = (V[V₁] V[V₂] (λx. F_k[M]))
//! F_k[(let (x (if0 V₀ M₁ M₂)) M)] = (let (k′ λx.F_k[M]) (if0 V[V₀] F_k′[M₁] F_k′[M₂]))
//! F_k[(let (x (loop)) M)]         = (loop (λx. F_k[M]))        ; extension
//!
//! V[n] = n   V[x] = x   V[add1] = add1k   V[sub1] = sub1k
//! V[(λx.M)] = (λx k. F_k[M])
//! ```
//!
//! The transformer also produces a [`LabelMap`] relating source program
//! points to CPS program points — the computational content of the paper's
//! function δ (§3.3) and its abstract version δₑ (§5): every source λ maps
//! to its CPS λ, and every source frame-creating `let` (an application,
//! conditional, or loop binding) maps to the continuation λ that reifies its
//! frame `(let (x []) M)`.

use crate::ast::{CTerm, CTermKind, CVal, CValKind, ContLam};
use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, Bind};
use cpsdfa_syntax::fxhash::FxHashMap;
use cpsdfa_syntax::label::LabelGen;
use cpsdfa_syntax::{FreshGen, KIdent, Label};

/// The correspondence between source and CPS program points.
#[derive(Debug, Default, Clone)]
pub struct LabelMap {
    /// Source λ label → CPS λ label (`δ` on closures).
    pub lam: FxHashMap<Label, Label>,
    /// CPS λ label → source λ label.
    pub lam_rev: FxHashMap<Label, Label>,
    /// Source frame-creating `let` label → continuation-λ label (`δ` on
    /// continuation frames).
    pub cont_of_let: FxHashMap<Label, Label>,
    /// Continuation-λ label → source `let` label.
    pub cont_rev: FxHashMap<Label, Label>,
}

impl LabelMap {
    /// Reserves room for about `n` entries in each direction.
    pub(crate) fn reserve(&mut self, n: usize) {
        self.lam.reserve(n);
        self.lam_rev.reserve(n);
        self.cont_of_let.reserve(n);
        self.cont_rev.reserve(n);
    }

    pub(crate) fn record_lam(&mut self, src: Label, cps: Label) {
        self.lam.insert(src, cps);
        self.lam_rev.insert(cps, src);
    }

    pub(crate) fn record_cont(&mut self, src_let: Label, cps_cont: Label) {
        self.cont_of_let.insert(src_let, cps_cont);
        self.cont_rev.insert(cps_cont, src_let);
    }
}

/// The output of the CPS transformation.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The CPS program `F_k₀[M]` with labels assigned.
    pub root: CTerm,
    /// The initial continuation variable `k₀` (bound to `stop` at startup).
    pub top_k: KIdent,
    /// Source ↔ CPS program-point correspondence.
    pub labels: LabelMap,
    /// Number of CPS labels assigned (`0..count`).
    pub label_count: u32,
}

/// Transforms a (labeled) ANF term into CPS. `fresh` supplies continuation
/// variable names; pass [`cpsdfa_anf::AnfProgram::fresh_gen`] so generated
/// names cannot collide with program variables.
pub fn cps_transform(root: &Anf, fresh: &mut FreshGen) -> Transformed {
    let mut tx = Tx {
        labels: LabelGen::new(),
        map: LabelMap::default(),
        fresh,
    };
    let top_k = tx.fresh.fresh_k("k");
    let root = tx.term(root, &top_k);
    Transformed {
        root,
        top_k,
        labels: tx.map,
        label_count: tx.labels.count(),
    }
}

struct Tx<'g> {
    labels: LabelGen,
    map: LabelMap,
    fresh: &'g mut FreshGen,
}

impl Tx<'_> {
    fn term(&mut self, m: &Anf, k: &KIdent) -> CTerm {
        match &m.kind {
            AnfKind::Value(v) => {
                let w = self.value(v);
                self.mk(CTermKind::Ret(k.clone(), w))
            }
            AnfKind::Let { var, bind, body } => match bind {
                Bind::Value(v) => {
                    let w = self.value(v);
                    let body = self.term(body, k);
                    self.mk(CTermKind::Let {
                        var: var.clone(),
                        val: w,
                        body: Box::new(body),
                    })
                }
                Bind::App(f, a) => {
                    let wf = self.value(f);
                    let wa = self.value(a);
                    let cont = self.cont(m.label, var, body, k);
                    self.mk(CTermKind::Call {
                        f: wf,
                        arg: wa,
                        cont,
                    })
                }
                Bind::If0(c, then_, else_) => {
                    let wc = self.value(c);
                    let kp = self.fresh.fresh_k("k");
                    let cont = self.cont(m.label, var, body, k);
                    let then_ = self.term(then_, &kp);
                    let else_ = self.term(else_, &kp);
                    self.mk(CTermKind::LetK {
                        k: kp,
                        cont,
                        test: wc,
                        then_: Box::new(then_),
                        else_: Box::new(else_),
                    })
                }
                Bind::Loop => {
                    let cont = self.cont(m.label, var, body, k);
                    self.mk(CTermKind::Loop { cont })
                }
            },
        }
    }

    /// Builds the continuation λ reifying the frame `(let (x []) M)` whose
    /// source `let` has label `src_let`.
    fn cont(
        &mut self,
        src_let: Label,
        var: &cpsdfa_syntax::Ident,
        body: &Anf,
        k: &KIdent,
    ) -> ContLam {
        let label = self.labels.next();
        self.map.record_cont(src_let, label);
        let body = self.term(body, k);
        ContLam {
            label,
            var: var.clone(),
            body: Box::new(body),
        }
    }

    fn value(&mut self, v: &AVal) -> CVal {
        let label = self.labels.next();
        let kind = match &v.kind {
            AValKind::Num(n) => CValKind::Num(*n),
            AValKind::Var(x) => CValKind::Var(x.clone()),
            AValKind::Add1 => CValKind::Add1K,
            AValKind::Sub1 => CValKind::Sub1K,
            AValKind::Lam(x, body) => {
                self.map.record_lam(v.label, label);
                let k = self.fresh.fresh_k("k");
                let body = self.term(body, &k);
                CValKind::Lam {
                    param: x.clone(),
                    k,
                    body: Box::new(body),
                }
            }
        };
        CVal { label, kind }
    }

    fn mk(&mut self, kind: CTermKind) -> CTerm {
        CTerm {
            label: self.labels.next(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_anf::AnfProgram;

    fn tx(src: &str) -> (AnfProgram, Transformed) {
        let p = AnfProgram::parse(src).unwrap();
        let mut fresh = p.fresh_gen();
        let t = cps_transform(p.root(), &mut fresh);
        (p, t)
    }

    #[test]
    fn value_returns_to_top_continuation() {
        let (_, t) = tx("42");
        assert_eq!(t.root.to_string(), format!("({} 42)", t.top_k));
    }

    #[test]
    fn let_value_stays_a_let() {
        let (_, t) = tx("(let (x 1) x)");
        assert_eq!(t.root.to_string(), format!("(let (x 1) ({} x))", t.top_k));
    }

    #[test]
    fn application_reifies_frame() {
        let (_, t) = tx("(let (a (f 1)) a)");
        assert_eq!(
            t.root.to_string(),
            format!("(f 1 (lambda (a) ({} a)))", t.top_k)
        );
    }

    #[test]
    fn theorem_51_shape() {
        // F_k[(let (a1 (f 1)) (let (a2 (f 2)) a1))]
        //   = (f 1 (λa1.(f 2 (λa2.(k a1)))))
        let (_, t) = tx("(let (a1 (f 1)) (let (a2 (f 2)) a1))");
        assert_eq!(
            t.root.to_string(),
            format!("(f 1 (lambda (a1) (f 2 (lambda (a2) ({} a1)))))", t.top_k)
        );
    }

    #[test]
    fn conditional_names_join_continuation() {
        let (_, t) = tx("(let (a (if0 z 0 1)) a)");
        let s = t.root.to_string();
        // (let (k%N (lambda (a) (k%M a))) (if0 z (k%N 0) (k%N 1)))
        assert!(s.starts_with("(let (k%"), "{s}");
        assert!(s.contains("(if0 z (k%"), "{s}");
    }

    #[test]
    fn lambda_gets_continuation_parameter() {
        let (_, t) = tx("(lambda (x) x)");
        let s = t.root.to_string();
        assert!(s.contains("(lambda (x k%"), "{s}");
    }

    #[test]
    fn label_map_covers_every_lambda_and_frame() {
        let (p, t) = tx("(let (f (lambda (x) x)) (let (a (f 1)) (let (b (if0 a 0 1)) b)))");
        // one λ
        assert_eq!(t.labels.lam.len(), 1);
        for l in p.lambda_labels() {
            assert!(t.labels.lam.contains_key(l));
        }
        // two frames: the application let and the if0 let
        assert_eq!(t.labels.cont_of_let.len(), 2);
        // reverse maps are inverses
        for (src, cps) in &t.labels.lam {
            assert_eq!(t.labels.lam_rev[cps], *src);
        }
        for (src, cps) in &t.labels.cont_of_let {
            assert_eq!(t.labels.cont_rev[cps], *src);
        }
    }

    #[test]
    fn loop_extension_transforms() {
        let (_, t) = tx("(let (x (loop)) x)");
        assert_eq!(
            t.root.to_string(),
            format!("(loop (lambda (x) ({} x)))", t.top_k)
        );
    }

    #[test]
    fn labels_are_assigned_everywhere() {
        let (_, t) = tx("(let (f (lambda (x) (add1 x))) (let (a (f 1)) (let (b (if0 a 0 1)) b)))");
        t.root.visit_terms(&mut |n| assert!(n.label.is_assigned()));
        let mut all = std::collections::HashSet::new();
        t.root.visit_terms(&mut |n| {
            assert!(all.insert(n.label), "duplicate {}", n.label);
        });
        let (mut val_labels, mut cont_labels) = (Vec::new(), Vec::new());
        t.root
            .visit_parts(&mut |v| val_labels.push(v.label), &mut |c| {
                cont_labels.push(c.label)
            });
        for l in val_labels.into_iter().chain(cont_labels) {
            assert!(l.is_assigned());
            assert!(all.insert(l), "duplicate {l}");
        }
        assert_eq!(all.len() as u32, t.label_count);
    }
}
