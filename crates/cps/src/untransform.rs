//! The inverse of the CPS transformation, on its image.
//!
//! The companion paper ("The Essence of Compiling with Continuations",
//! Flanagan et al. 1993 — reference \[7\]) showed that compiling with CPS
//! is equivalent to compiling with A-normal forms because the CPS
//! translation is *invertible* on administratively-normalized programs.
//! This module implements that inverse for the images of
//! [`cps_transform`](crate::transform::cps_transform):
//!
//! ```text
//! U_k[(k W)]                        = U[W]                (return to the named k)
//! U_k[(let (x W) P)]                = (let (x U[W]) U_k[P])
//! U_k[(W₁ W₂ (λx.P))]              = (let (x (U[W₁] U[W₂])) U_k[P])
//! U_k[(let (k′ λx.P) (if0 W P₁ P₂))] = (let (x (if0 U[W] U_k′[P₁] U_k′[P₂])) U_k[P])
//! U_k[(loop (λx.P))]                = (let (x (loop)) U_k[P])
//! U[(λx k.P)]                      = (λx. U_k[P])
//! ```
//!
//! On arbitrary cps(Λ) terms the shape conditions can fail (e.g. a branch
//! that does not return through its join continuation); those cases report
//! a structured [`UntransformError`]. The round-trip property
//! `uncps(F_k[M]) = M` (exactly, including variable names) is checked by
//! property tests.

use crate::ast::{CTerm, CTermKind, CVal, CValKind};
use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, Bind};
use cpsdfa_syntax::KIdent;
use std::error::Error;
use std::fmt;

/// Errors recovering a direct-style program from a CPS term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UntransformError {
    /// A `(k W)` return names a continuation other than the current one —
    /// the term is not an image of the transformation.
    WrongContinuation {
        /// The continuation that was expected.
        expected: String,
        /// The continuation that was found.
        found: String,
    },
}

impl fmt::Display for UntransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UntransformError::WrongContinuation { expected, found } => write!(
                f,
                "return through `{found}` where `{expected}` was expected: not a CPS image"
            ),
        }
    }
}

impl Error for UntransformError {}

/// Recovers the A-normal-form source of a CPS term produced by
/// [`cps_transform`](crate::transform::cps_transform) with top continuation
/// `top_k`. The result is unlabeled; rebuild an
/// [`AnfProgram`](cpsdfa_anf::AnfProgram) with
/// [`AnfProgram::from_root`](cpsdfa_anf::AnfProgram::from_root) if labels
/// are needed.
///
/// # Errors
///
/// [`UntransformError`] if the term is not in the image of the
/// transformation.
///
/// ```
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_cps::{cps_transform, untransform::uncps};
///
/// let p = AnfProgram::parse("(let (a1 (f 1)) (let (a2 (if0 a1 0 1)) a2))")?;
/// let mut gen = p.fresh_gen();
/// let t = cps_transform(p.root(), &mut gen);
/// let back = uncps(&t.root, &t.top_k)?;
/// assert_eq!(back.to_string(), p.root().to_string());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn uncps(term: &CTerm, top_k: &KIdent) -> Result<Anf, UntransformError> {
    term_back(term, top_k)
}

fn term_back(p: &CTerm, k: &KIdent) -> Result<Anf, UntransformError> {
    match &p.kind {
        CTermKind::Ret(k2, w) => {
            if k2 != k {
                return Err(UntransformError::WrongContinuation {
                    expected: k.to_string(),
                    found: k2.to_string(),
                });
            }
            Ok(Anf::new(AnfKind::Value(value_back(w)?)))
        }
        CTermKind::Let { var, val, body } => {
            let v = value_back(val)?;
            let body = term_back(body, k)?;
            Ok(Anf::new(AnfKind::Let {
                var: var.clone(),
                bind: Bind::Value(v),
                body: Box::new(body),
            }))
        }
        CTermKind::Call { f, arg, cont } => {
            let fv = value_back(f)?;
            let av = value_back(arg)?;
            let body = term_back(&cont.body, k)?;
            Ok(Anf::new(AnfKind::Let {
                var: cont.var.clone(),
                bind: Bind::App(fv, av),
                body: Box::new(body),
            }))
        }
        CTermKind::LetK {
            k: kp,
            cont,
            test,
            then_,
            else_,
        } => {
            let c = value_back(test)?;
            let t = term_back(then_, kp)?;
            let e = term_back(else_, kp)?;
            let body = term_back(&cont.body, k)?;
            Ok(Anf::new(AnfKind::Let {
                var: cont.var.clone(),
                bind: Bind::If0(c, Box::new(t), Box::new(e)),
                body: Box::new(body),
            }))
        }
        CTermKind::Loop { cont } => {
            let body = term_back(&cont.body, k)?;
            Ok(Anf::new(AnfKind::Let {
                var: cont.var.clone(),
                bind: Bind::Loop,
                body: Box::new(body),
            }))
        }
    }
}

fn value_back(w: &CVal) -> Result<AVal, UntransformError> {
    Ok(AVal::new(match &w.kind {
        CValKind::Num(n) => AValKind::Num(*n),
        CValKind::Var(x) => AValKind::Var(x.clone()),
        CValKind::Add1K => AValKind::Add1,
        CValKind::Sub1K => AValKind::Sub1,
        CValKind::Lam { param, k, body } => {
            let body = term_back(body, k)?;
            AValKind::Lam(param.clone(), Box::new(body))
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::cps_transform;
    use cpsdfa_anf::AnfProgram;

    fn roundtrip(src: &str) -> (String, String) {
        let p = AnfProgram::parse(src).unwrap();
        let mut gen = p.fresh_gen();
        let t = cps_transform(p.root(), &mut gen);
        let back = uncps(&t.root, &t.top_k).unwrap();
        (p.root().to_string(), back.to_string())
    }

    #[test]
    fn roundtrips_exactly_on_samples() {
        for src in [
            "42",
            "(let (x 1) x)",
            "(let (a (f 1)) a)",
            "(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))",
            "(let (a (if0 z 0 1)) (add1 a))",
            "(let (x (loop)) x)",
            "(let (g (lambda (h) (h 3))) (g (lambda (y) (add1 y))))",
        ] {
            let (orig, back) = roundtrip(src);
            assert_eq!(orig, back, "round-trip failed for {src}");
        }
    }

    #[test]
    fn rejects_non_images() {
        // (k1 x) under expected continuation k0: a "wrong" return.
        use cpsdfa_syntax::{Ident, KIdent};
        let bad = CTerm::new(CTermKind::Ret(
            KIdent::new("k1"),
            CVal::new(CValKind::Var(Ident::new("x"))),
        ));
        let err = uncps(&bad, &KIdent::new("k0")).unwrap_err();
        assert!(matches!(err, UntransformError::WrongContinuation { .. }));
        assert!(err.to_string().contains("k1"));
    }
}
