//! A flat, arena-backed representation of CPS programs, and the arena CPS
//! transform that produces it.
//!
//! [`CpsArena`] stores every CPS term, value, and continuation-λ node in
//! flat vectors indexed by [`CTermId`]/[`CValId`]/[`ContId`]. Like the ANF
//! arena (and unlike the hash-consed Λ [`TermArena`]), nodes are *not*
//! deduplicated: every node carries a [`Label`] unique to its occurrence.
//!
//! [`cps_transform_arena`] mirrors the boxed
//! [`cps_transform`](crate::transform::cps_transform) exactly — the same
//! interleaving of label draws and fresh continuation names (continuation
//! labels before their bodies, value labels before λ bodies, term labels
//! after their children) — so the materialized output, the [`LabelMap`],
//! and the label count are all bit-identical to the boxed transform's.
//! Differential corpus tests pin this down.
//!
//! [`TermArena`]: cpsdfa_syntax::arena::TermArena

use crate::ast::{CTerm, CTermKind, CVal, CValKind, ContLam};
use crate::transform::LabelMap;
use cpsdfa_anf::arena::{AValId, AValNodeKind, AnfArena, AnfId, AnfNodeKind, BindNode};
use cpsdfa_syntax::label::LabelGen;
use cpsdfa_syntax::{FreshGen, Ident, KIdent, Label};

/// Dense handle of a CPS term node in a [`CpsArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CTermId(u32);

impl CTermId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense handle of a CPS value node in a [`CpsArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CValId(u32);

impl CValId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense handle of a continuation-λ node in a [`CpsArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContId(u32);

impl ContId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena CPS term node.
#[derive(Clone, Debug)]
pub struct CTermNode {
    /// The program-point label.
    pub label: Label,
    /// The structure of the term.
    pub kind: CTermNodeKind,
}

/// The shape of an arena CPS term.
#[derive(Clone, Debug)]
pub enum CTermNodeKind {
    /// `(k V)` — return `V` to continuation `k`.
    Ret(KIdent, CValId),
    /// `(let (x V) P)`.
    Let {
        /// The bound variable.
        var: Ident,
        /// The bound value.
        val: CValId,
        /// The body.
        body: CTermId,
    },
    /// `(V V (λx.P))` — call with reified continuation.
    Call {
        /// The operator.
        f: CValId,
        /// The operand.
        arg: CValId,
        /// The continuation receiving the result.
        cont: ContId,
    },
    /// `(let (k (λx.P)) (if0 V P₁ P₂))` — named join continuation.
    LetK {
        /// The continuation variable.
        k: KIdent,
        /// The join continuation.
        cont: ContId,
        /// The tested value.
        test: CValId,
        /// Taken when the test is zero.
        then_: CTermId,
        /// Taken otherwise.
        else_: CTermId,
    },
    /// `(loop (λx.P))` — the §6.2 extension.
    Loop {
        /// The continuation receiving each of `{0, 1, 2, …}`.
        cont: ContId,
    },
}

/// An arena continuation-λ node `(λx.P)`.
#[derive(Clone, Debug)]
pub struct ContNode {
    /// The label (identity of the abstract continuation `(coe x, P)`).
    pub label: Label,
    /// The variable receiving the returned value.
    pub var: Ident,
    /// The body.
    pub body: CTermId,
}

/// An arena CPS value node.
#[derive(Clone, Debug)]
pub struct CValNode {
    /// The label (for λ this identifies the abstract closure).
    pub label: Label,
    /// The structure of the value.
    pub kind: CValNodeKind,
}

/// The shape of an arena CPS value.
#[derive(Clone, Debug)]
pub enum CValNodeKind {
    /// A numeral.
    Num(i64),
    /// A variable occurrence.
    Var(Ident),
    /// CPS successor.
    Add1K,
    /// CPS predecessor.
    Sub1K,
    /// `(λx k.P)`.
    Lam {
        /// The ordinary parameter.
        param: Ident,
        /// The continuation parameter.
        k: KIdent,
        /// The body.
        body: CTermId,
    },
}

/// A flat per-program arena of CPS nodes. Append-only; ids never move.
#[derive(Clone, Default, Debug)]
pub struct CpsArena {
    terms: Vec<CTermNode>,
    values: Vec<CValNode>,
    conts: Vec<ContNode>,
}

impl CpsArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a labeled term node.
    pub fn push_term(&mut self, label: Label, kind: CTermNodeKind) -> CTermId {
        let id = u32::try_from(self.terms.len()).expect("CPS arena overflow");
        self.terms.push(CTermNode { label, kind });
        CTermId(id)
    }

    /// Appends a labeled value node.
    pub fn push_value(&mut self, label: Label, kind: CValNodeKind) -> CValId {
        let id = u32::try_from(self.values.len()).expect("CPS arena overflow");
        self.values.push(CValNode { label, kind });
        CValId(id)
    }

    /// Appends a labeled continuation node.
    pub fn push_cont(&mut self, label: Label, var: Ident, body: CTermId) -> ContId {
        let id = u32::try_from(self.conts.len()).expect("CPS arena overflow");
        self.conts.push(ContNode { label, var, body });
        ContId(id)
    }

    /// The node behind a term id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn term(&self, id: CTermId) -> &CTermNode {
        &self.terms[id.index()]
    }

    /// The node behind a value id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn value(&self, id: CValId) -> &CValNode {
        &self.values[id.index()]
    }

    /// The node behind a continuation id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn cont(&self, id: ContId) -> &ContNode {
        &self.conts[id.index()]
    }

    /// Total nodes stored (terms + values + continuations).
    pub fn num_nodes(&self) -> usize {
        self.terms.len() + self.values.len() + self.conts.len()
    }

    /// Approximate heap footprint of the node storage in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.terms.capacity() * std::mem::size_of::<CTermNode>()
            + self.values.capacity() * std::mem::size_of::<CValNode>()
            + self.conts.capacity() * std::mem::size_of::<ContNode>()
    }

    /// Materializes the boxed tree for `id`, labels included.
    pub fn to_cterm(&self, id: CTermId) -> CTerm {
        let node = self.term(id);
        let kind = match &node.kind {
            CTermNodeKind::Ret(k, w) => CTermKind::Ret(k.clone(), self.to_cval(*w)),
            CTermNodeKind::Let { var, val, body } => CTermKind::Let {
                var: var.clone(),
                val: self.to_cval(*val),
                body: Box::new(self.to_cterm(*body)),
            },
            CTermNodeKind::Call { f, arg, cont } => CTermKind::Call {
                f: self.to_cval(*f),
                arg: self.to_cval(*arg),
                cont: self.to_contlam(*cont),
            },
            CTermNodeKind::LetK {
                k,
                cont,
                test,
                then_,
                else_,
            } => CTermKind::LetK {
                k: k.clone(),
                cont: self.to_contlam(*cont),
                test: self.to_cval(*test),
                then_: Box::new(self.to_cterm(*then_)),
                else_: Box::new(self.to_cterm(*else_)),
            },
            CTermNodeKind::Loop { cont } => CTermKind::Loop {
                cont: self.to_contlam(*cont),
            },
        };
        CTerm {
            label: node.label,
            kind,
        }
    }

    fn to_cval(&self, id: CValId) -> CVal {
        let node = self.value(id);
        let kind = match &node.kind {
            CValNodeKind::Num(n) => CValKind::Num(*n),
            CValNodeKind::Var(x) => CValKind::Var(x.clone()),
            CValNodeKind::Add1K => CValKind::Add1K,
            CValNodeKind::Sub1K => CValKind::Sub1K,
            CValNodeKind::Lam { param, k, body } => CValKind::Lam {
                param: param.clone(),
                k: k.clone(),
                body: Box::new(self.to_cterm(*body)),
            },
        };
        CVal {
            label: node.label,
            kind,
        }
    }

    fn to_contlam(&self, id: ContId) -> ContLam {
        let node = self.cont(id);
        ContLam {
            label: node.label,
            var: node.var.clone(),
            body: Box::new(self.to_cterm(node.body)),
        }
    }

    /// Imports a boxed tree, copying its labels verbatim. Used when a
    /// program is hand-built from boxed nodes rather than transformed.
    pub fn from_cterm(&mut self, t: &CTerm) -> CTermId {
        let kind = match &t.kind {
            CTermKind::Ret(k, w) => CTermNodeKind::Ret(k.clone(), self.import_cval(w)),
            CTermKind::Let { var, val, body } => CTermNodeKind::Let {
                var: var.clone(),
                val: self.import_cval(val),
                body: self.from_cterm(body),
            },
            CTermKind::Call { f, arg, cont } => CTermNodeKind::Call {
                f: self.import_cval(f),
                arg: self.import_cval(arg),
                cont: self.import_contlam(cont),
            },
            CTermKind::LetK {
                k,
                cont,
                test,
                then_,
                else_,
            } => CTermNodeKind::LetK {
                k: k.clone(),
                cont: self.import_contlam(cont),
                test: self.import_cval(test),
                then_: self.from_cterm(then_),
                else_: self.from_cterm(else_),
            },
            CTermKind::Loop { cont } => CTermNodeKind::Loop {
                cont: self.import_contlam(cont),
            },
        };
        self.push_term(t.label, kind)
    }

    fn import_cval(&mut self, v: &CVal) -> CValId {
        let kind = match &v.kind {
            CValKind::Num(n) => CValNodeKind::Num(*n),
            CValKind::Var(x) => CValNodeKind::Var(x.clone()),
            CValKind::Add1K => CValNodeKind::Add1K,
            CValKind::Sub1K => CValNodeKind::Sub1K,
            CValKind::Lam { param, k, body } => CValNodeKind::Lam {
                param: param.clone(),
                k: k.clone(),
                body: self.from_cterm(body),
            },
        };
        self.push_value(v.label, kind)
    }

    fn import_contlam(&mut self, c: &ContLam) -> ContId {
        let body = self.from_cterm(&c.body);
        self.push_cont(c.label, c.var.clone(), body)
    }
}

/// The output of the arena CPS transformation.
#[derive(Debug, Clone)]
pub struct TransformedArena {
    /// The arena holding the CPS program.
    pub arena: CpsArena,
    /// The root term id.
    pub root: CTermId,
    /// The initial continuation variable `k₀`.
    pub top_k: KIdent,
    /// Source ↔ CPS program-point correspondence.
    pub labels: LabelMap,
    /// Number of CPS labels assigned (`0..count`).
    pub label_count: u32,
}

/// Transforms an arena ANF term into an arena CPS program. Mirror of the
/// boxed [`cps_transform`](crate::transform::cps_transform): identical
/// label draws, fresh-name draws, and [`LabelMap`] entries, so
/// materializing the result is byte-identical to the boxed transform.
pub fn cps_transform_arena(anf: &AnfArena, root: AnfId, fresh: &mut FreshGen) -> TransformedArena {
    let mut out = CpsArena::new();
    // The transform emits roughly one CPS term per ANF term, one value per
    // ANF value, and a continuation per frame-creating let; seeding the
    // vectors skips the early doublings without over-reserving.
    out.terms.reserve(anf.num_terms());
    out.values.reserve(anf.num_values());
    out.conts.reserve(anf.num_terms() / 2);
    let mut map = LabelMap::default();
    map.reserve(anf.num_terms() / 2);
    let mut tx = TxA {
        anf,
        labels: LabelGen::new(),
        map,
        fresh: fresh.clone(),
        out,
    };
    let top_k = tx.fresh.fresh_k("k");
    let root = tx.term(root, &top_k);
    *fresh = tx.fresh;
    TransformedArena {
        arena: tx.out,
        root,
        top_k,
        labels: tx.map,
        label_count: tx.labels.count(),
    }
}

struct TxA<'a> {
    anf: &'a AnfArena,
    labels: LabelGen,
    map: LabelMap,
    fresh: FreshGen,
    out: CpsArena,
}

impl TxA<'_> {
    fn term(&mut self, m: AnfId, k: &KIdent) -> CTermId {
        let node = self.anf.term(m).clone();
        match node.kind {
            AnfNodeKind::Value(v) => {
                let w = self.value(v);
                self.mk(CTermNodeKind::Ret(k.clone(), w))
            }
            AnfNodeKind::Let { var, bind, body } => match bind {
                BindNode::Value(v) => {
                    let w = self.value(v);
                    let body = self.term(body, k);
                    self.mk(CTermNodeKind::Let { var, val: w, body })
                }
                BindNode::App(f, a) => {
                    let wf = self.value(f);
                    let wa = self.value(a);
                    let cont = self.cont(node.label, &var, body, k);
                    self.mk(CTermNodeKind::Call {
                        f: wf,
                        arg: wa,
                        cont,
                    })
                }
                BindNode::If0(c, then_, else_) => {
                    let wc = self.value(c);
                    let kp = self.fresh.fresh_k("k");
                    let cont = self.cont(node.label, &var, body, k);
                    let then_ = self.term(then_, &kp);
                    let else_ = self.term(else_, &kp);
                    self.mk(CTermNodeKind::LetK {
                        k: kp,
                        cont,
                        test: wc,
                        then_,
                        else_,
                    })
                }
                BindNode::Loop => {
                    let cont = self.cont(node.label, &var, body, k);
                    self.mk(CTermNodeKind::Loop { cont })
                }
            },
        }
    }

    /// Builds the continuation λ reifying the frame `(let (x []) M)` whose
    /// source `let` has label `src_let`.
    fn cont(&mut self, src_let: Label, var: &Ident, body: AnfId, k: &KIdent) -> ContId {
        let label = self.labels.next();
        self.map.record_cont(src_let, label);
        let body = self.term(body, k);
        self.out.push_cont(label, var.clone(), body)
    }

    fn value(&mut self, v: AValId) -> CValId {
        let node = self.anf.value(v).clone();
        let label = self.labels.next();
        let kind = match node.kind {
            AValNodeKind::Num(n) => CValNodeKind::Num(n),
            AValNodeKind::Var(x) => CValNodeKind::Var(x),
            AValNodeKind::Add1 => CValNodeKind::Add1K,
            AValNodeKind::Sub1 => CValNodeKind::Sub1K,
            AValNodeKind::Lam(x, body) => {
                self.map.record_lam(node.label, label);
                let k = self.fresh.fresh_k("k");
                let body = self.term(body, &k);
                CValNodeKind::Lam { param: x, k, body }
            }
        };
        self.out.push_value(label, kind)
    }

    fn mk(&mut self, kind: CTermNodeKind) -> CTermId {
        let label = self.labels.next();
        self.out.push_term(label, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::cps_transform;
    use cpsdfa_anf::AnfProgram;

    /// Both transforms, same ANF program; printed forms, label maps, and
    /// label counts must agree.
    fn check(src: &str) {
        let p = AnfProgram::parse(src).unwrap();

        let mut boxed_fresh = p.fresh_gen();
        let boxed = cps_transform(p.root(), &mut boxed_fresh);

        let mut arena_fresh = p.fresh_gen();
        let t = cps_transform_arena(p.arena(), p.root_id(), &mut arena_fresh);

        let materialized = t.arena.to_cterm(t.root);
        assert_eq!(
            materialized.to_string(),
            boxed.root.to_string(),
            "transforms disagree on {src}"
        );
        assert_eq!(t.top_k, boxed.top_k, "top_k disagrees on {src}");
        assert_eq!(t.label_count, boxed.label_count);
        assert_eq!(
            arena_fresh.generated(),
            boxed_fresh.generated(),
            "fresh draw counts disagree on {src}"
        );
        assert_eq!(t.labels.lam, boxed.labels.lam);
        assert_eq!(t.labels.cont_of_let, boxed.labels.cont_of_let);

        // Labels are semantic identities; pin the full assignment.
        fn all_labels(t: &CTerm) -> Vec<Label> {
            let mut terms = Vec::new();
            t.visit_terms(&mut |n| terms.push(n.label));
            let (mut vals, mut conts) = (Vec::new(), Vec::new());
            t.visit_parts(&mut |v| vals.push(v.label), &mut |c| conts.push(c.label));
            terms.extend(vals);
            terms.extend(conts);
            terms
        }
        assert_eq!(
            all_labels(&materialized),
            all_labels(&boxed.root),
            "label assignment disagrees on {src}"
        );
    }

    #[test]
    fn arena_transform_matches_boxed_on_samples() {
        for src in [
            "42",
            "x",
            "(lambda (x) x)",
            "(let (x 1) x)",
            "(let (a (f 1)) a)",
            "(let (a1 (f 1)) (let (a2 (f 2)) a1))",
            "(let (a (if0 z 0 1)) a)",
            "(let (x (loop)) x)",
            "(let (f (lambda (x) (add1 x))) (let (a (f 1)) (let (b (if0 a 0 1)) b)))",
            "(f (g (h 1)))",
            "(if0 (f 1) (g 2) (h 3))",
        ] {
            check(src);
        }
    }

    #[test]
    fn from_cterm_roundtrips_with_labels() {
        let p = AnfProgram::parse("(let (a (f 1)) (let (b (if0 a 0 1)) b))").unwrap();
        let mut fresh = p.fresh_gen();
        let boxed = cps_transform(p.root(), &mut fresh);
        let mut arena = CpsArena::new();
        let id = arena.from_cterm(&boxed.root);
        let back = arena.to_cterm(id);
        assert_eq!(back.to_string(), boxed.root.to_string());
        let mut labels = Vec::new();
        back.visit_terms(&mut |n| labels.push(n.label));
        let mut expected = Vec::new();
        boxed.root.visit_terms(&mut |n| expected.push(n.label));
        assert_eq!(labels, expected);
    }

    #[test]
    fn arena_bytes_grows_with_nodes() {
        let mut arena = CpsArena::new();
        assert_eq!(arena.arena_bytes(), 0);
        arena.push_value(Label::UNASSIGNED, CValNodeKind::Num(1));
        assert!(arena.arena_bytes() > 0);
    }
}
