//! A labeled CPS program with a dense variable index spanning both
//! namespaces (`Vars` and `KVars`).

use crate::arena::{cps_transform_arena, CTermId, CpsArena};
use crate::ast::{CTerm, CTermKind, CVal, CValKind, ContLam};
use crate::transform::{cps_transform, LabelMap};
use cpsdfa_anf::AnfProgram;
use cpsdfa_syntax::{Ident, KIdent, Label};
use std::collections::HashMap;
use std::fmt;

/// A variable of a CPS program: ordinary or continuation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarKey {
    /// An ordinary variable `x ∈ Vars`.
    User(Ident),
    /// A continuation variable `k ∈ KVars`.
    Kont(KIdent),
}

impl fmt::Display for VarKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarKey::User(x) => write!(f, "{x}"),
            VarKey::Kont(k) => write!(f, "{k}"),
        }
    }
}

impl fmt::Debug for VarKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarKey::User(x) => write!(f, "User({x})"),
            VarKey::Kont(k) => write!(f, "Kont({k})"),
        }
    }
}

/// Dense index of a CPS-program variable (ordinary or continuation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CVarId(pub u32);

impl CVarId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Debug for CVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Information about one user λ `(λx k.P)` in a CPS program.
#[derive(Debug, Clone, Copy)]
pub struct CLambdaRef<'p> {
    /// The λ's label (identity of the abstract closure `(cle xk, P)`).
    pub label: Label,
    /// The ordinary parameter.
    pub param: &'p Ident,
    /// Dense index of the parameter.
    pub param_id: CVarId,
    /// The continuation parameter.
    pub k: &'p KIdent,
    /// Dense index of the continuation parameter.
    pub k_id: CVarId,
    /// The body.
    pub body: &'p CTerm,
}

/// Information about one continuation λ `(λx.P)` in a CPS program.
#[derive(Debug, Clone, Copy)]
pub struct ContRef<'p> {
    /// The continuation λ's label (identity of `(coe x, P)`).
    pub label: Label,
    /// The variable receiving the returned value.
    pub var: &'p Ident,
    /// Dense index of that variable.
    pub var_id: CVarId,
    /// The body.
    pub body: &'p CTerm,
}

/// A labeled CPS program: the output of the syntactic CPS transformation
/// (or a hand-built cps(Λ) term), with variable index and closure /
/// continuation universes.
#[derive(Clone)]
pub struct CpsProgram {
    root: CTerm,
    arena: CpsArena,
    root_id: CTermId,
    top_k: KIdent,
    vars: Vec<VarKey>,
    var_ids: HashMap<VarKey, CVarId>,
    free: Vec<CVarId>,
    label_count: u32,
    lambda_labels: Vec<Label>,
    cont_labels: Vec<Label>,
    label_map: LabelMap,
}

impl CpsProgram {
    /// Transforms an ANF program into CPS (Definition 3.2), indexing every
    /// variable of both namespaces.
    ///
    /// ```
    /// use cpsdfa_anf::AnfProgram;
    /// use cpsdfa_cps::CpsProgram;
    /// let p = AnfProgram::parse("(let (a1 (f 1)) (let (a2 (f 2)) a1))")?;
    /// let c = CpsProgram::from_anf(&p);
    /// assert!(c.root().to_string().starts_with("(f 1 (lambda (a1)"));
    /// assert!(c.var_named("a1").is_some());
    /// # Ok::<(), cpsdfa_syntax::parse::ParseError>(())
    /// ```
    pub fn from_anf(prog: &AnfProgram) -> CpsProgram {
        let mut fresh = prog.fresh_gen();
        let t = cps_transform_arena(prog.arena(), prog.root_id(), &mut fresh);
        let root = t.arena.to_cterm(t.root);
        Self::index(root, t.arena, t.root, t.top_k, t.label_count, t.labels)
    }

    /// Like [`from_anf`](Self::from_anf) but through the legacy boxed
    /// transform. Kept as the differential-testing oracle: the interned
    /// pipeline's output must be byte-identical to this one's.
    pub fn from_anf_via_boxed(prog: &AnfProgram) -> CpsProgram {
        let mut fresh = prog.fresh_gen();
        let t = cps_transform(prog.root(), &mut fresh);
        let mut arena = CpsArena::new();
        let root_id = arena.from_cterm(&t.root);
        Self::index(t.root, arena, root_id, t.top_k, t.label_count, t.labels)
    }

    fn index(
        root: CTerm,
        arena: CpsArena,
        root_id: CTermId,
        top_k: KIdent,
        label_count: u32,
        label_map: LabelMap,
    ) -> CpsProgram {
        let mut vars: Vec<VarKey> = Vec::new();
        let mut var_ids: HashMap<VarKey, CVarId> = HashMap::new();
        let add = |key: VarKey, vars: &mut Vec<VarKey>, var_ids: &mut HashMap<VarKey, CVarId>| {
            var_ids.entry(key.clone()).or_insert_with(|| {
                let id = CVarId(vars.len() as u32);
                vars.push(key);
                id
            });
        };

        // Free user variables first (computed over the CPS term), then the
        // top continuation, then binders in traversal order.
        for x in free_user_vars(&root) {
            add(VarKey::User(x), &mut vars, &mut var_ids);
        }
        let free_count = vars.len();
        add(VarKey::Kont(top_k.clone()), &mut vars, &mut var_ids);

        collect_binders(&root, &mut |key| add(key, &mut vars, &mut var_ids));

        let mut lambda_labels = Vec::new();
        let mut cont_labels = Vec::new();
        root.visit_parts(
            &mut |v| {
                if v.is_lambda() {
                    lambda_labels.push(v.label);
                }
            },
            &mut |c| cont_labels.push(c.label),
        );

        let free = (0..free_count as u32).map(CVarId).collect();
        CpsProgram {
            root,
            arena,
            root_id,
            top_k,
            vars,
            var_ids,
            free,
            label_count,
            lambda_labels,
            cont_labels,
            label_map,
        }
    }

    /// The CPS term.
    pub fn root(&self) -> &CTerm {
        &self.root
    }

    /// The flat arena backing the program.
    pub fn arena(&self) -> &CpsArena {
        &self.arena
    }

    /// The arena id of the root term.
    pub fn root_id(&self) -> CTermId {
        self.root_id
    }

    /// The initial continuation variable `k₀`; the initial store binds it to
    /// `stop` (Lemma 3.3).
    pub fn top_k(&self) -> &KIdent {
        &self.top_k
    }

    /// The number of labels assigned.
    pub fn label_count(&self) -> u32 {
        self.label_count
    }

    /// The number of indexed variables (both namespaces, free + bound).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Dense id of a variable key.
    pub fn var_id(&self, key: &VarKey) -> Option<CVarId> {
        self.var_ids.get(key).copied()
    }

    /// Dense id of an ordinary variable.
    pub fn user_var_id(&self, x: &Ident) -> Option<CVarId> {
        self.var_id(&VarKey::User(x.clone()))
    }

    /// Dense id of a continuation variable.
    pub fn kont_var_id(&self, k: &KIdent) -> Option<CVarId> {
        self.var_id(&VarKey::Kont(k.clone()))
    }

    /// The key of an indexed variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn key(&self, id: CVarId) -> &VarKey {
        &self.vars[id.index()]
    }

    /// Looks up an ordinary variable by source name (exact, or unique
    /// `name%N` variant) — mirrors [`AnfProgram::var_named`].
    ///
    /// [`AnfProgram::var_named`]: cpsdfa_anf::AnfProgram::var_named
    pub fn var_named(&self, name: &str) -> Option<CVarId> {
        if let Some(id) = self.var_ids.get(&VarKey::User(Ident::new(name))) {
            return Some(*id);
        }
        let prefix = format!("{name}%");
        let mut found = None;
        for (i, key) in self.vars.iter().enumerate() {
            if let VarKey::User(x) = key {
                if x.as_str().starts_with(&prefix) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(CVarId(i as u32));
                }
            }
        }
        found
    }

    /// Iterates over `(CVarId, key)` pairs in index order.
    pub fn iter_vars(&self) -> impl Iterator<Item = (CVarId, &VarKey)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, k)| (CVarId(i as u32), k))
    }

    /// Ids of the free (user) variables.
    pub fn free_vars(&self) -> &[CVarId] {
        &self.free
    }

    /// Labels of every user λ — the universe `CL⊤` of Figure 6's loop rule.
    pub fn lambda_labels(&self) -> &[Label] {
        &self.lambda_labels
    }

    /// Labels of every continuation λ — the universe `K⊤` of Figure 6's loop
    /// rule ("the set of all abstract continuations `(coe x, P)` in the
    /// program").
    pub fn cont_labels(&self) -> &[Label] {
        &self.cont_labels
    }

    /// The source ↔ CPS program-point correspondence recorded by the
    /// transformation (empty for hand-built programs).
    pub fn label_map(&self) -> &LabelMap {
        &self.label_map
    }

    /// Reference table of every user λ, keyed by label.
    pub fn lambdas(&self) -> HashMap<Label, CLambdaRef<'_>> {
        let mut out = HashMap::new();
        self.root.visit_parts(
            &mut |v| {
                if let CValKind::Lam { param, k, body } = &v.kind {
                    out.insert(
                        v.label,
                        CLambdaRef {
                            label: v.label,
                            param,
                            param_id: self.user_var_id(param).expect("λ param indexed"),
                            k,
                            k_id: self.kont_var_id(k).expect("λ k indexed"),
                            body,
                        },
                    );
                }
            },
            &mut |_| {},
        );
        out
    }

    /// Reference table of every continuation λ, keyed by label.
    pub fn conts(&self) -> HashMap<Label, ContRef<'_>> {
        let mut out = HashMap::new();
        self.root.visit_parts(&mut |_| {}, &mut |c| {
            out.insert(
                c.label,
                ContRef {
                    label: c.label,
                    var: &c.var,
                    var_id: self.user_var_id(&c.var).expect("cont var indexed"),
                    body: &c.body,
                },
            );
        });
        out
    }
}

impl fmt::Display for CpsProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

impl fmt::Debug for CpsProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpsProgram")
            .field("root", &self.root)
            .field("top_k", &self.top_k)
            .field("vars", &self.vars.len())
            .finish()
    }
}

/// Free user variables of a CPS term, in first-occurrence order.
fn free_user_vars(t: &CTerm) -> Vec<Ident> {
    let mut bound: Vec<Ident> = Vec::new();
    let mut out: Vec<Ident> = Vec::new();
    walk_term(t, &mut bound, &mut out);
    out
}

fn note_var(x: &Ident, bound: &[Ident], out: &mut Vec<Ident>) {
    if !bound.contains(x) && !out.contains(x) {
        out.push(x.clone());
    }
}

fn walk_val(v: &CVal, bound: &mut Vec<Ident>, out: &mut Vec<Ident>) {
    match &v.kind {
        CValKind::Var(x) => note_var(x, bound, out),
        CValKind::Lam { param, body, .. } => {
            bound.push(param.clone());
            walk_term(body, bound, out);
            bound.pop();
        }
        _ => {}
    }
}

fn walk_cont(c: &ContLam, bound: &mut Vec<Ident>, out: &mut Vec<Ident>) {
    bound.push(c.var.clone());
    walk_term(&c.body, bound, out);
    bound.pop();
}

fn walk_term(t: &CTerm, bound: &mut Vec<Ident>, out: &mut Vec<Ident>) {
    match &t.kind {
        CTermKind::Ret(_, w) => walk_val(w, bound, out),
        CTermKind::Let { var, val, body } => {
            walk_val(val, bound, out);
            bound.push(var.clone());
            walk_term(body, bound, out);
            bound.pop();
        }
        CTermKind::Call { f, arg, cont } => {
            walk_val(f, bound, out);
            walk_val(arg, bound, out);
            walk_cont(cont, bound, out);
        }
        CTermKind::LetK {
            cont,
            test,
            then_,
            else_,
            ..
        } => {
            walk_cont(cont, bound, out);
            walk_val(test, bound, out);
            walk_term(then_, bound, out);
            walk_term(else_, bound, out);
        }
        CTermKind::Loop { cont } => walk_cont(cont, bound, out),
    }
}

/// Calls `add` for every binder (both namespaces) in traversal order.
fn collect_binders(t: &CTerm, add: &mut impl FnMut(VarKey)) {
    match &t.kind {
        CTermKind::Ret(_, w) => binders_val(w, add),
        CTermKind::Let { var, val, body } => {
            add(VarKey::User(var.clone()));
            binders_val(val, add);
            collect_binders(body, add);
        }
        CTermKind::Call { f, arg, cont } => {
            binders_val(f, add);
            binders_val(arg, add);
            binders_cont(cont, add);
        }
        CTermKind::LetK {
            k,
            cont,
            test,
            then_,
            else_,
        } => {
            add(VarKey::Kont(k.clone()));
            binders_cont(cont, add);
            binders_val(test, add);
            collect_binders(then_, add);
            collect_binders(else_, add);
        }
        CTermKind::Loop { cont } => binders_cont(cont, add),
    }
}

fn binders_val(v: &CVal, add: &mut impl FnMut(VarKey)) {
    if let CValKind::Lam { param, k, body } = &v.kind {
        add(VarKey::User(param.clone()));
        add(VarKey::Kont(k.clone()));
        collect_binders(body, add);
    }
}

fn binders_cont(c: &ContLam, add: &mut impl FnMut(VarKey)) {
    add(VarKey::User(c.var.clone()));
    collect_binders(&c.body, add);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_anf::AnfProgram;

    fn cps(src: &str) -> CpsProgram {
        CpsProgram::from_anf(&AnfProgram::parse(src).unwrap())
    }

    #[test]
    fn indexes_both_namespaces() {
        let c = cps("(let (f (lambda (x) x)) (let (a (f 1)) a))");
        // user vars: f, x, a; k vars: top k and the λ's k
        let users = c
            .iter_vars()
            .filter(|(_, k)| matches!(k, VarKey::User(_)))
            .count();
        let konts = c
            .iter_vars()
            .filter(|(_, k)| matches!(k, VarKey::Kont(_)))
            .count();
        assert_eq!(users, 3);
        assert_eq!(konts, 2);
        assert!(c.kont_var_id(c.top_k()).is_some());
    }

    #[test]
    fn free_variables_survive_transformation() {
        let c = cps("(let (a1 (f 1)) (let (a2 (f 2)) a1))");
        assert_eq!(c.free_vars().len(), 1);
        let key = c.key(c.free_vars()[0]).clone();
        assert_eq!(key, VarKey::User(Ident::new("f")));
    }

    #[test]
    fn var_named_finds_source_variables() {
        let c = cps("(let (a1 (f 1)) (let (a2 (f 2)) a1))");
        assert!(c.var_named("a1").is_some());
        assert!(c.var_named("a2").is_some());
        assert!(c.var_named("zzz").is_none());
    }

    #[test]
    fn lambda_and_cont_universes() {
        let c = cps("(let (f (lambda (x) x)) (let (a (f 1)) (let (b (if0 a 0 1)) b)))");
        assert_eq!(c.lambda_labels().len(), 1);
        // frames: the application let and the if0 let
        assert_eq!(c.cont_labels().len(), 2);
        assert_eq!(c.lambdas().len(), 1);
        assert_eq!(c.conts().len(), 2);
        for (l, r) in c.lambdas() {
            assert_eq!(l, r.label);
        }
    }

    #[test]
    fn label_map_bridges_source_and_cps() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a (f 1)) a))").unwrap();
        let c = CpsProgram::from_anf(&p);
        let src_lam = p.lambda_labels()[0];
        let cps_lam = c.label_map().lam[&src_lam];
        assert!(c.lambda_labels().contains(&cps_lam));
    }

    #[test]
    fn cont_var_ids_resolve() {
        let c = cps("(let (a (f 1)) (let (b (if0 a 0 1)) b))");
        for cont in c.conts().values() {
            assert_eq!(c.key(cont.var_id), &VarKey::User(cont.var.clone()));
        }
    }
}
