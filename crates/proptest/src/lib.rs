//! A minimal, dependency-free, offline stand-in for the subset of the
//! `proptest` 1.x API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; the workspace points the `proptest` dependency at this path crate
//! instead. Covered surface:
//!
//! - [`strategy::Strategy`] with `prop_map` and `prop_recursive`
//! - [`strategy::Just`], [`strategy::Union`] (via `prop_oneof!`), integer
//!   range strategies, tuple strategies, `&str` regex-lite string strategies
//! - [`collection::vec`], [`collection::btree_set`], [`sample::select`]
//! - [`arbitrary::any`] for the primitive integer types and `bool`
//! - the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   and `prop_assert_ne!` macros, plus [`ProptestConfig`]
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! *deterministic* (seeded per test from the test's name, so failures
//! reproduce exactly on every run and machine), and failing cases are *not
//! shrunk* — the panic message reports the case index and assertion text
//! instead.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Per-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the real crate's constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` namespace (`prop::sample::select`, `prop::collection::…`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each `fn name(x in strategy, …) { body }` becomes
/// a `#[test]` that generates `config.cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::generate(
                                    &($strat),
                                    &mut __rng,
                                );
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __e,
                        );
                    }
                }
            }
        )*
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(
                ::std::rc::Rc::new($strat) as ::std::rc::Rc<dyn $crate::strategy::DynStrategy<_>>
            ),+
        ])
    };
}

/// Fails the current test case (with an early `return Err(..)`) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality counterpart of [`prop_assert!`]; reports both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Inequality counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                __l,
            )));
        }
    }};
}
