//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range(self.size.start as i128, self.size.end as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` built from `size`-many draws of `element` (duplicates
/// collapse, so the set may come out smaller than the drawn count).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// The result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let draws = rng.in_range(self.size.start as i128, self.size.end as i128) as usize;
        (0..draws).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_cover_the_range() {
        let s = vec(0i64..10, 0..4);
        let mut rng = TestRng::from_name("veclen");
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() < 4);
            assert!(v.iter().all(|n| (0..10).contains(n)));
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&b| b), "some length in 0..4 never drawn");
    }

    #[test]
    fn btree_set_is_bounded_and_sorted() {
        let s = btree_set(0i32..6, 0..5);
        let mut rng = TestRng::from_name("set");
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 5);
        }
    }
}
