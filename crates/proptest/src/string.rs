//! Regex-lite generation behind the `&str` strategy.
//!
//! Supports exactly the pattern shape the workspace's tests use: one atom —
//! `.` (any printable char) or a character class `[...]` with ranges and
//! backslash escapes — followed by an optional `{m,n}` repetition. Anything
//! else is treated as a literal string (each char generated verbatim).

use crate::test_runner::TestRng;

/// Characters `.` draws from: printable ASCII plus a few multibyte
/// characters so byte-position handling in parsers gets exercised.
fn dot_charset() -> Vec<char> {
    let mut cs: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    cs.extend(['λ', 'é', '→', '∅']);
    cs
}

/// Parses `[...]` starting after the `[`; returns (charset, index after `]`).
fn parse_class(pat: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut cs = Vec::new();
    while i < pat.len() && pat[i] != ']' {
        if pat[i] == '\\' && i + 1 < pat.len() {
            cs.push(pat[i + 1]);
            i += 2;
        } else if i + 2 < pat.len() && pat[i + 1] == '-' && pat[i + 2] != ']' {
            let (lo, hi) = (pat[i] as u32, pat[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    cs.push(c);
                }
            }
            i += 3;
        } else {
            cs.push(pat[i]);
            i += 1;
        }
    }
    (cs, i + 1)
}

/// Parses `{m,n}` or `{m}` starting after the `{`; returns ((m, n), index
/// after `}`). Falls back to (1, 1) on malformed input.
fn parse_repeat(pat: &[char], mut i: usize) -> ((usize, usize), usize) {
    let mut nums = vec![String::new()];
    while i < pat.len() && pat[i] != '}' {
        if pat[i] == ',' {
            nums.push(String::new());
        } else {
            nums.last_mut().unwrap().push(pat[i]);
        }
        i += 1;
    }
    let lo = nums[0].parse().unwrap_or(1);
    let hi = if nums.len() > 1 {
        nums[1].parse().unwrap_or(lo)
    } else {
        lo
    };
    ((lo, hi.max(lo)), i + 1)
}

/// A string matching `pattern` under the regex-lite subset described in the
/// module docs.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pat: Vec<char> = pattern.chars().collect();
    let (charset, mut i) = match pat.first() {
        Some('.') => (dot_charset(), 1),
        Some('[') => parse_class(&pat, 1),
        _ => {
            // Literal pattern: emit it verbatim (enough for API parity; the
            // workspace never relies on this arm).
            return pattern.to_string();
        }
    };
    let (lo, hi) = if i < pat.len() && pat[i] == '{' {
        let (bounds, next) = parse_repeat(&pat, i + 1);
        i = next;
        bounds
    } else {
        (1, 1)
    };
    debug_assert_eq!(i, pat.len(), "trailing junk in pattern {pattern:?}");
    if charset.is_empty() {
        return String::new();
    }
    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
    (0..len)
        .map(|_| charset[rng.below(charset.len() as u64) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut rng = TestRng::from_name("class");
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9%+\\-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "bad len {s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "%+-".contains(c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn dot_respects_length_bounds() {
        let mut rng = TestRng::from_name("dot");
        let mut empties = 0;
        for _ in 0..300 {
            let s = generate_matching(".{0,120}", &mut rng);
            assert!(s.chars().count() <= 120);
            empties += usize::from(s.is_empty());
        }
        assert!(empties > 0, "length 0 never drawn");
    }

    #[test]
    fn paren_soup_class_includes_lambda_and_dash() {
        let mut rng = TestRng::from_name("soup");
        let mut joined = String::new();
        for _ in 0..100 {
            joined.push_str(&generate_matching("[()λa-z0-9 +.%;\\-]{0,200}", &mut rng));
        }
        assert!(joined.contains('λ'));
        assert!(joined.contains('-'));
        assert!(!joined.contains(']'));
    }
}
