//! The `Strategy` trait and the stock combinators.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value-tree/shrinking machinery: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// One generated value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Recursive generation: `self` is the leaf strategy, `recurse` builds a
    /// branch strategy from an `inner` handle for subterms. `depth` bounds
    /// nesting; the size/branch hints are accepted for API compatibility but
    /// unused (depth alone bounds output size here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(Recursive<Self::Value>) -> R + 'static,
    {
        Recursive {
            leaf: Rc::new(self),
            grow: Rc::new(move |inner| Rc::new(recurse(inner)) as Rc<dyn DynStrategy<Self::Value>>),
            depth,
        }
    }
}

/// Object-safe face of [`Strategy`], for heterogeneous collections
/// (`prop_oneof!`, recursion).
pub trait DynStrategy<T> {
    /// One generated value.
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Just
// ---------------------------------------------------------------------------

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// A uniform choice among strategies with a common value type.
pub struct Union<T> {
    options: Vec<Rc<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be nonempty.
    pub fn new(options: Vec<Rc<dyn DynStrategy<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].dyn_generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Recursive
// ---------------------------------------------------------------------------

/// The result of [`Strategy::prop_recursive`]; also the `inner` handle passed
/// to the recursion closure.
pub struct Recursive<T> {
    leaf: Rc<dyn DynStrategy<T>>,
    grow: Rc<dyn Fn(Recursive<T>) -> Rc<dyn DynStrategy<T>>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            grow: self.grow.clone(),
            depth: self.depth,
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // Branch with probability 3/4 while depth remains; the exponential
        // depth cut-off keeps expected sizes close to real proptest's.
        if self.depth == 0 || rng.below(4) == 0 {
            self.leaf.dyn_generate(rng)
        } else {
            let inner = Recursive {
                leaf: self.leaf.clone(),
                grow: self.grow.clone(),
                depth: self.depth - 1,
            };
            (self.grow)(inner).dyn_generate(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn union_map_and_ranges_compose() {
        let s = Union::new(vec![
            Rc::new(Just(0i64)) as Rc<dyn DynStrategy<i64>>,
            Rc::new((10i64..20).prop_map(|n| n * 2)) as Rc<dyn DynStrategy<i64>>,
        ]);
        let mut rng = TestRng::from_name("union");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 0 || (20..40).contains(&v), "unexpected {v}");
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_name("recursive");
        let mut saw_node = false;
        for _ in 0..100 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= t != T::Leaf;
        }
        assert!(saw_node, "recursion never branched");
    }
}
