//! `sample::select`: uniform choice from a fixed list of values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::rc::Rc;

/// A uniform pick from `options`; must be nonempty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select {
        options: Rc::new(options),
    }
}

/// The result of [`select`].
#[derive(Debug)]
pub struct Select<T> {
    options: Rc<Vec<T>>,
}

impl<T> Clone for Select<T> {
    fn clone(&self) -> Self {
        Select {
            options: self.options.clone(),
        }
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}
