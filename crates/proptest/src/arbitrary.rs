//! `any::<T>()` for the primitive types the workspace uses.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-width draws for a primitive type.
pub struct AnyPrim<T>(PhantomData<T>);

impl<T> Clone for AnyPrim<T> {
    fn clone(&self) -> Self {
        AnyPrim(PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrim(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrim(PhantomData)
    }
}
