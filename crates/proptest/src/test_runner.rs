//! The deterministic case RNG and the error type `prop_assert!` returns.

use std::fmt;

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An assertion-failure error carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator driving all strategies: xorshift64* seeded (via
/// splitmix64) from a hash of the test's fully-qualified name, so each test
/// sees its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then splitmix64 finalization.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi)` over i128 arithmetic (covers every integer
    /// width the strategies need).
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "cannot sample empty range");
        let width = (hi - lo) as u128;
        lo + (self.next_u64() as u128 % width) as i128
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn named_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("mod::test_a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::from_name("mod::test_a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("mod::test_b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn in_range_is_in_bounds() {
        let mut r = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = r.in_range(-100, 100);
            assert!((-100..100).contains(&x));
        }
    }
}
