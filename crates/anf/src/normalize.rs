//! A-normalization: translate full Λ into the restricted subset.
//!
//! The paper (§2, footnote 2) normalizes with the *A-reductions* of Flanagan,
//! Sabry, Duba & Felleisen, "The Essence of Compiling with Continuations"
//! (PLDI 1993): every intermediate result receives a name, and nested `let`s
//! are re-ordered so expressions appear in evaluation order. For example
//!
//! ```text
//! (f (let (x 1) (g x)))   ⇒   (let (x 1) (let (t (g x)) (let (u (f t)) u)))
//! ```
//!
//! Normalization preserves the call-by-value semantics (checked by
//! differential tests against the reference interpreter in `cpsdfa-interp`).

use crate::ast::{AVal, AValKind, Anf, AnfKind, Bind};
use cpsdfa_syntax::ast::{Term, Value};
use cpsdfa_syntax::FreshGen;

/// Normalizes a Λ term into the restricted subset, drawing fresh names for
/// intermediate results from `gen`.
///
/// The input should have unique binders (see
/// [`cpsdfa_syntax::fresh::freshen`]); [`crate::AnfProgram::from_term`]
/// arranges this automatically.
pub fn normalize(term: &Term, gen: &mut FreshGen) -> Anf {
    norm_term(term, gen, Box::new(|_, v| Anf::new(AnfKind::Value(v))))
}

/// A normalization continuation: receives the value naming the result of the
/// sub-term and produces the rest of the normalized program.
type K<'a> = Box<dyn FnOnce(&mut FreshGen, AVal) -> Anf + 'a>;

/// A binding continuation: receives the [`Bind`] form for a right-hand side.
type KB<'a> = Box<dyn FnOnce(&mut FreshGen, Bind) -> Anf + 'a>;

fn norm_term<'a>(term: &'a Term, gen: &mut FreshGen, k: K<'a>) -> Anf {
    match term {
        Term::Value(v) => {
            let av = norm_value(v, gen);
            k(gen, av)
        }
        Term::Let(x, rhs, body) => norm_bind(
            rhs,
            gen,
            Box::new(move |gen, bind| {
                let body = norm_term(body, gen, k);
                Anf::new(AnfKind::Let {
                    var: x.clone(),
                    bind,
                    body: Box::new(body),
                })
            }),
        ),
        // Unnamed serious terms: name the result and continue with the name.
        Term::App(..) | Term::If0(..) | Term::Loop => norm_bind(
            term,
            gen,
            Box::new(move |gen, bind| {
                let t = gen.fresh("t");
                let var_ref = AVal::new(AValKind::Var(t.clone()));
                let body = k(gen, var_ref);
                Anf::new(AnfKind::Let {
                    var: t,
                    bind,
                    body: Box::new(body),
                })
            }),
        ),
    }
}

/// Normalizes a term destined for a `let` right-hand side into a [`Bind`],
/// floating enclosing `let`s outward (the second A-reduction phase).
fn norm_bind<'a>(term: &'a Term, gen: &mut FreshGen, kb: KB<'a>) -> Anf {
    match term {
        Term::Value(v) => {
            let av = norm_value(v, gen);
            kb(gen, Bind::Value(av))
        }
        Term::App(f, a) => norm_term(
            f,
            gen,
            Box::new(move |gen, vf| {
                norm_term(a, gen, Box::new(move |gen, va| kb(gen, Bind::App(vf, va))))
            }),
        ),
        Term::If0(c, t, e) => norm_term(
            c,
            gen,
            Box::new(move |gen, vc| {
                let then_ = normalize(t, gen);
                let else_ = normalize(e, gen);
                kb(gen, Bind::If0(vc, Box::new(then_), Box::new(else_)))
            }),
        ),
        // (let (x (let (y N) M)) B) ⇒ (let (y N) (let (x M) B))
        Term::Let(y, rhs, body) => norm_bind(
            rhs,
            gen,
            Box::new(move |gen, bind_rhs| {
                let rest = norm_bind(body, gen, kb);
                Anf::new(AnfKind::Let {
                    var: y.clone(),
                    bind: bind_rhs,
                    body: Box::new(rest),
                })
            }),
        ),
        Term::Loop => kb(gen, Bind::Loop),
    }
}

fn norm_value(value: &Value, gen: &mut FreshGen) -> AVal {
    let kind = match value {
        Value::Num(n) => AValKind::Num(*n),
        Value::Var(x) => AValKind::Var(x.clone()),
        Value::Add1 => AValKind::Add1,
        Value::Sub1 => AValKind::Sub1,
        Value::Lam(x, body) => {
            let body = normalize(body, gen);
            AValKind::Lam(x.clone(), Box::new(body))
        }
    };
    AVal::new(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_syntax::parse::parse_term;

    fn norm(src: &str) -> String {
        let term = parse_term(src).unwrap();
        let mut gen = FreshGen::new();
        normalize(&term, &mut gen).to_string()
    }

    #[test]
    fn values_are_already_normal() {
        assert_eq!(norm("42"), "42");
        assert_eq!(norm("x"), "x");
        assert_eq!(norm("(lambda (x) x)"), "(lambda (x) x)");
    }

    #[test]
    fn paper_example_from_section_2() {
        // (f (let (x 1) (g x))) becomes
        // (let (x1 1) (let (x2 (g x1)) (let (x3 (f x2)) x3)))
        assert_eq!(
            norm("(f (let (x 1) (g x)))"),
            "(let (x 1) (let (t%0 (g x)) (let (t%1 (f t%0)) t%1)))"
        );
    }

    #[test]
    fn applications_are_named() {
        assert_eq!(norm("(f 1)"), "(let (t%0 (f 1)) t%0)");
        assert_eq!(
            norm("(f (g 1))"),
            "(let (t%0 (g 1)) (let (t%1 (f t%0)) t%1))"
        );
    }

    #[test]
    fn let_of_app_binds_directly() {
        // No intermediate temporary: (let (a (f 1)) a) is already normal.
        assert_eq!(norm("(let (a (f 1)) a)"), "(let (a (f 1)) a)");
    }

    #[test]
    fn if0_is_named_and_arms_are_normalized() {
        assert_eq!(
            norm("(if0 z (f 1) 2)"),
            "(let (t%1 (if0 z (let (t%0 (f 1)) t%0) 2)) t%1)"
        );
    }

    #[test]
    fn let_reassociation_floats_bindings_out() {
        assert_eq!(
            norm("(let (x (let (y 1) y)) x)"),
            "(let (y 1) (let (x y) x))"
        );
    }

    #[test]
    fn reordering_reflects_evaluation_order() {
        // Paper footnote 2: (add1 (let (x V) 0)) ⇒ (let (x V) (add1 0)).
        assert_eq!(
            norm("(add1 (let (x 5) 0))"),
            "(let (x 5) (let (t%0 (add1 0)) t%0))"
        );
    }

    #[test]
    fn lambda_bodies_are_normalized() {
        assert_eq!(
            norm("(lambda (x) (f (g x)))"),
            "(lambda (x) (let (t%0 (g x)) (let (t%1 (f t%0)) t%1)))"
        );
    }

    #[test]
    fn loop_is_named() {
        assert_eq!(norm("(loop)"), "(let (t%0 (loop)) t%0)");
        assert_eq!(norm("(let (x (loop)) x)"), "(let (x (loop)) x)");
    }

    #[test]
    fn complex_operand_order() {
        // Operator normalized before operand.
        assert_eq!(
            norm("((f 1) (g 2))"),
            "(let (t%0 (f 1)) (let (t%1 (g 2)) (let (t%2 (t%0 t%1)) t%2)))"
        );
    }
}
