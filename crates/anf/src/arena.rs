//! A flat, arena-backed representation of ANF programs, and the arena
//! A-normalizer that produces it.
//!
//! [`AnfArena`] stores every ANF term/value node in flat vectors indexed by
//! [`AnfId`]/[`AValId`]. Unlike the Λ [`TermArena`] this arena is **not**
//! hash-consed: every node carries a [`Label`], and labels are unique per
//! *occurrence*, so structurally identical subterms must remain distinct
//! nodes. What the arena buys instead is allocation shape: the normalizer
//! appends one flat node per construct (`Vec` pushes) rather than building
//! a `Box`-per-node tree, and node handles are `Copy` `u32`s.
//!
//! [`normalize_arena`] is a structural mirror of the boxed
//! [`normalize`](crate::normalize::normalize) pass — same continuation
//! discipline, same A-reductions, same fresh-name draw order — so the
//! materialized output is *byte-identical* to the boxed normalizer's
//! (differential corpus tests in `tests/pipeline.rs` pin this down).
//! Likewise [`AnfArena::assign_labels`] replicates the exact pre-order of
//! the boxed labeling pass, so labels — the semantic identities every
//! analyzer keys on — agree bit-for-bit between the two pipelines.

use crate::ast::{AVal, AValKind, Anf, AnfKind, Bind};
use cpsdfa_syntax::arena::TermNode;
use cpsdfa_syntax::arena::{TermArena, TermId, ValueId, ValueNode};
use cpsdfa_syntax::label::LabelGen;
use cpsdfa_syntax::{FreshGen, Ident, Label};

/// Dense handle of an ANF term node in an [`AnfArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AnfId(u32);

impl AnfId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense handle of an ANF value node in an [`AnfArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AValId(u32);

impl AValId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena ANF term node.
#[derive(Clone, Debug)]
pub struct AnfNode {
    /// The program-point label (assigned by [`AnfArena::assign_labels`]).
    pub label: Label,
    /// The structure of the term.
    pub kind: AnfNodeKind,
}

/// The shape of an arena ANF term.
#[derive(Clone, Debug)]
pub enum AnfNodeKind {
    /// A value in tail position.
    Value(AValId),
    /// `(let (x B) M)`.
    Let {
        /// The bound variable.
        var: Ident,
        /// The right-hand side.
        bind: BindNode,
        /// The body.
        body: AnfId,
    },
}

/// The right-hand side of an arena `let`.
#[derive(Clone, Debug)]
pub enum BindNode {
    /// Bind a value.
    Value(AValId),
    /// Bind an application result.
    App(AValId, AValId),
    /// Bind a conditional result.
    If0(AValId, AnfId, AnfId),
    /// Bind the §6.2 `loop` construct.
    Loop,
}

/// An arena ANF value node.
#[derive(Clone, Debug)]
pub struct AValNode {
    /// The label (for λ this identifies the abstract closure).
    pub label: Label,
    /// The structure of the value.
    pub kind: AValNodeKind,
}

/// The shape of an arena ANF value.
#[derive(Clone, Debug)]
pub enum AValNodeKind {
    /// A numeral.
    Num(i64),
    /// A variable occurrence.
    Var(Ident),
    /// The successor primitive.
    Add1,
    /// The predecessor primitive.
    Sub1,
    /// `(λx.M)` with arena body.
    Lam(Ident, AnfId),
}

/// A flat per-program arena of ANF nodes. Append-only; ids never move.
#[derive(Clone, Default, Debug)]
pub struct AnfArena {
    terms: Vec<AnfNode>,
    values: Vec<AValNode>,
}

impl AnfArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an unlabeled term node.
    pub fn push_term(&mut self, kind: AnfNodeKind) -> AnfId {
        let id = u32::try_from(self.terms.len()).expect("ANF arena overflow");
        self.terms.push(AnfNode {
            label: Label::UNASSIGNED,
            kind,
        });
        AnfId(id)
    }

    /// Appends an unlabeled value node.
    pub fn push_value(&mut self, kind: AValNodeKind) -> AValId {
        let id = u32::try_from(self.values.len()).expect("ANF arena overflow");
        self.values.push(AValNode {
            label: Label::UNASSIGNED,
            kind,
        });
        AValId(id)
    }

    /// The node behind a term id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn term(&self, id: AnfId) -> &AnfNode {
        &self.terms[id.index()]
    }

    /// The node behind a value id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn value(&self, id: AValId) -> &AValNode {
        &self.values[id.index()]
    }

    /// Number of term nodes stored.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of value nodes stored.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Total nodes stored (terms + values).
    pub fn num_nodes(&self) -> usize {
        self.terms.len() + self.values.len()
    }

    /// Approximate heap footprint of the node storage in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.terms.capacity() * std::mem::size_of::<AnfNode>()
            + self.values.capacity() * std::mem::size_of::<AValNode>()
    }

    /// Assigns dense labels to the subtree rooted at `root` in the same
    /// pre-order as the boxed program builder (term, then its values, then
    /// `if0` arms, then the body), returning the number of labels assigned.
    pub fn assign_labels(&mut self, root: AnfId) -> u32 {
        let mut gen = LabelGen::new();
        self.label_term(root, &mut gen);
        gen.count()
    }

    fn label_term(&mut self, id: AnfId, gen: &mut LabelGen) {
        self.terms[id.index()].label = gen.next();
        let kind = self.terms[id.index()].kind.clone();
        match kind {
            AnfNodeKind::Value(v) => self.label_value(v, gen),
            AnfNodeKind::Let { bind, body, .. } => {
                match bind {
                    BindNode::Value(v) => self.label_value(v, gen),
                    BindNode::App(a, b) => {
                        self.label_value(a, gen);
                        self.label_value(b, gen);
                    }
                    BindNode::If0(c, then_, else_) => {
                        self.label_value(c, gen);
                        self.label_term(then_, gen);
                        self.label_term(else_, gen);
                    }
                    BindNode::Loop => {}
                }
                self.label_term(body, gen);
            }
        }
    }

    fn label_value(&mut self, id: AValId, gen: &mut LabelGen) {
        self.values[id.index()].label = gen.next();
        if let AValNodeKind::Lam(_, body) = self.values[id.index()].kind.clone() {
            self.label_term(body, gen);
        }
    }

    /// Materializes the boxed tree for `id`, labels included.
    pub fn to_anf(&self, id: AnfId) -> Anf {
        let node = self.term(id);
        let kind = match &node.kind {
            AnfNodeKind::Value(v) => AnfKind::Value(self.to_aval(*v)),
            AnfNodeKind::Let { var, bind, body } => AnfKind::Let {
                var: var.clone(),
                bind: match bind {
                    BindNode::Value(v) => Bind::Value(self.to_aval(*v)),
                    BindNode::App(a, b) => Bind::App(self.to_aval(*a), self.to_aval(*b)),
                    BindNode::If0(c, t, e) => Bind::If0(
                        self.to_aval(*c),
                        Box::new(self.to_anf(*t)),
                        Box::new(self.to_anf(*e)),
                    ),
                    BindNode::Loop => Bind::Loop,
                },
                body: Box::new(self.to_anf(*body)),
            },
        };
        Anf {
            label: node.label,
            kind,
        }
    }

    fn to_aval(&self, id: AValId) -> AVal {
        let node = self.value(id);
        let kind = match &node.kind {
            AValNodeKind::Num(n) => AValKind::Num(*n),
            AValNodeKind::Var(x) => AValKind::Var(x.clone()),
            AValNodeKind::Add1 => AValKind::Add1,
            AValNodeKind::Sub1 => AValKind::Sub1,
            AValNodeKind::Lam(x, body) => AValKind::Lam(x.clone(), Box::new(self.to_anf(*body))),
        };
        AVal {
            label: node.label,
            kind,
        }
    }

    /// Imports a boxed tree, copying its labels verbatim. Used when a
    /// program is hand-built from boxed nodes rather than normalized.
    pub fn from_anf(&mut self, t: &Anf) -> AnfId {
        let kind = match &t.kind {
            AnfKind::Value(v) => AnfNodeKind::Value(self.import_aval(v)),
            AnfKind::Let { var, bind, body } => AnfNodeKind::Let {
                var: var.clone(),
                bind: match bind {
                    Bind::Value(v) => BindNode::Value(self.import_aval(v)),
                    Bind::App(a, b) => BindNode::App(self.import_aval(a), self.import_aval(b)),
                    Bind::If0(c, t1, t2) => {
                        BindNode::If0(self.import_aval(c), self.from_anf(t1), self.from_anf(t2))
                    }
                    Bind::Loop => BindNode::Loop,
                },
                body: self.from_anf(body),
            },
        };
        let id = self.push_term(kind);
        self.terms[id.index()].label = t.label;
        id
    }

    fn import_aval(&mut self, v: &AVal) -> AValId {
        let kind = match &v.kind {
            AValKind::Num(n) => AValNodeKind::Num(*n),
            AValKind::Var(x) => AValNodeKind::Var(x.clone()),
            AValKind::Add1 => AValNodeKind::Add1,
            AValKind::Sub1 => AValNodeKind::Sub1,
            AValKind::Lam(x, body) => AValNodeKind::Lam(x.clone(), self.from_anf(body)),
        };
        let id = self.push_value(kind);
        self.values[id.index()].label = v.label;
        id
    }

    /// The number of nodes in the tree rooted at `id` (like [`Anf::size`]).
    pub fn size(&self, id: AnfId) -> usize {
        match &self.term(id).kind {
            AnfNodeKind::Value(v) => 1 + self.value_size(*v),
            AnfNodeKind::Let { bind, body, .. } => {
                let bind_size = match bind {
                    BindNode::Value(v) => self.value_size(*v),
                    BindNode::App(a, b) => 1 + self.value_size(*a) + self.value_size(*b),
                    BindNode::If0(c, t, e) => {
                        1 + self.value_size(*c) + self.size(*t) + self.size(*e)
                    }
                    BindNode::Loop => 1,
                };
                1 + bind_size + self.size(*body)
            }
        }
    }

    fn value_size(&self, id: AValId) -> usize {
        match &self.value(id).kind {
            AValNodeKind::Lam(_, body) => 1 + self.size(*body),
            _ => 1,
        }
    }
}

/// A-normalizes an arena Λ term into a fresh [`AnfArena`], drawing fresh
/// names from `gen`. Structural mirror of the boxed
/// [`normalize`](crate::normalize::normalize): identical fresh-name order,
/// identical A-reductions, so the materialized result is identical too.
///
/// Where the boxed normalizer allocates a `Box<dyn FnOnce>` continuation
/// per visited node, this pass is *defunctionalized*: each continuation
/// shape is a [`KFrame`]/[`KbFrame`] enum variant appended to a flat frame
/// arena and referenced by `u32` index. Same control flow, same effect
/// order on the output arena and the fresh-name generator — just no
/// per-node closure allocations.
pub fn normalize_arena(ta: &TermArena, root: TermId, gen: &mut FreshGen) -> (AnfArena, AnfId) {
    let mut out = AnfArena::new();
    // Normalization adds a let per serious term, so the output is a bit
    // larger than the input; seeding with the input's node count skips the
    // early doublings without over-reserving.
    out.terms.reserve(ta.num_terms());
    out.values.reserve(ta.num_values());
    let mut nx = Nx {
        ta,
        gen: gen.clone(),
        out,
        ks: Vec::with_capacity(ta.num_terms()),
        kbs: Vec::with_capacity(ta.num_terms()),
    };
    let root = nx.norm_root(root);
    *gen = nx.gen;
    (nx.out, root)
}

struct Nx<'t> {
    ta: &'t TermArena,
    gen: FreshGen,
    out: AnfArena,
    ks: Vec<KFrame>,
    kbs: Vec<KbFrame>,
}

/// A defunctionalized normalization continuation: what to do with the value
/// id naming the result of a sub-term. Mirrors the closures of the boxed
/// normalizer one-for-one.
#[derive(Clone)]
enum KFrame {
    /// Tail position: wrap the value as the final term.
    Root,
    /// Operator of an application is named; normalize the operand next.
    AppFun { arg: TermId, kb: u32 },
    /// Both application halves are named; deliver the `App` bind.
    AppArg { vf: AValId, kb: u32 },
    /// `if0` test is named; normalize both arms, deliver the `If0` bind.
    If0Test {
        then_: TermId,
        else_: TermId,
        kb: u32,
    },
}

/// A defunctionalized binding continuation: what to do with the
/// [`BindNode`] for a right-hand side.
#[derive(Clone)]
enum KbFrame {
    /// A source `let`: emit it around the normalized body.
    LetBind { var: Ident, body: TermId, k: u32 },
    /// An unnamed serious term: name the result with a fresh temporary.
    Name { k: u32 },
    /// The A-reduction `(let (x (let (y N) M)) B) ⇒ (let (y N) (let (x M) B))`.
    LetRotate { var: Ident, body: TermId, kb: u32 },
}

impl Nx<'_> {
    fn push_k(&mut self, f: KFrame) -> u32 {
        let id = u32::try_from(self.ks.len()).expect("normalizer frame overflow");
        self.ks.push(f);
        id
    }

    fn push_kb(&mut self, f: KbFrame) -> u32 {
        let id = u32::try_from(self.kbs.len()).expect("normalizer frame overflow");
        self.kbs.push(f);
        id
    }

    fn norm_root(&mut self, t: TermId) -> AnfId {
        let k = self.push_k(KFrame::Root);
        self.norm_term(t, k)
    }

    fn norm_term(&mut self, t: TermId, k: u32) -> AnfId {
        match self.ta.term(t).clone() {
            TermNode::Value(v) => {
                let av = self.norm_value(v);
                self.apply_k(k, av)
            }
            TermNode::Let(x, rhs, body) => {
                let kb = self.push_kb(KbFrame::LetBind { var: x, body, k });
                self.norm_bind(rhs, kb)
            }
            // Unnamed serious terms: name the result and continue with the
            // name.
            TermNode::App(..) | TermNode::If0(..) | TermNode::Loop => {
                let kb = self.push_kb(KbFrame::Name { k });
                self.norm_bind(t, kb)
            }
        }
    }

    fn norm_bind(&mut self, t: TermId, kb: u32) -> AnfId {
        match self.ta.term(t).clone() {
            TermNode::Value(v) => {
                let av = self.norm_value(v);
                self.apply_kb(kb, BindNode::Value(av))
            }
            TermNode::App(f, a) => {
                let k = self.push_k(KFrame::AppFun { arg: a, kb });
                self.norm_term(f, k)
            }
            TermNode::If0(c, t1, t2) => {
                let k = self.push_k(KFrame::If0Test {
                    then_: t1,
                    else_: t2,
                    kb,
                });
                self.norm_term(c, k)
            }
            TermNode::Let(y, rhs, body) => {
                let kb2 = self.push_kb(KbFrame::LetRotate { var: y, body, kb });
                self.norm_bind(rhs, kb2)
            }
            TermNode::Loop => self.apply_kb(kb, BindNode::Loop),
        }
    }

    fn apply_k(&mut self, k: u32, v: AValId) -> AnfId {
        match self.ks[k as usize].clone() {
            KFrame::Root => self.out.push_term(AnfNodeKind::Value(v)),
            KFrame::AppFun { arg, kb } => {
                let k2 = self.push_k(KFrame::AppArg { vf: v, kb });
                self.norm_term(arg, k2)
            }
            KFrame::AppArg { vf, kb } => self.apply_kb(kb, BindNode::App(vf, v)),
            KFrame::If0Test { then_, else_, kb } => {
                let then_ = self.norm_root(then_);
                let else_ = self.norm_root(else_);
                self.apply_kb(kb, BindNode::If0(v, then_, else_))
            }
        }
    }

    fn apply_kb(&mut self, kb: u32, bind: BindNode) -> AnfId {
        match self.kbs[kb as usize].clone() {
            KbFrame::LetBind { var, body, k } => {
                let body = self.norm_term(body, k);
                self.out.push_term(AnfNodeKind::Let { var, bind, body })
            }
            KbFrame::Name { k } => {
                let tmp = self.gen.fresh("t");
                let var_ref = self.out.push_value(AValNodeKind::Var(tmp.clone()));
                let body = self.apply_k(k, var_ref);
                self.out.push_term(AnfNodeKind::Let {
                    var: tmp,
                    bind,
                    body,
                })
            }
            KbFrame::LetRotate { var, body, kb } => {
                let rest = self.norm_bind(body, kb);
                self.out.push_term(AnfNodeKind::Let {
                    var,
                    bind,
                    body: rest,
                })
            }
        }
    }

    fn norm_value(&mut self, v: ValueId) -> AValId {
        match self.ta.value(v).clone() {
            ValueNode::Num(n) => self.out.push_value(AValNodeKind::Num(n)),
            ValueNode::Var(x) => self.out.push_value(AValNodeKind::Var(x)),
            ValueNode::Add1 => self.out.push_value(AValNodeKind::Add1),
            ValueNode::Sub1 => self.out.push_value(AValNodeKind::Sub1),
            ValueNode::Lam(x, body) => {
                let body = self.norm_root(body);
                self.out.push_value(AValNodeKind::Lam(x, body))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use cpsdfa_syntax::parse::parse_term;

    /// Both normalizers, same input, printed forms must agree.
    fn check(src: &str) {
        let term = parse_term(src).unwrap();

        let mut boxed_gen = FreshGen::new();
        let boxed = normalize(&term, &mut boxed_gen);

        let mut ta = TermArena::new();
        let tid = ta.from_term(&term);
        let mut arena_gen = FreshGen::new();
        let (arena, root) = normalize_arena(&ta, tid, &mut arena_gen);

        assert_eq!(
            arena.to_anf(root).to_string(),
            boxed.to_string(),
            "normalizers disagree on {src}"
        );
        assert_eq!(
            arena_gen.generated(),
            boxed_gen.generated(),
            "fresh draw counts disagree on {src}"
        );
    }

    #[test]
    fn arena_normalizer_matches_boxed_on_samples() {
        for src in [
            "42",
            "x",
            "(lambda (x) x)",
            "(f (let (x 1) (g x)))",
            "(f 1)",
            "(f (g 1))",
            "(let (a (f 1)) a)",
            "(if0 z (f 1) 2)",
            "(let (x (let (y 1) y)) x)",
            "(add1 (let (x 5) 0))",
            "(lambda (x) (f (g x)))",
            "(loop)",
            "(let (x (loop)) x)",
            "((f 1) (g 2))",
        ] {
            check(src);
        }
    }

    #[test]
    fn arena_labels_match_boxed_label_order() {
        let src = "(let (a (f 1)) (let (b (if0 a 2 (g a))) b))";
        let term = parse_term(src).unwrap();

        // Boxed path: normalize then label via the program builder's order.
        let p = crate::AnfProgram::from_term(&term);

        // Arena path: normalize in the arena, label, materialize.
        let mut ta = TermArena::new();
        let tid = ta.from_term(&term);
        let mut gen = FreshGen::new();
        let (mut arena, root) = normalize_arena(&ta, tid, &mut gen);
        let count = arena.assign_labels(root);

        assert_eq!(count, p.label_count());
        let materialized = arena.to_anf(root);
        assert_eq!(materialized.to_string(), p.root().to_string());
        // Labels are semantic identities; pin the full assignment on both
        // term and value nodes.
        let mut labels = Vec::new();
        materialized.visit_terms(&mut |t| labels.push(t.label));
        materialized.visit_values(&mut |v| labels.push(v.label));
        let mut expected = Vec::new();
        p.root().visit_terms(&mut |t| expected.push(t.label));
        p.root().visit_values(&mut |v| expected.push(v.label));
        assert_eq!(labels, expected);
    }

    #[test]
    fn from_anf_roundtrips_with_labels() {
        let p = crate::AnfProgram::parse("(let (a (f 1)) (let (b (if0 a 2 (g a))) b))").unwrap();
        let mut arena = AnfArena::new();
        let id = arena.from_anf(p.root());
        let back = arena.to_anf(id);
        assert_eq!(back.to_string(), p.root().to_string());
        let mut labels = Vec::new();
        back.visit_terms(&mut |t| labels.push(t.label));
        back.visit_values(&mut |v| labels.push(v.label));
        let mut expected = Vec::new();
        p.root().visit_terms(&mut |t| expected.push(t.label));
        p.root().visit_values(&mut |v| expected.push(v.label));
        assert_eq!(labels, expected);
        assert_eq!(arena.size(id), p.root().size());
    }

    #[test]
    fn arena_bytes_grows_with_nodes() {
        let mut arena = AnfArena::new();
        assert_eq!(arena.arena_bytes(), 0);
        arena.push_value(AValNodeKind::Num(1));
        assert!(arena.arena_bytes() > 0);
    }
}
