//! A labeled, validated ANF program with a dense variable index.
//!
//! [`AnfProgram`] is the unit of work for the interpreters and analyzers:
//! it owns the normalized term, assigns a [`Label`] to every node, indexes
//! every variable (bound *and* free) with a dense [`VarId`] so abstract
//! stores can be flat vectors, and records the labels of all λ-abstractions
//! (the finite universe `CL⊤` needed by the §4.4 loop rule).

use crate::arena::{normalize_arena, AnfArena, AnfId};
use crate::ast::{AVal, AValKind, Anf, AnfKind, Bind};
use crate::normalize::normalize;
use cpsdfa_syntax::arena::TermArena;
use cpsdfa_syntax::ast::Term;
use cpsdfa_syntax::free::{free_vars, has_unique_binders};
use cpsdfa_syntax::fresh::freshen_with;
use cpsdfa_syntax::label::LabelGen;
use cpsdfa_syntax::{FreshGen, Ident, Label};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A dense index for a program variable; abstract stores are `Vec`s indexed
/// by `VarId` (§4.1: one abstract location per variable).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Errors raised when validating a hand-built ANF term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnfError {
    /// Two binders use the same variable, violating the §2 hygiene
    /// assumption.
    DuplicateBinder(Ident),
    /// A binder shadows (or collides with) a free variable of the program.
    BinderShadowsFree(Ident),
}

impl fmt::Display for AnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnfError::DuplicateBinder(x) => write!(f, "duplicate binder `{x}`"),
            AnfError::BinderShadowsFree(x) => {
                write!(
                    f,
                    "binder `{x}` collides with a free variable of the program"
                )
            }
        }
    }
}

impl Error for AnfError {}

/// Information about one λ-abstraction in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LambdaRef<'p> {
    /// The label of the λ value (the identity of the abstract closure
    /// `(cle x, M)`).
    pub label: Label,
    /// The parameter `x`.
    pub param: &'p Ident,
    /// The parameter's dense index.
    pub param_id: VarId,
    /// The body `M`.
    pub body: &'p Anf,
}

/// A labeled, validated program in the restricted subset.
///
/// The program owns two views of the same term: the flat [`AnfArena`]
/// (what the arena normalizer produced — `Copy` ids, one `Vec` slot per
/// node) and the boxed [`Anf`] tree materialized from it (the interchange
/// form the interpreters and printers walk). Labels agree between the two
/// by construction.
#[derive(Clone)]
pub struct AnfProgram {
    root: Anf,
    arena: AnfArena,
    root_id: AnfId,
    /// VarId → name.
    vars: Vec<Ident>,
    var_ids: HashMap<Ident, VarId>,
    free: Vec<VarId>,
    label_count: u32,
    lambda_labels: Vec<Label>,
    fresh: FreshGen,
}

impl AnfProgram {
    /// Normalizes a Λ term into a labeled program. If the term does not have
    /// unique binders it is α-freshened first, so this constructor accepts
    /// any Λ term.
    ///
    /// ```
    /// use cpsdfa_anf::AnfProgram;
    /// use cpsdfa_syntax::parse::parse_term;
    /// let t = parse_term("(f (let (x 1) (g x)))").unwrap();
    /// let p = AnfProgram::from_term(&t);
    /// assert_eq!(
    ///     p.root().to_string(),
    ///     "(let (x 1) (let (t%0 (g x)) (let (t%1 (f t%0)) t%1)))"
    /// );
    /// assert!(p.var_named("x").is_some());
    /// ```
    pub fn from_term(term: &Term) -> AnfProgram {
        let mut gen = FreshGen::new();
        let hygienic;
        let term = if has_unique_binders(term) {
            term
        } else {
            hygienic = freshen_with(term, &mut gen);
            &hygienic
        };
        let mut ta = TermArena::new();
        let tid = ta.from_term(term);
        let (mut arena, root_id) = normalize_arena(&ta, tid, &mut gen);
        let label_count = arena.assign_labels(root_id);
        let root = arena.to_anf(root_id);
        Self::index(root, arena, root_id, label_count, gen)
            .expect("normalization of a hygienic term yields unique binders")
    }

    /// Like [`from_term`](Self::from_term) but through the legacy boxed
    /// normalizer and labeling pass. Kept as the differential-testing
    /// oracle: the interned pipeline's output must be byte-identical to
    /// this one's on every input.
    pub fn from_term_via_boxed(term: &Term) -> AnfProgram {
        let mut gen = FreshGen::new();
        let hygienic;
        let term = if has_unique_binders(term) {
            term
        } else {
            hygienic = freshen_with(term, &mut gen);
            &hygienic
        };
        let mut root = normalize(term, &mut gen);
        let mut labels = LabelGen::new();
        label_term(&mut root, &mut labels);
        let mut arena = AnfArena::new();
        let root_id = arena.from_anf(&root);
        Self::index(root, arena, root_id, labels.count(), gen)
            .expect("normalization of a hygienic term yields unique binders")
    }

    /// Parses and normalizes in one step.
    ///
    /// # Errors
    ///
    /// Returns the parser's error for malformed source text.
    pub fn parse(src: &str) -> Result<AnfProgram, cpsdfa_syntax::parse::ParseError> {
        Ok(Self::from_term(&cpsdfa_syntax::parse::parse_term(src)?))
    }

    /// Wraps a hand-built ANF term, validating the hygiene assumptions.
    ///
    /// # Errors
    ///
    /// Returns [`AnfError`] if binders are duplicated or collide with free
    /// variables.
    pub fn from_root(root: Anf) -> Result<AnfProgram, AnfError> {
        let mut root = root;
        let mut labels = LabelGen::new();
        label_term(&mut root, &mut labels);
        let mut arena = AnfArena::new();
        let root_id = arena.from_anf(&root);
        Self::index(root, arena, root_id, labels.count(), FreshGen::new())
    }

    fn index(
        root: Anf,
        arena: AnfArena,
        root_id: AnfId,
        label_count: u32,
        fresh: FreshGen,
    ) -> Result<AnfProgram, AnfError> {
        // Index variables: free variables first (so seeding them is easy),
        // then binders in label order. Free variables are sorted by *name*:
        // `Ident`'s own order is by intern index, which depends on global
        // interner state, and VarId assignment must be deterministic.
        let term = root.to_term();
        let mut vars = Vec::new();
        let mut var_ids: HashMap<Ident, VarId> = HashMap::new();
        let mut free = Vec::new();
        let mut free_sorted: Vec<Ident> = free_vars(&term).into_iter().collect();
        free_sorted.sort_by_key(|x| x.as_str());
        for x in free_sorted {
            let id = VarId(vars.len() as u32);
            vars.push(x.clone());
            var_ids.insert(x, id);
            free.push(id);
        }
        let mut dup: Option<AnfError> = None;
        {
            let free_count = vars.len();
            let mut add_binder = |x: &Ident| {
                if dup.is_some() {
                    return;
                }
                if let Some(prev) = var_ids.get(x) {
                    dup = Some(if prev.index() < free_count {
                        AnfError::BinderShadowsFree(x.clone())
                    } else {
                        AnfError::DuplicateBinder(x.clone())
                    });
                    return;
                }
                let id = VarId(vars.len() as u32);
                vars.push(x.clone());
                var_ids.insert(x.clone(), id);
            };
            root.visit_terms(&mut |t| {
                if let AnfKind::Let { var, .. } = &t.kind {
                    add_binder(var);
                }
            });
            root.visit_values(&mut |v| {
                if let AValKind::Lam(x, _) = &v.kind {
                    add_binder(x);
                }
            });
        }
        if let Some(e) = dup {
            return Err(e);
        }

        // Collect λ labels (the universe CL⊤).
        let mut lambda_labels = Vec::new();
        root.visit_values(&mut |v| {
            if v.is_lambda() {
                lambda_labels.push(v.label);
            }
        });

        Ok(AnfProgram {
            root,
            arena,
            root_id,
            vars,
            var_ids,
            free,
            label_count,
            lambda_labels,
            fresh,
        })
    }

    /// The normalized, labeled term.
    pub fn root(&self) -> &Anf {
        &self.root
    }

    /// The flat arena backing the program.
    pub fn arena(&self) -> &AnfArena {
        &self.arena
    }

    /// The arena id of the root term.
    pub fn root_id(&self) -> AnfId {
        self.root_id
    }

    /// The number of labels assigned (labels are `0..label_count`).
    pub fn label_count(&self) -> u32 {
        self.label_count
    }

    /// The number of indexed variables (bound + free).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The dense id of a variable, if it occurs in the program.
    pub fn var_id(&self, x: &Ident) -> Option<VarId> {
        self.var_ids.get(x).copied()
    }

    /// The name of an indexed variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this program.
    pub fn ident(&self, id: VarId) -> &Ident {
        &self.vars[id.index()]
    }

    /// Looks up a variable by source name. Exact matches win; otherwise a
    /// *unique* freshened variant (`name%N`) matches, so paper examples can
    /// be queried by their original names even after α-freshening.
    pub fn var_named(&self, name: &str) -> Option<VarId> {
        if let Some(id) = self.var_ids.get(&Ident::new(name)) {
            return Some(*id);
        }
        let prefix = format!("{name}%");
        let mut found = None;
        for (i, x) in self.vars.iter().enumerate() {
            if x.as_str().starts_with(&prefix) {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(VarId(i as u32));
            }
        }
        found
    }

    /// Iterates over `(VarId, name)` pairs in index order.
    pub fn iter_vars(&self) -> impl Iterator<Item = (VarId, &Ident)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, x)| (VarId(i as u32), x))
    }

    /// The free variables of the program (their ids precede all binders).
    pub fn free_vars(&self) -> &[VarId] {
        &self.free
    }

    /// Labels of every λ in the program — the universe `CL⊤` used when the
    /// §4.4 loop rule must return the least precise closure set.
    pub fn lambda_labels(&self) -> &[Label] {
        &self.lambda_labels
    }

    /// Collects a reference table of every λ in the program, for analyzers
    /// that must apply abstract closures by label.
    pub fn lambdas(&self) -> HashMap<Label, LambdaRef<'_>> {
        let mut out = HashMap::new();
        self.root.visit_values(&mut |v| {
            if let AValKind::Lam(x, body) = &v.kind {
                let param_id = self.var_id(x).expect("lambda parameter is indexed");
                out.insert(
                    v.label,
                    LambdaRef {
                        label: v.label,
                        param: x,
                        param_id,
                        body,
                    },
                );
            }
        });
        out
    }

    /// A fresh-name generator that cannot collide with any name in the
    /// program; the CPS transform continues from here.
    pub fn fresh_gen(&self) -> FreshGen {
        self.fresh.clone()
    }

    /// Renders the program with one binding per line.
    pub fn pretty(&self) -> String {
        cpsdfa_syntax::print::pretty(&self.root.to_term())
    }
}

impl fmt::Display for AnfProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

impl fmt::Debug for AnfProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnfProgram")
            .field("root", &self.root)
            .field("vars", &self.vars)
            .field("labels", &self.label_count)
            .finish()
    }
}

/// Assigns dense labels to a boxed ANF tree in the canonical pre-order,
/// returning the number of labels. This is the legacy labeling pass the
/// arena pipeline's [`AnfArena::assign_labels`] mirrors; it is public so
/// the differential corpus tests and the pipeline benchmark can drive the
/// boxed oracle end to end.
pub fn label_anf(root: &mut Anf) -> u32 {
    let mut labels = LabelGen::new();
    label_term(root, &mut labels);
    labels.count()
}

fn label_term(t: &mut Anf, gen: &mut LabelGen) {
    t.label = gen.next();
    match &mut t.kind {
        AnfKind::Value(v) => label_value(v, gen),
        AnfKind::Let { bind, body, .. } => {
            match bind {
                Bind::Value(v) => label_value(v, gen),
                Bind::App(a, b) => {
                    label_value(a, gen);
                    label_value(b, gen);
                }
                Bind::If0(c, then_, else_) => {
                    label_value(c, gen);
                    label_term(then_, gen);
                    label_term(else_, gen);
                }
                Bind::Loop => {}
            }
            label_term(body, gen);
        }
    }
}

fn label_value(v: &mut AVal, gen: &mut LabelGen) {
    v.label = gen.next();
    if let AValKind::Lam(_, body) = &mut v.kind {
        label_term(body, gen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_syntax::parse::parse_term;

    fn prog(src: &str) -> AnfProgram {
        AnfProgram::parse(src).unwrap()
    }

    #[test]
    fn labels_are_dense_and_unique() {
        let p = prog("(let (a (f 1)) (let (b (if0 a 2 (g a))) b))");
        let mut seen = std::collections::HashSet::new();
        p.root().visit_terms(&mut |t| {
            assert!(t.label.is_assigned());
            assert!(seen.insert(t.label));
        });
        p.root().visit_values(&mut |v| {
            assert!(v.label.is_assigned());
            assert!(seen.insert(v.label));
        });
        assert_eq!(seen.len() as u32, p.label_count());
    }

    #[test]
    fn free_vars_are_indexed_first() {
        let p = prog("(let (a (f 1)) (g a))");
        let free: Vec<_> = p.free_vars().iter().map(|&v| p.ident(v).as_str()).collect();
        assert_eq!(free, ["f", "g"]);
        assert!(p.var_id(&Ident::new("a")).unwrap().index() >= 2);
    }

    #[test]
    fn var_named_matches_fresh_suffixes() {
        // Shadowed binders get freshened; both variants of `x` exist, so the
        // base name is ambiguous, but unique names resolve.
        let t = parse_term("(let (x 1) (let (x (add1 x)) (let (y x) y)))").unwrap();
        let p = AnfProgram::from_term(&t);
        assert!(p.var_named("y").is_some());
        assert!(p.var_named("x").is_none()); // ambiguous after freshening
        assert!(p.var_named("nonexistent").is_none());
    }

    #[test]
    fn lambda_table_contains_every_lambda() {
        let p = prog("(let (f (lambda (x) x)) (let (g (lambda (y) (f y))) (g 1)))");
        let lambdas = p.lambdas();
        assert_eq!(lambdas.len(), 2);
        assert_eq!(p.lambda_labels().len(), 2);
        for l in p.lambda_labels() {
            assert!(lambdas.contains_key(l));
        }
    }

    #[test]
    fn from_root_rejects_duplicate_binders() {
        use crate::ast::*;
        let dup = Anf::new(AnfKind::Let {
            var: Ident::new("x"),
            bind: Bind::Value(AVal::new(AValKind::Num(1))),
            body: Box::new(Anf::new(AnfKind::Let {
                var: Ident::new("x"),
                bind: Bind::Value(AVal::new(AValKind::Num(2))),
                body: Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Var(
                    Ident::new("x"),
                ))))),
            })),
        });
        assert_eq!(
            AnfProgram::from_root(dup).unwrap_err(),
            AnfError::DuplicateBinder(Ident::new("x"))
        );
    }

    #[test]
    fn from_root_rejects_binder_colliding_with_free() {
        use crate::ast::*;
        // (let (x x) x): binder x, but x is also free (in the rhs).
        let t = Anf::new(AnfKind::Let {
            var: Ident::new("x"),
            bind: Bind::Value(AVal::new(AValKind::Var(Ident::new("x")))),
            body: Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Var(
                Ident::new("x"),
            ))))),
        });
        assert_eq!(
            AnfProgram::from_root(t).unwrap_err(),
            AnfError::BinderShadowsFree(Ident::new("x"))
        );
    }

    #[test]
    fn num_vars_counts_free_and_bound() {
        let p = prog("(let (a (f 1)) a)");
        assert_eq!(p.num_vars(), 2); // f, a
        let names: Vec<_> = p.iter_vars().map(|(_, x)| x.as_str().to_owned()).collect();
        assert!(names.contains(&"f".to_owned()));
        assert!(names.contains(&"a".to_owned()));
    }

    #[test]
    fn display_shows_normalized_program() {
        let p = prog("(add1 1)");
        assert_eq!(p.to_string(), "(let (t%0 (add1 1)) t%0)");
        assert!(!p.pretty().is_empty());
    }
}
