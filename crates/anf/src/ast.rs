//! Abstract syntax of the paper's *restricted subset* of Λ (§2):
//!
//! ```text
//! M ::= V
//!     | (let (x V) M)
//!     | (let (x (V V)) M)
//!     | (let (x (if0 V M M)) M)
//!     | (let (x (loop)) M)          ; §6.2 extension
//! V ::= n | x | add1 | sub1 | (λx.M)
//! ```
//!
//! Every intermediate result is named — the data flow analyzers associate
//! information with variables instead of expression labels (footnote 2 of the
//! paper). Every node additionally carries a [`Label`] so abstract closures
//! and continuations can be identified by program point.

use cpsdfa_syntax::ast::{Term, Value};
use cpsdfa_syntax::{Ident, Label};
use std::fmt;

/// A term of the restricted subset, with a program-point label.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Anf {
    /// The label of this node (assigned by [`crate::program::AnfProgram`]).
    pub label: Label,
    /// The structure of the term.
    pub kind: AnfKind,
}

/// The shape of an ANF term: a value in tail position, or a `let`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum AnfKind {
    /// A value in tail position — the result of the whole term.
    Value(AVal),
    /// `(let (x B) M)` for a binding form `B`.
    Let {
        /// The bound variable `x`.
        var: Ident,
        /// The right-hand side.
        bind: Bind,
        /// The body `M`.
        body: Box<Anf>,
    },
}

/// The right-hand side of a `let` binding.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Bind {
    /// `(let (x V) M)` — bind a value.
    Value(AVal),
    /// `(let (x (V V)) M)` — bind the result of an application.
    App(AVal, AVal),
    /// `(let (x (if0 V M M)) M)` — bind the result of a conditional.
    If0(AVal, Box<Anf>, Box<Anf>),
    /// `(let (x (loop)) M)` — the §6.2 infinite-value construct.
    Loop,
}

/// A syntactic value of the restricted subset, with a label.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AVal {
    /// The label of this value (for λ this identifies the abstract closure).
    pub label: Label,
    /// The structure of the value.
    pub kind: AValKind,
}

/// The shape of an ANF value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum AValKind {
    /// A numeral.
    Num(i64),
    /// A variable occurrence.
    Var(Ident),
    /// The successor primitive.
    Add1,
    /// The predecessor primitive.
    Sub1,
    /// A user procedure `(λx.M)` with ANF body.
    Lam(Ident, Box<Anf>),
}

impl Anf {
    /// Creates an unlabeled node; labels are assigned by the program builder.
    pub fn new(kind: AnfKind) -> Self {
        Anf {
            label: Label::UNASSIGNED,
            kind,
        }
    }

    /// The number of nodes (terms + values) in the term.
    pub fn size(&self) -> usize {
        match &self.kind {
            AnfKind::Value(v) => 1 + v.size(),
            AnfKind::Let { bind, body, .. } => 1 + bind.size() + body.size(),
        }
    }

    /// Visits every `Anf` node (including `if0` arms and λ bodies),
    /// outermost first.
    pub fn visit_terms<'a>(&'a self, f: &mut impl FnMut(&'a Anf)) {
        f(self);
        match &self.kind {
            AnfKind::Value(v) => v.visit_inner_terms(f),
            AnfKind::Let { bind, body, .. } => {
                match bind {
                    Bind::Value(v) => v.visit_inner_terms(f),
                    Bind::App(a, b) => {
                        a.visit_inner_terms(f);
                        b.visit_inner_terms(f);
                    }
                    Bind::If0(c, t, e) => {
                        c.visit_inner_terms(f);
                        t.visit_terms(f);
                        e.visit_terms(f);
                    }
                    Bind::Loop => {}
                }
                body.visit_terms(f);
            }
        }
    }

    /// Visits every value node in the term, outermost first.
    pub fn visit_values<'a>(&'a self, f: &mut impl FnMut(&'a AVal)) {
        match &self.kind {
            AnfKind::Value(v) => v.visit_values(f),
            AnfKind::Let { bind, body, .. } => {
                match bind {
                    Bind::Value(v) => v.visit_values(f),
                    Bind::App(a, b) => {
                        a.visit_values(f);
                        b.visit_values(f);
                    }
                    Bind::If0(c, t, e) => {
                        c.visit_values(f);
                        t.visit_values(f);
                        e.visit_values(f);
                    }
                    Bind::Loop => {}
                }
                body.visit_values(f);
            }
        }
    }

    /// Converts back into the full language Λ (left inverse of normalization
    /// up to α-equivalence; used for differential testing and printing).
    pub fn to_term(&self) -> Term {
        match &self.kind {
            AnfKind::Value(v) => Term::Value(v.to_value()),
            AnfKind::Let { var, bind, body } => Term::Let(
                var.clone(),
                Box::new(bind.to_term()),
                Box::new(body.to_term()),
            ),
        }
    }
}

impl AVal {
    /// Creates an unlabeled value node.
    pub fn new(kind: AValKind) -> Self {
        AVal {
            label: Label::UNASSIGNED,
            kind,
        }
    }

    /// The number of nodes in the value.
    pub fn size(&self) -> usize {
        match &self.kind {
            AValKind::Lam(_, body) => 1 + body.size(),
            _ => 1,
        }
    }

    /// True for λ values.
    pub fn is_lambda(&self) -> bool {
        matches!(self.kind, AValKind::Lam(..))
    }

    fn visit_inner_terms<'a>(&'a self, f: &mut impl FnMut(&'a Anf)) {
        if let AValKind::Lam(_, body) = &self.kind {
            body.visit_terms(f);
        }
    }

    fn visit_values<'a>(&'a self, f: &mut impl FnMut(&'a AVal)) {
        f(self);
        if let AValKind::Lam(_, body) = &self.kind {
            body.visit_values(f);
        }
    }

    /// Converts back into a Λ value.
    pub fn to_value(&self) -> Value {
        match &self.kind {
            AValKind::Num(n) => Value::Num(*n),
            AValKind::Var(x) => Value::Var(x.clone()),
            AValKind::Add1 => Value::Add1,
            AValKind::Sub1 => Value::Sub1,
            AValKind::Lam(x, body) => Value::Lam(x.clone(), Box::new(body.to_term())),
        }
    }
}

impl Bind {
    /// The number of nodes in the binding form.
    pub fn size(&self) -> usize {
        match self {
            Bind::Value(v) => v.size(),
            Bind::App(a, b) => 1 + a.size() + b.size(),
            Bind::If0(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Bind::Loop => 1,
        }
    }

    /// Converts back into a Λ term.
    pub fn to_term(&self) -> Term {
        match self {
            Bind::Value(v) => Term::Value(v.to_value()),
            Bind::App(f, a) => Term::App(
                Box::new(Term::Value(f.to_value())),
                Box::new(Term::Value(a.to_value())),
            ),
            Bind::If0(c, t, e) => Term::If0(
                Box::new(Term::Value(c.to_value())),
                Box::new(t.to_term()),
                Box::new(e.to_term()),
            ),
            Bind::Loop => Term::Loop,
        }
    }
}

impl fmt::Display for Anf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_term())
    }
}

impl fmt::Display for AVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

impl fmt::Display for Bind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_term())
    }
}

impl fmt::Debug for Anf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self, self.label)
    }
}

impl fmt::Debug for AVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self, self.label)
    }
}

impl fmt::Debug for Bind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Anf {
        // (let (x 1) (let (y (add1 x)) y))
        Anf::new(AnfKind::Let {
            var: Ident::new("x"),
            bind: Bind::Value(AVal::new(AValKind::Num(1))),
            body: Box::new(Anf::new(AnfKind::Let {
                var: Ident::new("y"),
                bind: Bind::App(
                    AVal::new(AValKind::Add1),
                    AVal::new(AValKind::Var(Ident::new("x"))),
                ),
                body: Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Var(
                    Ident::new("y"),
                ))))),
            })),
        })
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(sample().to_string(), "(let (x 1) (let (y (add1 x)) y))");
    }

    #[test]
    fn size_counts_terms_and_values() {
        // let + 1 + let + app + add1 + x + value-term + y = 8
        assert_eq!(sample().size(), 8);
    }

    #[test]
    fn visit_terms_reaches_if0_arms_and_lambda_bodies() {
        let t = Anf::new(AnfKind::Let {
            var: Ident::new("r"),
            bind: Bind::If0(
                AVal::new(AValKind::Num(0)),
                Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Num(1))))),
                Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Lam(
                    Ident::new("z"),
                    Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Var(
                        Ident::new("z"),
                    ))))),
                ))))),
            ),
            body: Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Var(
                Ident::new("r"),
            ))))),
        });
        let mut count = 0;
        t.visit_terms(&mut |_| count += 1);
        // let, then-arm, else-arm, lambda body, outer body
        assert_eq!(count, 5);
        let mut values = 0;
        t.visit_values(&mut |_| values += 1);
        // 0, 1, lambda, z, r
        assert_eq!(values, 5);
    }

    #[test]
    fn to_term_roundtrips_through_display() {
        let t = sample();
        let term = t.to_term();
        assert_eq!(term.to_string(), t.to_string());
    }

    #[test]
    fn loop_bind_prints() {
        let t = Anf::new(AnfKind::Let {
            var: Ident::new("x"),
            bind: Bind::Loop,
            body: Box::new(Anf::new(AnfKind::Value(AVal::new(AValKind::Var(
                Ident::new("x"),
            ))))),
        });
        assert_eq!(t.to_string(), "(let (x (loop)) x)");
    }
}
