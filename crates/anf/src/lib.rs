//! A-normal forms: the paper's *restricted subset* of Λ (§2).
//!
//! The data flow analyzers of Sabry & Felleisen (PLDI 1994) operate on a
//! restricted language in which every intermediate result is named and all
//! bound variables are unique:
//!
//! ```text
//! M ::= V | (let (x V) M) | (let (x (V V)) M) | (let (x (if0 V M M)) M)
//! V ::= n | x | add1 | sub1 | (λx.M)
//! ```
//!
//! This crate provides the [ANF abstract syntax](ast), the
//! [A-normalization pass](mod@normalize) (the A-reductions of Flanagan et al.,
//! PLDI 1993), and [`AnfProgram`] — a labeled, indexed, validated program
//! ready for interpretation and analysis.
//!
//! ```
//! use cpsdfa_anf::AnfProgram;
//! let p = AnfProgram::parse("(f (let (x 1) (g x)))")?;
//! assert_eq!(
//!     p.root().to_string(),
//!     "(let (x 1) (let (t%0 (g x)) (let (t%1 (f t%0)) t%1)))"
//! );
//! # Ok::<(), cpsdfa_syntax::parse::ParseError>(())
//! ```

pub mod arena;
pub mod ast;
pub mod normalize;
pub mod program;

pub use arena::{normalize_arena, AValId, AnfArena, AnfId};
pub use ast::{AVal, AValKind, Anf, AnfKind, Bind};
pub use normalize::normalize;
pub use program::{label_anf, AnfError, AnfProgram, LambdaRef, VarId};
