//! Property tests for A-normalization: idempotence, shape preservation,
//! and the structural invariants of the restricted subset.

use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, AnfProgram, Bind};
use cpsdfa_syntax::ast::{Term, Value};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "f", "g", "x", "y"]).prop_map(str::to_owned)
}

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|n| Term::Value(Value::Num(n))),
        ident_strategy().prop_map(|x| Term::Value(Value::Var(x.into()))),
        Just(Term::Value(Value::Add1)),
        Just(Term::Value(Value::Sub1)),
    ];
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            (ident_strategy(), inner.clone())
                .prop_map(|(x, b)| Term::Value(Value::Lam(x.into(), Box::new(b)))),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| Term::App(Box::new(f), Box::new(a))),
            (ident_strategy(), inner.clone(), inner.clone()).prop_map(|(x, r, b)| Term::Let(
                x.into(),
                Box::new(r),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Term::If0(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

/// The restricted grammar of §2, checked structurally: every `let` right-
/// hand side is a value, a value application, a conditional on a value, or
/// `loop`; conditionals and applications appear nowhere else.
fn assert_restricted(m: &Anf) {
    match &m.kind {
        AnfKind::Value(v) => assert_value(v),
        AnfKind::Let { bind, body, .. } => {
            match bind {
                Bind::Value(v) => assert_value(v),
                Bind::App(f, a) => {
                    assert_value(f);
                    assert_value(a);
                }
                Bind::If0(c, t, e) => {
                    assert_value(c);
                    assert_restricted(t);
                    assert_restricted(e);
                }
                Bind::Loop => {}
            }
            assert_restricted(body);
        }
    }
}

fn assert_value(v: &AVal) {
    if let AValKind::Lam(_, body) = &v.kind {
        assert_restricted(body);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn normalization_produces_the_restricted_subset(t in term_strategy()) {
        let p = AnfProgram::from_term(&t);
        assert_restricted(p.root());
    }

    #[test]
    fn normalization_is_idempotent_up_to_size(t in term_strategy()) {
        // Re-normalizing an already-normal program neither grows nor
        // shrinks it (temporaries may be renamed, structure is stable).
        let p1 = AnfProgram::from_term(&t);
        let p2 = AnfProgram::from_term(&p1.root().to_term());
        prop_assert_eq!(p1.root().size(), p2.root().size());
        prop_assert_eq!(p1.num_vars(), p2.num_vars());
        prop_assert_eq!(p1.lambda_labels().len(), p2.lambda_labels().len());
    }

    #[test]
    fn normalization_preserves_lambda_count_and_free_vars(t in term_strategy()) {
        use cpsdfa_syntax::free::free_vars;
        let p = AnfProgram::from_term(&t);
        let normal = p.root().to_term();
        prop_assert_eq!(normal.lambda_count(), t.lambda_count());
        prop_assert_eq!(free_vars(&normal), free_vars(&t));
    }

    #[test]
    fn labels_are_dense_and_unique(t in term_strategy()) {
        let p = AnfProgram::from_term(&t);
        let mut labels = Vec::new();
        p.root().visit_terms(&mut |m| labels.push(m.label));
        p.root().visit_values(&mut |v| labels.push(v.label));
        let unique: std::collections::HashSet<_> = labels.iter().copied().collect();
        prop_assert!(labels.iter().all(|l| l.is_assigned()));
        prop_assert_eq!(unique.len(), labels.len());
        prop_assert_eq!(labels.len() as u32, p.label_count());
    }
}
