//! The experiment harness: regenerates every result of Sabry & Felleisen
//! (PLDI 1994) as a table. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded output with paper-vs-measured commentary.
//!
//! ```sh
//! cargo run --release -p cpsdfa-bench --bin experiments            # all
//! cargo run --release -p cpsdfa-bench --bin experiments -- E1 E6  # subset
//! cargo run --release -p cpsdfa-bench --bin experiments -- E16 --trace e16.jsonl
//! cargo run --release -p cpsdfa-bench --bin experiments -- --regen-e16 e16.jsonl
//! ```
//!
//! `--trace <path>` records structured JSONL trace events (per-experiment
//! spans, solver counters, wall times) to `<path>` while the experiments
//! run. `--regen-e16 <path>` reads such a file back and reprints the E16
//! table from the recorded events alone — no re-measurement. `--test`
//! shrinks the measurement grids (used by the CI fault-injection and
//! bench-smoke jobs to exercise E18/E19 quickly).

use cpsdfa_anf::AnfProgram;
use cpsdfa_bench::{run_goals, Analyzer};
use cpsdfa_core::cfa::{zero_cfa, zero_cfa_cps};
use cpsdfa_core::deltae::{compare_via_delta, overall};
use cpsdfa_core::distrib;
use cpsdfa_core::domain::{AnyNum, Flat, Interval, NumDomain, Parity, PowerSet, Sign};
use cpsdfa_core::govern::RunGuard;
use cpsdfa_core::mfp::{Cfg, Cond, Node, NodeId, PathMode, Stmt};
use cpsdfa_core::precision::{compare_stores, Census};
use cpsdfa_core::report::render_table;
use cpsdfa_core::trace::{self, AggSink, JsonlSink, NoopSink, TraceSink};
use cpsdfa_core::{
    AnalysisBudget, DirectAnalyzer, SemCpsAnalyzer, SolverMode, SolverStats, SynCpsAnalyzer,
};
use cpsdfa_cps::CpsProgram;
use cpsdfa_interp::{
    run_direct, run_semcps, run_syncps, stores_delta_related, value_delta_eq, Fuel,
};
use cpsdfa_workloads::par::par_map;
use cpsdfa_workloads::random::{corpus, open_config, GenConfig};
use cpsdfa_workloads::{families, paper};

/// Removes `flag` and its value from `args`, returning the value. Both
/// `--flag path` and `--flag=path` spellings are accepted.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 < args.len() {
            let v = args.remove(i + 1);
            args.remove(i);
            return Some(v);
        }
        args.remove(i);
        return None;
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_owned();
        return Some(v);
    }
    None
}

/// Removes a boolean `flag` from `args`, returning whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        return true;
    }
    false
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = take_flag_value(&mut args, "--trace");
    let test_mode = take_flag(&mut args, "--test");
    if let Some(path) = take_flag_value(&mut args, "--regen-e16") {
        e16_regen(&path);
        return;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    // One sink for the whole run: JSONL when --trace is given, otherwise a
    // statically-dispatched no-op whose calls compile to nothing.
    let mut sink: Box<dyn TraceSink> = match &trace_path {
        Some(p) => Box::new(JsonlSink::create(p).expect("create --trace output file")),
        None => Box::new(NoopSink),
    };
    let sink = &mut sink;

    println!("# cpsdfa experiment harness");
    println!("# Sabry & Felleisen, \"Is Continuation-Passing Useful for Data Flow Analysis?\", PLDI 1994");
    let workers = cpsdfa_workloads::par::worker_count();
    println!("# worker threads: {workers} (override with CPSDFA_WORKERS)");
    println!();
    sink.gauge("harness.workers", workers as u64);

    if want("E0") {
        trace::with_span(sink, "e0", e0_lemmas);
    }
    if want("E1") {
        trace::with_span(sink, "e1", |_| e1_theorem_5_1());
    }
    if want("E2") {
        trace::with_span(sink, "e2", |_| e2_theorem_5_2());
    }
    if want("E3") {
        trace::with_span(sink, "e3", |_| e3_theorem_5_4());
    }
    if want("E4") {
        trace::with_span(sink, "e4", |_| e4_theorem_5_5());
    }
    if want("E5") {
        trace::with_span(sink, "e5", |_| e5_false_returns());
    }
    if want("E6") {
        trace::with_span(sink, "e6", |_| e6_cond_chain_cost());
    }
    if want("E7") {
        trace::with_span(sink, "e7", |_| e7_dispatch_cost());
    }
    if want("E8") {
        trace::with_span(sink, "e8", |_| e8_loop_noncomputability());
    }
    if want("E9") {
        trace::with_span(sink, "e9", |_| e9_mop_vs_mfp());
    }
    if want("E10") {
        trace::with_span(sink, "e10", |_| e10_bounded_duplication());
    }
    if want("E11") {
        trace::with_span(sink, "e11", |_| e11_domain_sensitivity());
    }
    if want("E12") {
        trace::with_span(sink, "e12", |_| e12_zero_cfa());
    }
    if want("E13") {
        trace::with_span(sink, "e13", |_| e13_small_scope());
    }
    if want("E14") {
        trace::with_span(sink, "e14", |_| e14_context_sensitivity());
    }
    if want("E15") {
        trace::with_span(sink, "e15", |_| e15_optimizer());
    }
    if want("E16") {
        trace::with_span(sink, "e16", e16_solver_cost);
    }
    if want("E17") {
        trace::with_span(sink, "e17", e17_pipeline_throughput);
    }
    if want("E18") {
        trace::with_span(sink, "e18", |sink| e18_degradation(sink, test_mode));
    }
    if want("E19") {
        trace::with_span(sink, "e19", |sink| e19_par_scaling(sink, test_mode));
    }
    if want("E20") {
        trace::with_span(sink, "e20", |sink| e20_service(sink, test_mode));
    }
    if want("E21") {
        trace::with_span(sink, "e21", |sink| e21_pushdown_census(sink, test_mode));
    }
    if want("E22") {
        trace::with_span(sink, "e22", |sink| e22_incremental(sink, test_mode));
    }
    if want("E23") {
        trace::with_span(sink, "e23", |sink| e23_chaos(sink, test_mode));
    }
}

/// The hardware thread count the host actually has — recorded next to
/// every parallel-engine measurement so a reader can tell a true scaling
/// number from one taken on an oversubscribed machine (Par(K) with K
/// above this is measuring scheduling overhead, not the engine).
fn hw_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn section(id: &str, title: &str) {
    println!("\n## {id} — {title}\n");
}

fn fuel() -> Fuel {
    Fuel::new(500_000)
}

/// E0: Lemmas 3.1 and 3.3 over a 500-program random corpus.
fn e0_lemmas(sink: &mut impl TraceSink) {
    section(
        "E0",
        "Lemmas 3.1 / 3.3: the three interpreters agree (500 random programs)",
    );
    let cfg = GenConfig::default();
    let n = 500;
    let progs = corpus(0xE0, n, &cfg);
    let checks = par_map(&progs, |t| {
        let p = AnfProgram::from_term(t);
        let c = CpsProgram::from_anf(&p);
        let d = run_direct(&p, &[], fuel()).expect("typed corpus runs");
        let s = run_semcps(&p, &[], fuel()).expect("typed corpus runs");
        let m = run_syncps(&c, &[], fuel()).expect("typed corpus runs");
        (
            d.value.as_num() == s.value.as_num(),
            value_delta_eq(&d.value, &m.value, c.label_map()),
            stores_delta_related(&d.store, &m.store, c.label_map()),
            d.steps + s.steps + m.steps,
        )
    });
    // Fuel accounting: total interpreter transitions across the corpus (the
    // interp crate sits below core, so its fuel counters are surfaced here,
    // at the call site).
    let steps: u64 = checks.iter().map(|r| r.3).sum();
    sink.counter("e0.interp.steps", steps);
    sink.counter("e0.interp.runs", 3 * n as u64);
    let ok31 = checks.iter().filter(|r| r.0).count();
    let ok33_val = checks.iter().filter(|r| r.1).count();
    let ok33_sto = checks.iter().filter(|r| r.2).count();
    let rows = vec![
        vec!["Lemma 3.1: M ≡ C (answers)".into(), format!("{ok31}/{n}")],
        vec![
            "Lemma 3.3: M_c ≡ δ(M) (answers)".into(),
            format!("{ok33_val}/{n}"),
        ],
        vec![
            "Lemma 3.3: stores δ-related".into(),
            format!("{ok33_sto}/{n}"),
        ],
    ];
    println!("{}", render_table(&["claim", "holds"], &rows));
}

/// E1: Theorem 5.1 — the worked example, all three analyzers.
fn e1_theorem_5_1() {
    section(
        "E1",
        "Theorem 5.1: direct analysis strictly beats syntactic-CPS on Π1",
    );
    println!("program: {}\n", paper::THEOREM_5_1);
    let p = AnfProgram::parse(paper::THEOREM_5_1).unwrap();
    let c = CpsProgram::from_anf(&p);
    let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
    let sem = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
    let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();

    let mut rows = Vec::new();
    for (v, name) in p.iter_vars() {
        let syn_cell = c
            .user_var_id(name)
            .map(|id| syn.store.get(id).to_string())
            .unwrap_or_default();
        rows.push(vec![
            name.to_string(),
            d.store.get(v).to_string(),
            sem.store.get(v).to_string(),
            syn_cell,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "variable",
                "direct M_e",
                "semantic-CPS C_e",
                "syntactic-CPS M_s"
            ],
            &rows
        )
    );
    let cross = compare_via_delta(&p, &c, &d.store, &syn.store);
    println!("δe comparison (Theorem 5.1 statement): {}", overall(&cross));
    println!("paper expectation: direct proves a1 = 1; CPS analysis yields ⊤ (false return).");
}

/// E2: Theorem 5.2 — both worked examples.
fn e2_theorem_5_2() {
    section(
        "E2",
        "Theorem 5.2: syntactic-CPS strictly beats direct (duplication)",
    );
    for (case, src, expect) in [
        (
            "case 1 (branch correlation)",
            paper::THEOREM_5_2_CASE_1,
            3i64,
        ),
        (
            "case 2 (callee correlation)",
            paper::THEOREM_5_2_CASE_2,
            5i64,
        ),
    ] {
        println!("-- {case}: {src}\n");
        let p = AnfProgram::parse(src).unwrap();
        let c = CpsProgram::from_anf(&p);
        let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        let a2 = p.var_named("a2").unwrap();
        let a2c = c.var_named("a2").unwrap();
        let rows = vec![
            vec!["direct M_e".into(), d.store.get(a2).to_string()],
            vec!["syntactic-CPS M_s".into(), syn.store.get(a2c).to_string()],
        ];
        println!("{}", render_table(&["analyzer", "σ(a2)"], &rows));
        println!(
            "δe comparison: {} (paper expects CPS strictly better, a2 = {expect})\n",
            overall(&compare_via_delta(&p, &c, &d.store, &syn.store))
        );
    }
}

/// E3: Theorem 5.4 over a corpus, both clauses.
fn e3_theorem_5_4() {
    section(
        "E3",
        "Theorem 5.4: C_e refines M_e; equal iff the analysis is distributive",
    );
    let n = 300;
    let mut flat = Census::default();
    let mut any = Census::default();
    let progs = corpus(0xE3, n, &open_config());
    let orders = par_map(&progs, |t| {
        let p = AnfProgram::from_term(t);
        let df = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let cf = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let da = DirectAnalyzer::<AnyNum>::new(&p).analyze().unwrap();
        let ca = SemCpsAnalyzer::<AnyNum>::new(&p).analyze().unwrap();
        (
            compare_stores(&cf.store, &df.store),
            compare_stores(&ca.store, &da.store),
        )
    });
    for (flat_ord, any_ord) in orders {
        flat.record(flat_ord);
        any.record(any_ord);
    }
    let rows = vec![
        vec![
            "Flat (non-distributive)".into(),
            distrib::is_distributive::<Flat>().to_string(),
            flat.equal.to_string(),
            flat.left.to_string(),
            flat.right.to_string(),
            flat.incomparable.to_string(),
        ],
        vec![
            "AnyNum (distributive)".into(),
            distrib::is_distributive::<AnyNum>().to_string(),
            any.equal.to_string(),
            any.left.to_string(),
            any.right.to_string(),
            any.incomparable.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "domain",
                "Def 5.3 holds",
                "equal",
                "C_e strictly better",
                "M_e better (!)",
                "incomparable (!)"
            ],
            &rows
        )
    );
    println!("paper expectation: 'M_e better' and 'incomparable' columns are 0 in both rows;");
    println!("the strict column is 0 exactly in the distributive row. (n = {n} programs)");
}

/// E4: Theorem 5.5 over a corpus.
fn e4_theorem_5_5() {
    section(
        "E4",
        "Theorem 5.5: δe(C_e) refines M_s (semantic- vs syntactic-CPS)",
    );
    let n = 300;
    let mut census = Census::default();
    let progs = corpus(0xE4, n, &open_config());
    for order in par_map(&progs, |t| {
        let p = AnfProgram::from_term(t);
        let c = CpsProgram::from_anf(&p);
        let sem = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        overall(&compare_via_delta(&p, &c, &sem.store, &syn.store))
    }) {
        census.record(order);
    }
    // Random programs rarely call one procedure twice, so add the family
    // that drives false returns (strict instances of the theorem).
    let mut strict_family = Census::default();
    for m in 2..=8 {
        let p = AnfProgram::from_term(&families::repeated_calls(m));
        let c = CpsProgram::from_anf(&p);
        let sem = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        strict_family.record(overall(&compare_via_delta(&p, &c, &sem.store, &syn.store)));
    }
    let rows = vec![
        vec![
            format!("random corpus (n={n})"),
            census.equal.to_string(),
            census.left.to_string(),
            census.right.to_string(),
            census.incomparable.to_string(),
        ],
        vec![
            "repeated_calls(2..8)".into(),
            strict_family.equal.to_string(),
            strict_family.left.to_string(),
            strict_family.right.to_string(),
            strict_family.incomparable.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "corpus",
                "equal",
                "C_e strictly better",
                "M_s better (!)",
                "incomparable (!)"
            ],
            &rows
        )
    );
    println!("paper expectation: the last two columns are 0 everywhere; strictness appears");
    println!("exactly where returns are confused (several continuations at one k).");
}

/// E5: §6.1 false-return census on repeated calls and dispatch.
fn e5_false_returns() {
    section(
        "E5",
        "§6.1 false returns: merged continuation edges, CPS analysis only",
    );
    let mut rows = Vec::new();
    for m in 1..=8 {
        let p = AnfProgram::from_term(&families::repeated_calls(m));
        let c = CpsProgram::from_anf(&p);
        let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let a1 = p.var_named("a1").unwrap();
        rows.push(vec![
            m.to_string(),
            "0".into(),
            syn.flows.false_return_edges().to_string(),
            d.store.get(a1).num.to_string(),
            c.var_named("a1")
                .map(|v| syn.store.get(v).num.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "calls m",
                "direct false returns",
                "CPS false returns",
                "direct σ(a1)",
                "CPS σ(a1)"
            ],
            &rows
        )
    );
    println!("paper expectation: the direct analysis never confuses returns; the CPS");
    println!("analysis loses a1 as soon as a second continuation reaches the shared k (m ≥ 2).");
}

/// E6: §6.2 cost on cond_chain.
fn e6_cond_chain_cost() {
    section(
        "E6",
        "§6.2 duplication cost: goals on cond_chain(n) (2^n paths)",
    );
    let budget = AnalysisBudget::new(3_000_000);
    let mut rows = Vec::new();
    for n in 1..=14 {
        let p = AnfProgram::from_term(&families::cond_chain(n));
        let mut row = vec![n.to_string()];
        for a in [Analyzer::Direct, Analyzer::SemCps, Analyzer::SynCps] {
            row.push(match run_goals::<Flat>(a, &p, budget) {
                Ok(g) => g.to_string(),
                Err(_) => "budget!".into(),
            });
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["n", "direct", "semantic-cps", "syntactic-cps"], &rows)
    );
    println!("paper expectation: direct linear (3n+2 here); CPS-style ~2x per conditional.");
}

/// E7: §6.2 cost at call sites: dispatch(k) × repeated conditionals.
fn e7_dispatch_cost() {
    section(
        "E7",
        "§6.2 duplication cost at call sites: dispatch(k) goals",
    );
    let budget = AnalysisBudget::new(3_000_000);
    let mut rows = Vec::new();
    for k in 1..=8 {
        let p = AnfProgram::from_term(&families::dispatch(k));
        let mut row = vec![k.to_string()];
        for a in [Analyzer::Direct, Analyzer::SemCps, Analyzer::SynCps] {
            row.push(match run_goals::<Flat>(a, &p, budget) {
                Ok(g) => g.to_string(),
                Err(_) => "budget!".into(),
            });
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["closures k", "direct", "semantic-cps", "syntactic-cps"],
            &rows
        )
    );
    println!("paper expectation: at a call site the continuation is analyzed once per");
    println!("abstract closure — CPS-style cost grows with k while direct joins first.");
}

/// E8: §6.2 non-computability with the loop construct.
fn e8_loop_noncomputability() {
    section(
        "E8",
        "§6.2 loop: the semantic-CPS analysis is not computable",
    );
    let p = AnfProgram::from_term(&families::loop_then_branch(1));
    println!("program: {}\n", p.root());
    let mut rows = Vec::new();
    for budget in [1_000u64, 10_000, 100_000, 1_000_000] {
        let sem = SemCpsAnalyzer::<Flat>::new(&p)
            .with_budget(AnalysisBudget::new(budget))
            .analyze();
        let syn = {
            let c = CpsProgram::from_anf(&p);
            SynCpsAnalyzer::<Flat>::new(&c)
                .with_budget(AnalysisBudget::new(budget))
                .analyze()
                .map(|r| r.stats.goals)
        };
        rows.push(vec![
            budget.to_string(),
            match sem {
                Ok(_) => "converged (unexpected!)".into(),
                Err(_) => "budget exhausted".into(),
            },
            match syn {
                Ok(_) => "converged (unexpected!)".into(),
                Err(_) => "budget exhausted".into(),
            },
        ]);
    }
    println!(
        "{}",
        render_table(&["budget (goals)", "semantic-cps", "syntactic-cps"], &rows)
    );
    let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
    let w = SemCpsAnalyzer::<Flat>::new(&p)
        .with_loop_widening(true)
        .analyze()
        .unwrap();
    println!(
        "direct M_e terminates in {} goals (loop ↦ ⊤, §6.2's extension rule);",
        d.stats.goals
    );
    println!(
        "the widened repair (not the paper's analyzer) terminates in {} goals, result {} vs direct.",
        w.stats.goals,
        compare_stores(&w.store, &d.store)
    );
}

/// E9: §6.2 Nielson / Kam–Ullman: MFP vs MOP vs the analyzers.
fn e9_mop_vs_mfp() {
    section("E9", "§6.2 MFP vs MOP: M_e ~ MFP, C_e ~ feasible-path MOP");
    // Part 1: the analyzers against the substrate on diamond chains.
    let mut rows = Vec::new();
    for n in 1..=4 {
        let p = AnfProgram::from_term(&families::diamond_chain(n));
        let cfg = Cfg::from_first_order(&p).unwrap();
        let init = cfg.initial_env::<Flat>(&p);
        let mfp = cfg.solve_mfp::<Flat>(init.clone()).unwrap();
        let (mop, paths) = cfg
            .solve_mop::<Flat>(init, 100_000, PathMode::AllPaths)
            .unwrap();
        let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let bound_vars: Vec<_> = p
            .iter_vars()
            .filter(|(v, _)| !p.free_vars().contains(v))
            .collect();
        let direct_eq_mfp = bound_vars
            .iter()
            .all(|(v, _)| d.store.get(*v).num == *mfp.get(*v));
        let mop_eq_mfp = mop.leq(&mfp) && mfp.leq(&mop);
        rows.push(vec![
            n.to_string(),
            paths.to_string(),
            direct_eq_mfp.to_string(),
            mop_eq_mfp.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "diamonds n",
                "graph paths",
                "M_e = MFP",
                "MOP(all) = MFP (unary ⇒ distributive)"
            ],
            &rows
        )
    );

    // Part 2: feasible-path MOP matches C_e on the paper's diamond.
    let p = AnfProgram::parse(paper::THEOREM_5_2_CASE_1).unwrap();
    let cfg = Cfg::from_first_order(&p).unwrap();
    let init = cfg.initial_env::<Flat>(&p);
    let (mop_f, paths_f) = cfg
        .solve_mop::<Flat>(init.clone(), 100_000, PathMode::FeasiblePaths)
        .unwrap();
    let (mop_a, paths_a) = cfg
        .solve_mop::<Flat>(init, 100_000, PathMode::AllPaths)
        .unwrap();
    let sem = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
    let a2 = p.var_named("a2").unwrap();
    let rows = vec![vec![
        format!("{paths_a} / {paths_f}"),
        mop_a.get(a2).to_string(),
        mop_f.get(a2).to_string(),
        sem.store.get(a2).num.to_string(),
    ]];
    println!(
        "{}",
        render_table(
            &[
                "paths all/feasible",
                "MOP(all) σ(a2)",
                "MOP(feasible) σ(a2)",
                "C_e σ(a2)"
            ],
            &rows
        )
    );

    // Part 3: the classical Kam–Ullman separation (needs a binary transfer).
    use cpsdfa_anf::VarId;
    let (a, b, c, z) = (VarId(0), VarId(1), VarId(2), VarId(3));
    let nodes = vec![
        Node {
            stmt: Stmt::Havoc(z),
            succs: vec![NodeId(1)],
            cond: None,
        },
        Node {
            stmt: Stmt::Nop,
            succs: vec![NodeId(2), NodeId(4)],
            cond: Some(Cond::Var(z)),
        },
        Node {
            stmt: Stmt::Const(a, 1),
            succs: vec![NodeId(3)],
            cond: None,
        },
        Node {
            stmt: Stmt::Const(b, 2),
            succs: vec![NodeId(6)],
            cond: None,
        },
        Node {
            stmt: Stmt::Const(a, 2),
            succs: vec![NodeId(5)],
            cond: None,
        },
        Node {
            stmt: Stmt::Const(b, 1),
            succs: vec![NodeId(6)],
            cond: None,
        },
        Node {
            stmt: Stmt::Sum(c, a, b),
            succs: vec![NodeId(7)],
            cond: None,
        },
        Node {
            stmt: Stmt::Nop,
            succs: vec![],
            cond: None,
        },
    ];
    let g = Cfg::from_parts(nodes, NodeId(0), NodeId(7), 4).unwrap();
    let mfp = g.solve_mfp::<Flat>(g.bottom_env()).unwrap();
    let (mop, _) = g
        .solve_mop::<Flat>(g.bottom_env(), 100, PathMode::AllPaths)
        .unwrap();
    let rows = vec![vec![
        "c := a + b (hand-built)".into(),
        mfp.get(c).to_string(),
        mop.get(c).to_string(),
    ]];
    println!(
        "{}",
        render_table(&["Kam–Ullman classic", "MFP", "MOP"], &rows)
    );
    println!("paper expectation: MOP proves c = 3 where MFP reports ⊤ — and MOP is not");
    println!("computable in general, which is why the loop rule of E8 cannot be fixed.");
}

/// E10: §6.3 — bounded duplication as the practical alternative.
fn e10_bounded_duplication() {
    section(
        "E10",
        "§6.3 ablation: direct analysis + bounded duplication",
    );
    // Precision on the paper's examples, cost on cond_chain(12).
    let chain = AnfProgram::from_term(&families::cond_chain(12));
    let mut rows = Vec::new();
    for analyzer in [
        Analyzer::Direct,
        Analyzer::DirectDup(1),
        Analyzer::DirectDup(2),
        Analyzer::DirectDup(4),
        Analyzer::SemCps,
    ] {
        let goals = run_goals::<Flat>(analyzer, &chain, AnalysisBudget::new(3_000_000))
            .map(|g| g.to_string())
            .unwrap_or_else(|_| "budget!".into());
        let case1 = AnfProgram::parse(paper::THEOREM_5_2_CASE_1).unwrap();
        let case2 = AnfProgram::parse(paper::THEOREM_5_2_CASE_2).unwrap();
        let a2_of = |p: &AnfProgram| -> String {
            let v = p.var_named("a2").unwrap();
            match analyzer {
                Analyzer::SemCps => SemCpsAnalyzer::<Flat>::new(p)
                    .analyze()
                    .unwrap()
                    .store
                    .get(v)
                    .num
                    .to_string(),
                Analyzer::Direct => DirectAnalyzer::<Flat>::new(p)
                    .analyze()
                    .unwrap()
                    .store
                    .get(v)
                    .num
                    .to_string(),
                Analyzer::DirectDup(d) => DirectAnalyzer::<Flat>::new(p)
                    .with_duplication_depth(d)
                    .analyze()
                    .unwrap()
                    .store
                    .get(v)
                    .num
                    .to_string(),
                Analyzer::SynCps => unreachable!(),
            }
        };
        rows.push(vec![analyzer.label(), a2_of(&case1), a2_of(&case2), goals]);
    }
    println!(
        "{}",
        render_table(
            &[
                "analyzer",
                "Thm5.2c1 σ(a2)",
                "Thm5.2c2 σ(a2)",
                "goals on cond_chain(12)"
            ],
            &rows
        )
    );
    println!("paper conclusion (§6.3): 'a direct data flow analysis that relies on some");
    println!("amount of duplication would be as satisfactory as a CPS analysis' — depth 1");
    println!("already recovers both Theorem 5.2 gains at a fraction of the full CPS cost.");

    // Sensitivity: PowerSet tightens everything but the ordering persists.
    let p = AnfProgram::parse(paper::THEOREM_5_2_CASE_1).unwrap();
    let a2 = p.var_named("a2").unwrap();
    let d = DirectAnalyzer::<PowerSet<8>>::new(&p).analyze().unwrap();
    let s = SemCpsAnalyzer::<PowerSet<8>>::new(&p).analyze().unwrap();
    println!(
        "\nPowerSet<8> sensitivity: direct σ(a2) = {} vs semantic-CPS σ(a2) = {}",
        d.store.get(a2).num,
        s.store.get(a2).num
    );
}

/// E11: extension — the paper's comparisons across richer numeric domains.
fn e11_domain_sensitivity() {
    section(
        "E11",
        "extension: domain sensitivity — the analyzer orderings are domain-independent",
    );

    fn row<D: NumDomain>(name: &str) -> Vec<String> {
        let p = AnfProgram::parse(paper::THEOREM_5_2_CASE_1).unwrap();
        let a2 = p.var_named("a2").unwrap();
        let d = DirectAnalyzer::<D>::new(&p).analyze().unwrap();
        let s = SemCpsAnalyzer::<D>::new(&p).analyze().unwrap();
        let strict = s.store.leq(&d.store) && !d.store.leq(&s.store);
        // corpus census of C_e ⊑ M_e strictness
        let n = 120;
        let progs = corpus(0xE11, n, &open_config());
        let strict_count = par_map(&progs, |t| {
            let prog = AnfProgram::from_term(t);
            let dd = DirectAnalyzer::<D>::new(&prog).analyze().unwrap();
            let cc = SemCpsAnalyzer::<D>::new(&prog).analyze().unwrap();
            assert!(
                cc.store.leq(&dd.store),
                "Theorem 5.4 ordering violated for {name}"
            );
            !dd.store.leq(&cc.store)
        })
        .into_iter()
        .filter(|&strict| strict)
        .count();
        vec![
            name.to_owned(),
            distrib::is_distributive::<D>().to_string(),
            d.store.get(a2).num.to_string(),
            s.store.get(a2).num.to_string(),
            strict.to_string(),
            format!("{strict_count}/{n}"),
        ]
    }

    let rows = vec![
        row::<Flat>("Flat"),
        row::<PowerSet<8>>("PowerSet<8>"),
        row::<Sign>("Sign"),
        row::<Parity>("Parity"),
        row::<Interval<64>>("Interval<64>"),
        row::<AnyNum>("AnyNum"),
    ];
    println!(
        "{}",
        render_table(
            &[
                "domain",
                "Def 5.3",
                "M_e σ(a2) [Thm5.2c1]",
                "C_e σ(a2)",
                "strict gain",
                "corpus strict",
            ],
            &rows
        )
    );
    println!("expected shape: Theorem 5.4's ordering holds for every domain (asserted while");
    println!("building the table); the gain is strict exactly for the non-distributive rows.");
}

/// E12: extension — constraint-based 0CFA (Shivers) against the derived
/// analyzers.
fn e12_zero_cfa() {
    section(
        "E12",
        "extension: constraint-based 0CFA agrees with the derived analyzers",
    );
    // Part 1: false-return parity with Figure 6 on the §6.1 family.
    let mut rows = Vec::new();
    for m in 1..=6 {
        let p = AnfProgram::from_term(&families::repeated_calls(m));
        let c = CpsProgram::from_anf(&p);
        let cfa = zero_cfa_cps(&c).unwrap();
        let syn = SynCpsAnalyzer::<AnyNum>::new(&c).analyze().unwrap();
        rows.push(vec![
            m.to_string(),
            cfa.false_return_edges().to_string(),
            syn.flows.false_return_edges().to_string(),
            cfa.iterations.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "calls m",
                "0CFA false returns",
                "M_s false returns",
                "0CFA iterations"
            ],
            &rows
        )
    );

    // Part 2: source-level 0CFA vs M_e closure sets on a corpus.
    let n = 200;
    let progs = corpus(0xE12, n, &open_config());
    let agree = par_map(&progs, |t| {
        let p = AnfProgram::from_term(t);
        let cfa = zero_cfa(&p).unwrap();
        let d = DirectAnalyzer::<AnyNum>::new(&p).analyze().unwrap();
        let mut same = true;
        for (v, _) in p.iter_vars() {
            same &= cfa.get(v) == &d.store.get(v).clos;
        }
        same
    })
    .into_iter()
    .filter(|&same| same)
    .count();
    println!("source-level 0CFA = M_e closure sets on {agree}/{n} random programs.");

    // Part 3: the documented divergence — least fixpoints beat §4.4 cuts.
    let p = AnfProgram::parse(paper::OMEGA).unwrap();
    let cfa = zero_cfa(&p).unwrap();
    let d = DirectAnalyzer::<AnyNum>::new(&p).analyze().unwrap();
    let r = p.var_named("r").unwrap();
    println!(
        "on Ω: 0CFA σ(r) has {} closures; M_e's §4.4 cut reports CL⊤ with {} — the
         fixpoint formulation is strictly finer on recursion (see core::cfa docs).",
        cfa.get(r).len(),
        d.store.get(r).clos.len()
    );
}

/// E13: extension — bounded-exhaustive verification of the orderings.
fn e13_small_scope() {
    use cpsdfa_workloads::exhaustive::enumerate_terms;
    section(
        "E13",
        "extension: small-scope verification — the orderings on EVERY tiny program",
    );
    let size = 7;
    let all = enumerate_terms(size);
    let strictness = par_map(&all, |t| {
        let p = AnfProgram::from_term(t);
        let c = CpsProgram::from_anf(&p);
        let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let sem = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        assert!(
            sem.store.leq(&d.store),
            "Theorem 5.4 ordering violated on {t}"
        );
        let rows = compare_via_delta(&p, &c, &sem.store, &syn.store);
        let mut any_strict = false;
        for r in &rows {
            assert!(
                !matches!(
                    r.order,
                    cpsdfa_core::PrecisionOrder::RightMorePrecise
                        | cpsdfa_core::PrecisionOrder::Incomparable
                ),
                "Theorem 5.5 violated at {} on {t}",
                r.name
            );
            any_strict |= r.order == cpsdfa_core::PrecisionOrder::LeftMorePrecise;
        }
        (!d.store.leq(&sem.store), any_strict)
    });
    let checked = strictness.len();
    let strict_54 = strictness.iter().filter(|s| s.0).count();
    let strict_55 = strictness.iter().filter(|s| s.1).count();
    let rows = vec![
        vec![
            "programs checked (size ≤ 7, exhaustive)".into(),
            checked.to_string(),
        ],
        vec!["Theorem 5.4 violations".into(), "0".into()],
        vec!["Theorem 5.5 violations".into(), "0".into()],
        vec![
            "strict C_e-over-M_e instances".into(),
            strict_54.to_string(),
        ],
        vec![
            "strict C_e-over-M_s instances".into(),
            strict_55.to_string(),
        ],
    ];
    println!("{}", render_table(&["small-scope census", "count"], &rows));
    println!("every well-scoped program with ≤ {size} nodes over the small vocabulary");
    println!("satisfies the orderings of Theorems 5.4 and 5.5 — a bounded-exhaustive check.");
    println!("(strict-gain instances need the Theorem 5.2 correlated-diamond shape, whose");
    println!("smallest member has 9 nodes — outside this scope; E3/E11 cover strictness.)");
}

/// E14: extension — continuation polyvariance repairs §6.1's false returns.
fn e14_context_sensitivity() {
    use cpsdfa_core::kcfa::cont_sensitive_cfa;
    section(
        "E14",
        "extension: call-site-indexed continuations eliminate false returns",
    );
    let mut rows = Vec::new();
    for m in 1..=8 {
        let p = AnfProgram::from_term(&families::repeated_calls(m));
        let c = CpsProgram::from_anf(&p);
        let mono = zero_cfa_cps(&c).unwrap();
        let poly = cont_sensitive_cfa(&c);
        rows.push(vec![
            m.to_string(),
            mono.false_return_edges().to_string(),
            poly.false_return_edges().to_string(),
            poly.states.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "calls m",
                "0CFA false returns",
                "cont-polyvariant false returns",
                "states"
            ],
            &rows
        )
    );
    println!("the paper's closing suggestion — 'combine heuristic in-lining with a");
    println!("direct-style analysis' — corresponds on the CPS side to indexing each");
    println!("procedure's continuation variable by its call site: every false return of");
    println!("the monovariant analysis disappears, at polynomial (not exponential) cost.");
}

/// E15: extension — what each analyzer's precision buys an optimizer.
fn e15_optimizer() {
    use cpsdfa_opt::{optimize, FactSource};
    section(
        "E15",
        "extension: optimizations enabled by each analyzer's facts",
    );
    // Paper examples first: the theorems as optimizer behavior.
    let mut rows = Vec::new();
    for (name, src) in [
        ("Thm 5.2 case 1", paper::THEOREM_5_2_CASE_1),
        ("Thm 5.2 case 2", paper::THEOREM_5_2_CASE_2),
        ("Π1 (Thm 5.1)", paper::THEOREM_5_1),
    ] {
        let p = AnfProgram::parse(src).unwrap();
        let mut row = vec![name.to_owned(), p.root().size().to_string()];
        for source in [
            FactSource::Direct,
            FactSource::DirectDup(1),
            FactSource::SemCps,
        ] {
            let (q, stats) = optimize(&p, source).unwrap();
            row.push(format!(
                "{} ({} rw)",
                q.root().size(),
                stats.total_rewrites()
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "program",
                "size",
                "direct: residue",
                "direct+dup1",
                "semantic-cps"
            ],
            &rows
        )
    );

    // Corpus aggregate: average residual size per fact source.
    let n = 200;
    let mut sums = [0usize; 3];
    let mut rewrites = [0usize; 3];
    let mut original = 0usize;
    let progs = corpus(0xE15, n, &open_config());
    let per_prog = par_map(&progs, |t| {
        let p = AnfProgram::from_term(t);
        let mut residues = [(0usize, 0usize); 3];
        for (i, source) in [
            FactSource::Direct,
            FactSource::DirectDup(1),
            FactSource::SemCps,
        ]
        .into_iter()
        .enumerate()
        {
            let (q, stats) = optimize(&p, source).unwrap();
            residues[i] = (q.root().size(), stats.total_rewrites());
        }
        (p.root().size(), residues)
    });
    for (size, residues) in per_prog {
        original += size;
        for (i, (residue, rw)) in residues.into_iter().enumerate() {
            sums[i] += residue;
            rewrites[i] += rw;
        }
    }
    let rows = vec![vec![
        format!("{:.1}", original as f64 / n as f64),
        format!("{:.1} ({} rw)", sums[0] as f64 / n as f64, rewrites[0]),
        format!("{:.1} ({} rw)", sums[1] as f64 / n as f64, rewrites[1]),
        format!("{:.1} ({} rw)", sums[2] as f64 / n as f64, rewrites[2]),
    ]];
    println!(
        "{}",
        render_table(
            &[
                "avg original size",
                "direct residue",
                "direct+dup1 residue",
                "semantic-cps residue",
            ],
            &rows
        )
    );
    println!("expected shape: residual size shrinks monotonically with fact precision;");
    println!("§6.3's bounded duplication captures most of the semantic-CPS gain. (n = {n})");
}

/// A named program family on its size ladder.
type Family = (&'static str, fn(usize) -> cpsdfa_syntax::Term);

/// Interleaved paired medians, in milliseconds, plus the last result of
/// each closure (all runs compute the same fixpoint). The two sides
/// alternate inside one sampling loop so slow machine-state drift
/// (frequency scaling, cache temperature) lands on both columns equally
/// instead of on whichever side happened to be timed second — at the
/// tens-of-µs scale that drift otherwise dominates the ratio. Runs at
/// least `min_reps` pairs and keeps sampling until the *cheaper* side
/// has accumulated ~2 ms of measured time (capped at 301 pairs): a
/// 5-rep median of a 30 µs workload is scheduler jitter, not a
/// measurement.
fn paired_median_ms<A, B>(
    min_reps: usize,
    mut run_a: impl FnMut() -> A,
    mut run_b: impl FnMut() -> B,
) -> ((f64, A), (f64, B)) {
    const TARGET_MS: f64 = 2.0;
    const MAX_REPS: usize = 301;
    let mut samples_a = Vec::with_capacity(min_reps);
    let mut samples_b = Vec::with_capacity(min_reps);
    let (mut last_a, mut last_b) = (None, None);
    let (mut total_a, mut total_b) = (0.0f64, 0.0f64);
    while samples_a.len() < min_reps
        || (total_a.min(total_b) < TARGET_MS && samples_a.len() < MAX_REPS)
    {
        let t0 = std::time::Instant::now();
        last_a = Some(run_a());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total_a += ms;
        samples_a.push(ms);

        let t0 = std::time::Instant::now();
        last_b = Some(run_b());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total_b += ms;
        samples_b.push(ms);
    }
    samples_a.sort_by(f64::total_cmp);
    samples_b.sort_by(f64::total_cmp);
    (
        (
            samples_a[samples_a.len() / 2],
            last_a.expect("min_reps >= 1"),
        ),
        (
            samples_b[samples_b.len() / 2],
            last_b.expect("min_reps >= 1"),
        ),
    )
}

/// Single-column analogue of [`paired_median_ms`], for runs whose
/// comparison baseline was already measured in the same sampling session
/// (the E16 `par-delta` column rides next to an existing sparse/dense
/// pair): same adaptive sampling floor, same median.
fn median_ms<R>(min_reps: usize, mut run: impl FnMut() -> R) -> (f64, R) {
    const TARGET_MS: f64 = 2.0;
    const MAX_REPS: usize = 301;
    let mut samples = Vec::with_capacity(min_reps);
    let mut last = None;
    let mut total = 0.0f64;
    while samples.len() < min_reps || (total < TARGET_MS && samples.len() < MAX_REPS) {
        let t0 = std::time::Instant::now();
        last = Some(run());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total += ms;
        samples.push(ms);
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], last.expect("min_reps >= 1"))
}

/// The E16 measurement grid: the cost-experiment families ladder for the
/// two 0CFA analyzers, and the first-order diamond chain for MFP. The grid
/// is shared by the live measurement path and [`e16_regen`], so a recorded
/// trace addresses exactly the cells a fresh run would produce.
const E16_LADDER: [Family; 3] = [
    ("cond-chain", families::cond_chain),
    ("dispatch", families::dispatch),
    ("polyvariant", families::repeated_calls),
];
const E16_SIZES: [usize; 3] = [32, 128, 320];
const E16_MFP_SIZES: [usize; 3] = [16, 64, 160];

/// One measured (or trace-reconstructed) E16 cell: a workload × analyzer
/// pair with its paired dense/sparse medians and the sparse run's counters.
struct E16Cell {
    family: &'static str,
    n: usize,
    program_size: usize,
    /// JSON key: `0cfa`, `0cfa-cps`, or `mfp`.
    analyzer: &'static str,
    /// Table label: `0CFA`, `0CFA-CPS`, or `MFP`.
    label: &'static str,
    dense_ms: f64,
    sparse_ms: f64,
    dense_iters: u64,
    stats: SolverStats,
    /// The sharded parallel engine on the same workload, when measured
    /// (`None` for cells regenerated from a pre-E19 trace artifact).
    par: Option<E16Par>,
}

/// A parallel-engine measurement riding on an E16 cell: the `Par(K)`
/// median wall time plus that run's counters (deterministic at fixed K,
/// so they are real measurements, not copies of the sequential column).
struct E16Par {
    ms: f64,
    workers: usize,
    stats: SolverStats,
}

impl E16Cell {
    /// The trace-event prefix all of this cell's events share.
    fn prefix(&self) -> String {
        format!("e16.{}.{}.{}", self.analyzer, self.family, self.n)
    }

    /// Whether this cell is its analyzer's largest workload (the rows the
    /// harness calls out beneath the table).
    fn is_largest(&self) -> bool {
        if self.analyzer == "mfp" {
            self.n == *E16_MFP_SIZES.last().unwrap()
        } else {
            self.n == *E16_SIZES.last().unwrap()
        }
    }

    /// Emits the cell into a trace sink: wall times as timers, dense
    /// iterations as a counter, program size as a gauge, and the sparse
    /// solver counters under `<prefix>.sparse`. [`from_agg`](E16Cell::from_agg)
    /// inverts this, which is what makes the E16 table reproducible from a
    /// JSONL artifact alone.
    fn emit_into(&self, sink: &mut impl TraceSink) {
        if !sink.enabled() {
            return;
        }
        let p = self.prefix();
        sink.gauge(&format!("{p}.program_size"), self.program_size as u64);
        sink.time_ns(&format!("{p}.dense_ns"), (self.dense_ms * 1e6) as u64);
        sink.time_ns(&format!("{p}.sparse_ns"), (self.sparse_ms * 1e6) as u64);
        sink.counter(&format!("{p}.dense_iters"), self.dense_iters);
        self.stats.emit_into(sink, &format!("{p}.sparse"));
        if let Some(par) = &self.par {
            sink.time_ns(&format!("{p}.par_ns"), (par.ms * 1e6) as u64);
            sink.gauge(&format!("{p}.par_workers"), par.workers as u64);
            par.stats.emit_into(sink, &format!("{p}.par"));
        }
    }

    /// Reconstructs the cell from an aggregated trace; `None` if the trace
    /// has no measurement for it (e.g. a partial or foreign file).
    fn from_agg(
        agg: &AggSink,
        family: &'static str,
        n: usize,
        analyzer: &'static str,
        label: &'static str,
    ) -> Option<Self> {
        let p = format!("e16.{analyzer}.{family}.{n}");
        let ms = |name: &str| {
            agg.timer_agg(&format!("{p}.{name}"))
                .filter(|t| t.count > 0)
                .map(|t| t.total_ns as f64 / t.count as f64 / 1e6)
        };
        let par = ms("par_ns").map(|par_ms| E16Par {
            ms: par_ms,
            workers: agg.gauge_value(&format!("{p}.par_workers")) as usize,
            stats: SolverStats::from_agg(agg, &format!("{p}.par")),
        });
        Some(E16Cell {
            family,
            n,
            program_size: agg.gauge_value(&format!("{p}.program_size")) as usize,
            analyzer,
            label,
            dense_ms: ms("dense_ns")?,
            sparse_ms: ms("sparse_ns")?,
            dense_iters: agg.counter_value(&format!("{p}.dense_iters")),
            stats: SolverStats::from_agg(agg, &format!("{p}.sparse")),
            par,
        })
    }
}

/// Renders the E16 table, per-analyzer largest-workload speedups, and the
/// final CPS counter block from a set of cells, and writes the same rows to
/// `BENCH_solver.json`. Shared by the live measurement path and
/// [`e16_regen`], so both produce the identical report for identical cells.
fn e16_render(cells: &[E16Cell]) {
    use cpsdfa_core::report::render_solver_stats;

    let mut json: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in cells {
        json.push(format!(
            "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
             \"analyzer\": \"{}\", \"impl\": \"sparse-delta\", \"wall_ms\": {:.4}, \
             \"iterations\": {}, \"posts\": {}, \
             \"delta_elems\": {}, \"mean_delta\": {:.3}}}",
            c.family,
            c.n,
            c.program_size,
            c.analyzer,
            c.sparse_ms,
            c.stats.fired,
            c.stats.posted,
            c.stats.delta_elems,
            c.stats.mean_delta(),
        ));
        json.push(format!(
            "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
             \"analyzer\": \"{}\", \"impl\": \"dense\", \"wall_ms\": {:.4}, \
             \"iterations\": {}, \"posts\": 0, \
             \"delta_elems\": 0, \"mean_delta\": 0.000}}",
            c.family, c.n, c.program_size, c.analyzer, c.dense_ms, c.dense_iters,
        ));
        if let Some(par) = &c.par {
            json.push(format!(
                "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
                 \"analyzer\": \"{}\", \"impl\": \"par-delta\", \"wall_ms\": {:.4}, \
                 \"iterations\": {}, \"posts\": {}, \
                 \"delta_elems\": {}, \"mean_delta\": {:.3}, \
                 \"workers\": {}, \"hw_threads\": {}}}",
                c.family,
                c.n,
                c.program_size,
                c.analyzer,
                par.ms,
                par.stats.fired,
                par.stats.posted,
                par.stats.delta_elems,
                par.stats.mean_delta(),
                par.workers,
                hw_threads(),
            ));
        }
        rows.push(vec![
            format!("{}({})", c.family, c.n),
            c.label.into(),
            format!("{:.2}", c.dense_ms),
            format!("{:.2}", c.sparse_ms),
            c.par
                .as_ref()
                .map_or_else(|| "-".into(), |par| format!("{:.2}", par.ms)),
            format!("{:.1}x", c.dense_ms / c.sparse_ms),
            format!("{} × {:.2}", c.stats.fired, c.stats.mean_delta()),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "workload",
                "analyzer",
                "dense ms",
                "sparse ms",
                "par ms",
                "speedup",
                "firings × mean Δ",
            ],
            &rows
        )
    );
    for c in cells.iter().filter(|c| c.is_largest()) {
        println!(
            "largest workload: {} on {}({}) — {:.1}x over the dense sweep",
            c.label,
            c.family,
            c.n,
            c.dense_ms / c.sparse_ms
        );
    }
    if let Some(par) = cells.iter().find_map(|c| c.par.as_ref()) {
        println!(
            "par-delta column: sharded engine at K={} on {} hardware thread(s); \
             E19 sweeps the full K curve",
            par.workers,
            hw_threads()
        );
    }
    if let Some(c) = cells
        .iter()
        .rfind(|c| c.analyzer == "0cfa-cps" && c.is_largest())
    {
        let label = format!("{} {}({})", c.label, c.family, c.n);
        println!("\nsparse-engine counters, {label}:");
        print!("{}", render_solver_stats(&label, &c.stats));
    }

    // E19's scaling-curve rows live in the same file; keep them across an
    // E16 rewrite (E19 symmetrically keeps these rows when it appends).
    let fresh = json.len();
    json.extend(bench_solver_rows(|line| line.contains("\"curve\"")));
    let payload = format!("[\n{}\n]\n", json.join(",\n"));
    match std::fs::write("BENCH_solver.json", &payload) {
        Ok(()) => println!("\nwrote {fresh} measurements to BENCH_solver.json"),
        Err(e) => println!("\ncould not write BENCH_solver.json: {e}"),
    }
}

/// The rows of `BENCH_solver.json` whose line passes `keep`, stripped of
/// array brackets and trailing commas — the merge primitive that lets E16
/// (non-curve rows) and E19 (curve rows) each rewrite only its own slice
/// of the shared file. Line-based on purpose: the file is written one row
/// per line by this harness, and a foreign/corrupt file degrades to
/// "keep nothing", which a fresh full run repairs.
fn bench_solver_rows(keep: impl Fn(&str) -> bool) -> Vec<String> {
    std::fs::read_to_string("BENCH_solver.json")
        .map(|text| {
            text.lines()
                .filter(|l| {
                    let t = l.trim();
                    !t.is_empty() && t != "[" && t != "]" && keep(t)
                })
                .map(|l| l.trim_end().trim_end_matches(',').to_owned())
                .collect()
        })
        .unwrap_or_default()
}

/// `--regen-e16 <path>`: rebuild the E16 (and, if recorded, E17) report
/// from a JSONL trace — no analyzers run; every number comes from the
/// artifact.
fn e16_regen(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read trace file {path}: {e}"));
    let agg = AggSink::from_jsonl(&text);
    let mut cells = Vec::new();
    for (family, _) in E16_LADDER {
        for n in E16_SIZES {
            cells.extend(E16Cell::from_agg(&agg, family, n, "0cfa", "0CFA"));
            cells.extend(E16Cell::from_agg(&agg, family, n, "0cfa-cps", "0CFA-CPS"));
        }
    }
    for n in E16_MFP_SIZES {
        cells.extend(E16Cell::from_agg(&agg, "diamond", n, "mfp", "MFP"));
    }
    let mut pipeline_cells = Vec::new();
    for (family, _) in E16_LADDER {
        for n in E17_SIZES {
            pipeline_cells.extend(E17Cell::from_agg(&agg, family, n));
        }
    }
    assert!(
        !cells.is_empty() || !pipeline_cells.is_empty(),
        "{path} holds no e16.*/e17.* events; record one with \
         `experiments -- E16 E17 --trace {path}`"
    );
    if !cells.is_empty() {
        section(
            "E16",
            "tentpole: semi-naïve (delta) sparse fixpoints vs the dense sweeps they replaced",
        );
        println!("(regenerated from {path}; nothing re-measured)\n");
        e16_render(&cells);
    }
    if !pipeline_cells.is_empty() {
        section(
            "E17",
            "tentpole: interned front-end pipeline (parse → ANF → CPS) vs the boxed trees it replaced",
        );
        println!("(regenerated from {path}; nothing re-measured)\n");
        e17_render(&pipeline_cells);
    }
}

/// E16: tentpole — the sparse worklist engine against the dense sweeps it
/// replaced, on the cost-experiment families. Writes the measurements to
/// `BENCH_solver.json` and, when tracing, emits every cell into the sink so
/// `--regen-e16` can rebuild this table from the artifact alone.
fn e16_solver_cost(sink: &mut impl TraceSink) {
    use cpsdfa_core::cfa::{
        zero_cfa_cps_dense, zero_cfa_cps_guarded_mode, zero_cfa_cps_instrumented, zero_cfa_dense,
        zero_cfa_guarded_mode, zero_cfa_instrumented,
    };

    section(
        "E16",
        "tentpole: semi-naïve (delta) sparse fixpoints vs the dense sweeps they replaced",
    );
    let reps = 5;
    let workers = cpsdfa_core::worker_count();
    let mut cells: Vec<E16Cell> = Vec::new();
    for (family, build) in E16_LADDER {
        for n in E16_SIZES {
            let prog = AnfProgram::from_term(&build(n));
            let cps = CpsProgram::from_anf(&prog);
            let psize = prog.root().size();

            let ((sparse_ms, (sres, sstats)), (dense_ms, dres)) = paired_median_ms(
                reps,
                || zero_cfa_instrumented(&prog).unwrap(),
                || zero_cfa_dense(&prog),
            );
            assert!(
                sres.same_solution(&dres),
                "sparse/dense 0CFA disagree on {family}({n})"
            );
            let (par_ms, (pres, pstats)) = median_ms(reps, || {
                let guard = RunGuard::new(AnalysisBudget::default());
                zero_cfa_guarded_mode(&prog, SolverMode::Par(workers), &guard, &mut NoopSink)
                    .unwrap()
            });
            assert!(
                pres.same_solution(&sres),
                "Par({workers})/Seq 0CFA disagree on {family}({n})"
            );
            cells.push(E16Cell {
                family,
                n,
                program_size: psize,
                analyzer: "0cfa",
                label: "0CFA",
                dense_ms,
                sparse_ms,
                dense_iters: dres.iterations,
                stats: sstats,
                par: Some(E16Par {
                    ms: par_ms,
                    workers,
                    stats: pstats,
                }),
            });

            let ((csparse_ms, (cres, cstats)), (cdense_ms, cdres)) = paired_median_ms(
                reps,
                || zero_cfa_cps_instrumented(&cps).unwrap(),
                || zero_cfa_cps_dense(&cps),
            );
            assert!(
                cres.same_solution(&cdres),
                "sparse/dense CPS 0CFA disagree on {family}({n})"
            );
            let (cpar_ms, (cpres, cpstats)) = median_ms(reps, || {
                let guard = RunGuard::new(AnalysisBudget::default());
                zero_cfa_cps_guarded_mode(&cps, SolverMode::Par(workers), &guard, &mut NoopSink)
                    .unwrap()
            });
            assert!(
                cpres.same_solution(&cres),
                "Par({workers})/Seq CPS 0CFA disagree on {family}({n})"
            );
            cells.push(E16Cell {
                family,
                n,
                program_size: psize,
                analyzer: "0cfa-cps",
                label: "0CFA-CPS",
                dense_ms: cdense_ms,
                sparse_ms: csparse_ms,
                dense_iters: cdres.iterations,
                stats: cstats,
                par: Some(E16Par {
                    ms: cpar_ms,
                    workers,
                    stats: cpstats,
                }),
            });
        }
    }

    // MFP needs the first-order fragment: diamond chains, where the dense
    // LIFO worklist cascades over the suffix and the RPO-ranked sparse
    // solver settles each node once.
    for n in E16_MFP_SIZES {
        let prog = AnfProgram::from_term(&families::diamond_chain(n));
        let cfg = Cfg::from_first_order(&prog).unwrap();
        let init = cfg.initial_env::<Flat>(&prog);
        let psize = prog.root().size();
        let ((sparse_ms, (ssum, sstats)), (dense_ms, dsum)) = paired_median_ms(
            reps,
            || cfg.solve_mfp_instrumented::<Flat>(init.clone()).unwrap(),
            || cfg.solve_mfp_dense::<Flat>(init.clone()),
        );
        assert!(ssum == dsum, "sparse/dense MFP disagree on diamond({n})");
        let (par_ms, (psum, pstats)) = median_ms(reps, || {
            let guard = RunGuard::new(AnalysisBudget::default());
            cfg.solve_mfp_guarded_mode::<Flat>(
                init.clone(),
                SolverMode::Par(workers),
                &guard,
                &mut NoopSink,
            )
            .unwrap()
        });
        assert!(
            psum == ssum,
            "Par({workers})/Seq MFP disagree on diamond({n})"
        );
        cells.push(E16Cell {
            family: "diamond",
            n,
            program_size: psize,
            analyzer: "mfp",
            label: "MFP",
            dense_ms,
            sparse_ms,
            // The dense MFP sweep reports no iteration counter.
            dense_iters: 0,
            stats: sstats,
            par: Some(E16Par {
                ms: par_ms,
                workers,
                stats: pstats,
            }),
        });
    }

    for c in &cells {
        c.emit_into(sink);
    }
    e16_render(&cells);
}

/// The E19 scaling grid: shard counts swept on the two heaviest CPS 0CFA
/// workloads of the E16 ladder (the closure-rich families where the CPS
/// analyzer does real flow work; cond-chain is omitted because its
/// fixpoint is too cheap to time against barrier overhead).
const E19_KS: [usize; 4] = [1, 2, 4, 8];
const E19_FAMILIES: [Family; 2] = [
    ("dispatch", families::dispatch),
    ("polyvariant", families::repeated_calls),
];
const E19_N: usize = 320;
const E19_TEST_N: usize = 32;

/// Appends E19 curve rows to `BENCH_solver.json` without disturbing the
/// rows E16 wrote or the rows of other curves (E21). [`e16_render`]
/// rewrites the file wholesale, so the harness runs E19 after E16 and
/// merges here instead: existing non-e19 rows are kept, stale e19 rows
/// from a previous sweep are dropped, and the fresh curve is appended.
fn e19_append_rows(rows: &[String]) {
    let mut all = bench_solver_rows(|line| !line.contains("\"curve\": \"e19\""));
    all.extend(rows.iter().cloned());
    let payload = format!("[\n{}\n]\n", all.join(",\n"));
    match std::fs::write("BENCH_solver.json", &payload) {
        Ok(()) => println!(
            "\nappended {} scaling rows to BENCH_solver.json",
            rows.len()
        ),
        Err(e) => println!("\ncould not write BENCH_solver.json: {e}"),
    }
}

/// E19: the intra-program parallel fixpoint engine's scaling curve — the
/// CPS 0CFA solved under `Par(K)` for each K in the sweep, paired against
/// a sequential run in the same sampling loop, with bit-identity asserted
/// every run. Writes `"curve": "e19"` rows into `BENCH_solver.json`
/// (after E16's wholesale write) and emits `e19.*` trace events.
fn e19_par_scaling(sink: &mut impl TraceSink, test_mode: bool) {
    use cpsdfa_core::cfa::{zero_cfa_cps_guarded_mode, zero_cfa_cps_instrumented};

    section(
        "E19",
        "intra-program parallel fixpoint: Par(K) scaling on the CPS 0CFA",
    );
    let n = if test_mode { E19_TEST_N } else { E19_N };
    let ks: &[usize] = if test_mode { &E19_KS[..2] } else { &E19_KS };
    let hw = hw_threads();
    sink.gauge("e19.hw_threads", hw as u64);
    println!("hardware threads: {hw}; shard counts swept: {ks:?}");
    println!("(wall-clock speedup requires >= K hardware threads — on fewer, the");
    println!(" ratio column measures sharding overhead; the bit-identity checks");
    println!(" and counters are host-independent)\n");

    let reps = if test_mode { 2 } else { 5 };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for (family, build) in E19_FAMILIES {
        let prog = AnfProgram::from_term(&build(n));
        let cps = CpsProgram::from_anf(&prog);
        let psize = prog.root().size();
        for &k in ks {
            let ((seq_ms, (seq, _)), (par_ms, (par, par_stats))) = paired_median_ms(
                reps,
                || zero_cfa_cps_instrumented(&cps).unwrap(),
                || {
                    let guard = RunGuard::new(AnalysisBudget::default());
                    zero_cfa_cps_guarded_mode(&cps, SolverMode::Par(k), &guard, &mut NoopSink)
                        .unwrap()
                },
            );
            assert!(
                par.same_solution(&seq),
                "Par({k})/Seq CPS 0CFA disagree on {family}({n})"
            );
            let p = format!("e19.{family}.{n}.k{k}");
            sink.gauge(&format!("{p}.program_size"), psize as u64);
            sink.time_ns(&format!("{p}.seq_ns"), (seq_ms * 1e6) as u64);
            sink.time_ns(&format!("{p}.par_ns"), (par_ms * 1e6) as u64);
            par_stats.emit_into(sink, &format!("{p}.par"));
            rows.push(vec![
                format!("{family}({n})"),
                format!("{k}"),
                format!("{seq_ms:.2}"),
                format!("{par_ms:.2}"),
                format!("{:.2}x", seq_ms / par_ms),
                format!("{}", par_stats.fired),
            ]);
            json_rows.push(format!(
                "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
                 \"analyzer\": \"0cfa-cps\", \"impl\": \"par-delta\", \
                 \"wall_ms\": {:.4}, \"iterations\": {}, \"posts\": {}, \
                 \"delta_elems\": {}, \"mean_delta\": {:.3}, \
                 \"workers\": {}, \"hw_threads\": {}, \
                 \"seq_wall_ms\": {:.4}, \"curve\": \"e19\"}}",
                family,
                n,
                psize,
                par_ms,
                par_stats.fired,
                par_stats.posted,
                par_stats.delta_elems,
                par_stats.mean_delta(),
                k,
                hw,
                seq_ms,
            ));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "K",
                "seq ms",
                "Par(K) ms",
                "seq/par",
                "par firings",
            ],
            &rows
        )
    );
    println!("every Par(K) solution checked bit-identical to the sequential run");
    e19_append_rows(&json_rows);
}

/// The E21 census grid: the three families where the monovariant CPS
/// 0CFA merges continuations at a shared `k` — the dispatcher, the new
/// polyvariant funnel, and the paper's repeated-calls family — swept over
/// the sizes where E5 records the §6.1 losses.
const E21_CENSUS_NS: [usize; 7] = [2, 3, 4, 5, 6, 7, 8];
const E21_FAMILIES: [Family; 3] = [
    ("dispatch", families::dispatch),
    ("polyvariant", families::polyvariant),
    ("repeated_calls", families::repeated_calls),
];
/// The cost pair is measured at E19's workload size so the two BENCH
/// curves are comparable.
const E21_N: usize = 320;
const E21_TEST_N: usize = 32;

/// Appends E21 curve rows to `BENCH_solver.json`, symmetric with
/// [`e19_append_rows`]: rows of every other producer (E16's plain rows,
/// E19's curve) are kept, stale e21 rows are dropped, fresh ones appended.
fn e21_append_rows(rows: &[String]) {
    let mut all = bench_solver_rows(|line| !line.contains("\"curve\": \"e21\""));
    all.extend(rows.iter().cloned());
    let payload = format!("[\n{}\n]\n", all.join(",\n"));
    match std::fs::write("BENCH_solver.json", &payload) {
        Ok(()) => println!(
            "\nappended {} pushdown rows to BENCH_solver.json",
            rows.len()
        ),
        Err(e) => println!("\ncould not write BENCH_solver.json: {e}"),
    }
}

/// E21: the §6.1 false-return census re-run under the pushdown rung. The
/// summary-based solver matches every return edge to a recorded call, so
/// the spurious-edge count must be *zero* on every family where the
/// monovariant CPS 0CFA merges returns — asserted, not just printed —
/// while per-variable flow sets stay contained in the 0CFA's (also
/// asserted). The cost half pairs the pushdown solve against the CPS
/// 0CFA at E19's workload size and writes `"curve": "e21"` rows into
/// `BENCH_solver.json`.
fn e21_pushdown_census(sink: &mut impl TraceSink, test_mode: bool) {
    use cpsdfa_core::cfa::zero_cfa_cps_instrumented;
    use cpsdfa_core::pushdown::pushdown_cfa_instrumented;

    section(
        "E21",
        "pushdown call/return matching: zero §6.1 false returns, at what cost",
    );

    // --- census: spurious return edges and flow facts, rung vs rung ---
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (family, build) in E21_FAMILIES {
        for n in E21_CENSUS_NS {
            let prog = AnfProgram::from_term(&build(n));
            let cps = CpsProgram::from_anf(&prog);
            let (mono, _) = zero_cfa_cps_instrumented(&cps).unwrap();
            let (pd, _) = pushdown_cfa_instrumented(&cps).unwrap();
            if let Some(violation) = pd.refinement_violation(&mono) {
                panic!("pushdown does not refine 0CFA on {family}({n}): {violation}");
            }
            let merged = mono.false_return_edges();
            let spurious = pd.false_return_edges();
            assert_eq!(
                spurious, 0,
                "pushdown left spurious return edges on {family}({n})"
            );
            let mono_facts: usize = mono.vars.iter().map(|s| s.len()).sum();
            sink.gauge(
                &format!("e21.census.{family}.{n}.merged_0cfa"),
                merged as u64,
            );
            sink.gauge(
                &format!("e21.census.{family}.{n}.spurious_pd"),
                spurious as u64,
            );
            rows.push(vec![
                format!("{family}({n})"),
                merged.to_string(),
                spurious.to_string(),
                mono_facts.to_string(),
                pd.flow_facts().to_string(),
                pd.summaries.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "0CFA merged returns",
                "pushdown spurious",
                "0CFA flow facts",
                "pushdown flow facts",
                "summaries",
            ],
            &rows
        )
    );
    println!("every row's pushdown census is asserted zero and every pushdown flow set");
    println!("is asserted contained in the 0CFA's — the precision is free of surprises;");
    println!("the cost table below is what it is not free of.\n");

    // --- cost: the pushdown rung paired against the CPS 0CFA ---
    let n = if test_mode { E21_TEST_N } else { E21_N };
    let reps = if test_mode { 2 } else { 5 };
    let hw = hw_threads();
    let mut cost_rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for (family, build) in E21_FAMILIES {
        let prog = AnfProgram::from_term(&build(n));
        let cps = CpsProgram::from_anf(&prog);
        let psize = prog.root().size();
        let ((mono_ms, (mono, mono_stats)), (pd_ms, (pd, pd_stats))) = paired_median_ms(
            reps,
            || zero_cfa_cps_instrumented(&cps).unwrap(),
            || pushdown_cfa_instrumented(&cps).unwrap(),
        );
        if let Some(violation) = pd.refinement_violation(&mono) {
            panic!("pushdown does not refine 0CFA on {family}({n}): {violation}");
        }
        assert_eq!(pd.false_return_edges(), 0);
        let p = format!("e21.{family}.{n}");
        sink.gauge(&format!("{p}.program_size"), psize as u64);
        sink.time_ns(&format!("{p}.mono_ns"), (mono_ms * 1e6) as u64);
        sink.time_ns(&format!("{p}.pd_ns"), (pd_ms * 1e6) as u64);
        sink.gauge(&format!("{p}.summaries"), pd.summaries);
        pd_stats.emit_into(sink, &format!("{p}.pd"));
        cost_rows.push(vec![
            format!("{family}({n})"),
            format!("{mono_ms:.2}"),
            format!("{pd_ms:.2}"),
            format!("{:.2}x", pd_ms / mono_ms),
            format!("{}", mono_stats.fired),
            format!("{}", pd_stats.fired),
            format!("{}", mono.false_return_edges()),
        ]);
        json_rows.push(format!(
            "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
             \"analyzer\": \"pushdown\", \"impl\": \"summary-delta\", \
             \"wall_ms\": {:.4}, \"iterations\": {}, \"posts\": {}, \
             \"delta_elems\": {}, \"mean_delta\": {:.3}, \
             \"summaries\": {}, \"false_returns\": 0, \
             \"mono_wall_ms\": {:.4}, \"mono_iterations\": {}, \
             \"mono_false_returns\": {}, \"hw_threads\": {}, \
             \"curve\": \"e21\"}}",
            family,
            n,
            psize,
            pd_ms,
            pd_stats.fired,
            pd_stats.posted,
            pd_stats.delta_elems,
            pd_stats.mean_delta(),
            pd.summaries,
            mono_ms,
            mono_stats.fired,
            mono.false_return_edges(),
            hw,
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "0CFA ms",
                "pushdown ms",
                "pd/0CFA",
                "0CFA firings",
                "pd firings",
                "0CFA merged returns",
            ],
            &cost_rows
        )
    );
    e21_append_rows(&json_rows);
}

/// The E17 measurement grid: the same families ladder as E16, pushed to
/// larger sizes — the front end is linear in program size, so the pipeline
/// comparison can afford workloads the fixpoint solvers cannot.
const E17_SIZES: [usize; 3] = [32, 128, 512];

/// One measured (or trace-reconstructed) E17 cell: a workload with its
/// paired boxed/interned front-end medians and the interned run's arena
/// footprint.
struct E17Cell {
    family: &'static str,
    n: usize,
    /// Labeled nodes produced per run (ANF + CPS) — the throughput unit.
    nodes: u64,
    boxed_ms: f64,
    interned_ms: f64,
    arena_bytes: u64,
    interned_syms: u64,
}

impl E17Cell {
    /// The trace-event prefix all of this cell's events share.
    fn prefix(&self) -> String {
        format!("e17.pipeline.{}.{}", self.family, self.n)
    }

    fn is_largest(&self) -> bool {
        self.n == *E17_SIZES.last().unwrap()
    }

    /// Nodes/second through the interned pipeline.
    fn interned_rate(&self) -> f64 {
        self.nodes as f64 / (self.interned_ms / 1e3)
    }

    /// Emits the cell into a trace sink. Alongside the per-cell events,
    /// the run-wide `pipeline.arena_bytes` / `pipeline.interned_syms`
    /// gauges record the peak across cells (gauges aggregate by max), so a
    /// trace consumer can read the front end's footprint without knowing
    /// the grid. [`from_agg`](E17Cell::from_agg) inverts the per-cell
    /// events, which is what makes the E17 table reproducible from a JSONL
    /// artifact alone.
    fn emit_into(&self, sink: &mut impl TraceSink) {
        if !sink.enabled() {
            return;
        }
        let p = self.prefix();
        sink.gauge(&format!("{p}.nodes"), self.nodes);
        sink.time_ns(&format!("{p}.boxed_ns"), (self.boxed_ms * 1e6) as u64);
        sink.time_ns(&format!("{p}.interned_ns"), (self.interned_ms * 1e6) as u64);
        sink.gauge(&format!("{p}.arena_bytes"), self.arena_bytes);
        sink.gauge(&format!("{p}.interned_syms"), self.interned_syms);
        sink.gauge("pipeline.arena_bytes", self.arena_bytes);
        sink.gauge("pipeline.interned_syms", self.interned_syms);
    }

    /// Reconstructs the cell from an aggregated trace; `None` if the trace
    /// has no measurement for it.
    fn from_agg(agg: &AggSink, family: &'static str, n: usize) -> Option<Self> {
        let p = format!("e17.pipeline.{family}.{n}");
        let ms = |name: &str| {
            agg.timer_agg(&format!("{p}.{name}"))
                .filter(|t| t.count > 0)
                .map(|t| t.total_ns as f64 / t.count as f64 / 1e6)
        };
        Some(E17Cell {
            family,
            n,
            nodes: agg.gauge_value(&format!("{p}.nodes")),
            boxed_ms: ms("boxed_ns")?,
            interned_ms: ms("interned_ns")?,
            arena_bytes: agg.gauge_value(&format!("{p}.arena_bytes")),
            interned_syms: agg.gauge_value(&format!("{p}.interned_syms")),
        })
    }
}

/// Renders the E17 table and the largest-workload speedups, and writes the
/// rows to `BENCH_pipeline.json`. Shared by the live measurement path and
/// the `--regen-e16` replay, so both produce the identical report.
fn e17_render(cells: &[E17Cell]) {
    let mut json: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for c in cells {
        for (impl_name, ms) in [("boxed", c.boxed_ms), ("interned", c.interned_ms)] {
            json.push(format!(
                "  {{\"family\": \"{}\", \"n\": {}, \"nodes\": {}, \
                 \"impl\": \"{}\", \"wall_ms\": {:.4}, \
                 \"nodes_per_sec\": {:.0}, \"arena_bytes\": {}, \
                 \"interned_syms\": {}}}",
                c.family,
                c.n,
                c.nodes,
                impl_name,
                ms,
                c.nodes as f64 / (ms / 1e3),
                if impl_name == "interned" {
                    c.arena_bytes
                } else {
                    0
                },
                c.interned_syms,
            ));
        }
        rows.push(vec![
            format!("{}({})", c.family, c.n),
            format!("{}", c.nodes),
            format!("{:.3}", c.boxed_ms),
            format!("{:.3}", c.interned_ms),
            format!("{:.1}x", c.boxed_ms / c.interned_ms),
            format!("{:.2e}", c.interned_rate()),
            format!("{}", c.arena_bytes),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "nodes",
                "boxed ms",
                "interned ms",
                "speedup",
                "nodes/s",
                "arena B",
            ],
            &rows
        )
    );
    for c in cells.iter().filter(|c| c.is_largest()) {
        println!(
            "largest workload: {}({}) — {:.1}x over the boxed front end, \
             {:.2e} nodes/s, {} arena bytes, {} interned symbols",
            c.family,
            c.n,
            c.boxed_ms / c.interned_ms,
            c.interned_rate(),
            c.arena_bytes,
            c.interned_syms,
        );
    }

    let payload = format!("[\n{}\n]\n", json.join(",\n"));
    match std::fs::write("BENCH_pipeline.json", &payload) {
        Ok(()) => println!("\nwrote {} measurements to BENCH_pipeline.json", json.len()),
        Err(e) => println!("\ncould not write BENCH_pipeline.json: {e}"),
    }
}

/// E17: tentpole — the interned (hash-consed Λ arena + flat ANF/CPS
/// arenas) front end against the boxed-tree front end it replaced, on the
/// families ladder. Writes `BENCH_pipeline.json` and, when tracing, emits
/// every cell so `--regen-e16` can rebuild the table from the artifact.
fn e17_pipeline_throughput(sink: &mut impl TraceSink) {
    use cpsdfa_bench::{pipeline_boxed, pipeline_interned};

    section(
        "E17",
        "tentpole: interned front-end pipeline (parse → ANF → CPS) vs the boxed trees it replaced",
    );
    let reps = 5;
    let mut cells: Vec<E17Cell> = Vec::new();
    for (family, build) in E16_LADDER {
        for n in E17_SIZES {
            let src = build(n).to_string();
            let ((interned_ms, iout), (boxed_ms, bout)) =
                paired_median_ms(reps, || pipeline_interned(&src), || pipeline_boxed(&src));
            assert_eq!(
                (iout.anf_labels, iout.cps_labels),
                (bout.anf_labels, bout.cps_labels),
                "front ends disagree on {family}({n})"
            );
            cells.push(E17Cell {
                family,
                n,
                nodes: iout.nodes(),
                boxed_ms,
                interned_ms,
                arena_bytes: iout.arena_bytes as u64,
                interned_syms: cpsdfa_syntax::intern::Symbol::interned_count(),
            });
        }
    }
    for c in &cells {
        c.emit_into(sink);
    }
    e17_render(&cells);
}

/// The E18 degradation grid sizes (shrunk under `--test` so the CI
/// fault-injection job stays fast).
fn e18_sizes(test_mode: bool) -> &'static [usize] {
    if test_mode {
        &[32]
    } else {
        &[32, 128, 320]
    }
}

/// One row of the E18 degradation grid, also serialized to
/// `BENCH_degrade.json`.
struct E18Row {
    family: &'static str,
    n: usize,
    budget_label: &'static str,
    budget: u64,
    answered_by: String,
    rungs_tried: usize,
    resource: String,
    residual_budget: u64,
    latency_ms: f64,
}

impl E18Row {
    fn to_json(&self) -> String {
        format!(
            "  {{\"family\": \"{}\", \"n\": {}, \"budget\": \"{}\", \
             \"budget_goals\": {}, \"answer\": \"{}\", \"rungs\": {}, \
             \"trip\": \"{}\", \"residual_budget\": {}, \"latency_ms\": {:.4}}}",
            self.family,
            self.n,
            self.budget_label,
            self.budget,
            self.answered_by,
            self.rungs_tried,
            self.resource,
            self.residual_budget,
            self.latency_ms,
        )
    }
}

/// E18: the resource-governed driver — degradation ladders under budget
/// starvation across the workload families, a seeded fault-injection sweep
/// tabling fallback rates, and the panic-isolated / cancellable corpus
/// sweep. Writes `BENCH_degrade.json`.
fn e18_degradation(sink: &mut impl TraceSink, test_mode: bool) {
    use cpsdfa_core::cfa::{zero_cfa_cps_instrumented, zero_cfa_instrumented};
    use cpsdfa_core::faultinject::{FaultKind, FaultPlan, INJECTED_PANIC};
    use cpsdfa_core::govern::{governed_zero_cfa_cps, CancelToken, CfaAnswer, GovernPolicy};
    use cpsdfa_workloads::par::{par_map_isolated, ParOutcome};

    section(
        "E18",
        "resource governance: degradation ladders, fault injection, panic isolation",
    );
    // Panics are injected on purpose below; silence their default report.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if msg.contains(INJECTED_PANIC) || msg.contains("e18: poisoned worker") {
            return;
        }
        previous_hook(info);
    }));

    // -- Part 1: degradation grid -----------------------------------------
    // Each workload runs the governed 0CFA ladder (cfa.cps -> cfa.src)
    // under three budgets derived from its own un-governed firing costs:
    // "ample" (default budget, no degradation), "starved" (exactly the
    // direct rung's cost — the CPS rung trips, the ladder answers at
    // cfa.src), and "tiny" (a quarter of that — every rung trips).
    println!("### Degradation grid: governed 0CFA ladder under shrinking budgets\n");
    let mut rows: Vec<E18Row> = Vec::new();
    for (family, build) in E16_LADDER {
        for &n in e18_sizes(test_mode) {
            let prog = AnfProgram::from_term(&build(n));
            let (_, src_stats) = zero_cfa_instrumented(&prog).unwrap();
            let budgets: [(&'static str, u64); 3] = [
                ("ample", AnalysisBudget::default().max_goals()),
                ("starved", src_stats.fired),
                ("tiny", (src_stats.fired / 4).max(1)),
            ];
            for (label, goals) in budgets {
                let policy = GovernPolicy::new().with_budget(AnalysisBudget::new(goals));
                let (answered_by, rungs_tried, resource, residual, latency_ns) =
                    match governed_zero_cfa_cps(&prog, &policy, sink) {
                        Ok(governed) => {
                            let r = &governed.report;
                            (
                                r.answered_by().unwrap_or("-").to_owned(),
                                r.rungs_tried(),
                                r.resource.unwrap_or("-").to_owned(),
                                r.residual_budget,
                                r.elapsed_ns,
                            )
                        }
                        Err(e) => ("(error)".to_owned(), 2, e.resource().to_owned(), 0, 0),
                    };
                sink.counter(
                    &format!("e18.grid.{family}.{n}.{label}.rungs"),
                    rungs_tried as u64,
                );
                rows.push(E18Row {
                    family,
                    n,
                    budget_label: label,
                    budget: goals,
                    answered_by,
                    rungs_tried,
                    resource,
                    residual_budget: residual,
                    latency_ms: latency_ns as f64 / 1e6,
                });
            }
        }
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}({})", r.family, r.n),
                format!("{} ({})", r.budget_label, r.budget),
                r.answered_by.clone(),
                format!("{}", r.rungs_tried),
                r.resource.clone(),
                format!("{}", r.residual_budget),
                format!("{:.3}", r.latency_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["workload", "budget", "answer", "rungs", "trip", "residual", "ms"],
            &table_rows
        )
    );

    // -- Part 2: seeded fault-injection sweep ------------------------------
    // One deterministic recoverable fault per corpus program, injected at a
    // seed-chosen firing inside (or just past) the un-faulted schedule.
    let sweep_n = if test_mode { 60 } else { 300 };
    println!("\n### Seeded fault sweep: {sweep_n}-program corpus, one recoverable fault each\n");
    let progs = corpus(0xE18, sweep_n, &open_config());
    let indexed: Vec<(u64, &cpsdfa_syntax::Term)> = progs
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u64, t))
        .collect();
    // Per program: (fault kind, recovered?, degraded?, answer matches un-faulted rung?)
    let outcomes = par_map(&indexed, |&(i, t)| {
        let p = AnfProgram::from_term(t);
        let c = CpsProgram::from_anf(&p);
        let (cps_baseline, stats) = zero_cfa_cps_instrumented(&c).unwrap();
        let fault = FaultPlan::from_seed_recoverable(0xE18 ^ i, stats.fired.max(1) + 8);
        let kind = fault.kind();
        let policy = GovernPolicy::new().with_fault(fault);
        match governed_zero_cfa_cps(&p, &policy, &mut NoopSink) {
            Ok(governed) => {
                let degraded = governed.report.degraded();
                let matches = match &governed.value {
                    CfaAnswer::Cps(a) => a.same_solution(&cps_baseline),
                    CfaAnswer::Direct(a) => a.same_solution(&zero_cfa(&p).unwrap()),
                    // The 0CFA ladder has no pushdown rung.
                    CfaAnswer::Pushdown(_) => false,
                };
                (kind, true, degraded, matches)
            }
            Err(_) => (kind, false, false, true),
        }
    });
    let mut sweep_rows: Vec<Vec<String>> = Vec::new();
    let mut sweep_json: Vec<String> = Vec::new();
    for kind in FaultKind::RECOVERABLE {
        let of_kind: Vec<_> = outcomes.iter().filter(|o| o.0 == kind).collect();
        let injected = of_kind.len();
        let recovered = of_kind.iter().filter(|o| o.1).count();
        let degraded = of_kind.iter().filter(|o| o.2).count();
        let mismatched = of_kind.iter().filter(|o| !o.3).count();
        sink.counter(&format!("e18.sweep.{kind:?}.injected"), injected as u64);
        sink.counter(&format!("e18.sweep.{kind:?}.recovered"), recovered as u64);
        sink.counter(&format!("e18.sweep.{kind:?}.mismatched"), mismatched as u64);
        sweep_rows.push(vec![
            format!("{kind:?}"),
            format!("{injected}"),
            format!("{recovered}"),
            format!("{degraded}"),
            format!("{}", injected - recovered),
            format!("{mismatched}"),
        ]);
        sweep_json.push(format!(
            "  {{\"fault\": \"{kind:?}\", \"injected\": {injected}, \
             \"recovered\": {recovered}, \"degraded\": {degraded}, \
             \"failed\": {}, \"mismatched\": {mismatched}}}",
            injected - recovered,
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "fault",
                "injected",
                "recovered",
                "degraded",
                "failed",
                "mismatch"
            ],
            &sweep_rows
        )
    );
    let total_mismatch: usize = outcomes.iter().filter(|o| !o.3).count();
    println!(
        "\nevery recovered run must match its un-faulted rung: {} mismatches",
        total_mismatch
    );
    assert_eq!(total_mismatch, 0, "a recovered fault changed an answer");

    // -- Part 3: panic isolation and cooperative cancellation --------------
    println!("\n### Worker panic isolation and cancellation\n");
    let demo = corpus(0xE18_0DD, if test_mode { 24 } else { 96 }, &open_config());
    let poisoned = demo.len() / 2;
    let indexed: Vec<(usize, &cpsdfa_syntax::Term)> = demo.iter().enumerate().collect();
    let report = par_map_isolated(&indexed, None, |&(i, t)| {
        assert!(i != poisoned, "e18: poisoned worker {i}");
        let p = AnfProgram::from_term(t);
        zero_cfa(&p).unwrap().iterations
    });
    println!(
        "poisoned worker sweep: {} items, {} completed, {} panicked, interrupted: {}",
        demo.len(),
        report.completed,
        report.panicked,
        report.interrupted,
    );
    sink.counter("e18.par.completed", report.completed as u64);
    sink.counter("e18.par.panicked", report.panicked as u64);
    assert_eq!(report.panicked, 1, "exactly the poisoned item fails");
    assert_eq!(
        report.completed,
        demo.len() - 1,
        "every other worker's result is intact"
    );

    // A sweep cancelled from another thread: partial results come back with
    // the explicit Interrupted marker and the skipped tail is logged as the
    // harness.cancelled counter.
    let token = CancelToken::new();
    token.cancel();
    let cancelled = par_map_isolated(&indexed, Some(token.as_flag()), |&(_, t)| {
        let p = AnfProgram::from_term(t);
        zero_cfa(&p).unwrap().iterations
    });
    let skipped = cancelled
        .results
        .iter()
        .filter(|o| matches!(o, ParOutcome::Skipped))
        .count();
    sink.counter("harness.cancelled", skipped as u64);
    println!(
        "cancelled sweep: interrupted: {}, {} of {} items skipped (harness.cancelled)",
        cancelled.interrupted,
        skipped,
        demo.len(),
    );
    assert!(
        cancelled.interrupted,
        "pre-cancelled sweep must be cut short"
    );

    // -- Artifact ----------------------------------------------------------
    let grid_json: Vec<String> = rows.iter().map(E18Row::to_json).collect();
    let payload = format!(
        "{{\n\"grid\": [\n{}\n],\n\"fault_sweep\": [\n{}\n]\n}}\n",
        grid_json.join(",\n"),
        sweep_json.join(",\n"),
    );
    match std::fs::write("BENCH_degrade.json", &payload) {
        Ok(()) => println!(
            "\nwrote {} grid rows and {} sweep rows to BENCH_degrade.json",
            rows.len(),
            sweep_json.len()
        ),
        Err(e) => println!("\ncould not write BENCH_degrade.json: {e}"),
    }
}

// ===========================================================================
// E20 — the analysis service: content-addressed cache under mixed traffic
// ===========================================================================

/// The E20 request pool: every analysis kind crossed with the cost-
/// experiment families it accepts. Each point contributes two program
/// sizes, so the pool holds 12 distinct programs — enough spread for a
/// zipf-skewed mix to produce a realistic hit/miss interleaving.
const E20_POOL: [(&str, Family, usize, usize); 6] = [
    ("cfa.src", ("dispatch", families::dispatch), 96, 12),
    ("cfa.src", ("polyvariant", families::repeated_calls), 96, 12),
    ("cfa.cps", ("dispatch", families::dispatch), 96, 12),
    ("cfa.cps", ("polyvariant", families::repeated_calls), 96, 12),
    ("mfp.flat", ("diamond", families::diamond_chain), 48, 6),
    ("mfp.flat", ("cond-chain", families::cond_chain), 96, 12),
];

/// One distinct request of the E20 pool: the JSONL tail shared by every
/// submission of this program (ids are assigned per mix).
struct E20Req {
    label: String,
    tail: String,
}

/// Summary of one (mix, cache setting) run: the latency distribution of
/// the measured batch, its wall-clock throughput, and the hit/miss split
/// read back from the responses themselves.
struct E20Mix {
    mix: &'static str,
    cache: &'static str,
    requests: usize,
    wall_ms: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    hits: u64,
    misses: u64,
}

impl E20Mix {
    fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ms / 1e3)
    }

    fn to_json(&self) -> String {
        format!(
            "  {{\"mix\": \"{}\", \"cache\": \"{}\", \"requests\": {}, \
             \"wall_ms\": {:.4}, \"throughput_rps\": {:.0}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}",
            self.mix,
            self.cache,
            self.requests,
            self.wall_ms,
            self.throughput_rps(),
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.hits,
            self.misses,
            self.hit_rate(),
        )
    }

    fn emit_into(&self, sink: &mut impl TraceSink) {
        if !sink.enabled() {
            return;
        }
        let p = format!("e20.{}.{}", self.mix, self.cache);
        sink.gauge(&format!("{p}.requests"), self.requests as u64);
        sink.time_ns(&format!("{p}.wall_ns"), (self.wall_ms * 1e6) as u64);
        sink.gauge(&format!("{p}.p50_us"), self.p50_us);
        sink.gauge(&format!("{p}.p95_us"), self.p95_us);
        sink.gauge(&format!("{p}.p99_us"), self.p99_us);
        sink.counter(&format!("{p}.hits"), self.hits);
        sink.counter(&format!("{p}.misses"), self.misses);
    }
}

/// Runs one measured batch against `service`, folding the per-request
/// trace into the harness sink under `e20.<mix>.<cache>` and reading the
/// hit/miss split back from the responses. Any non-ok response fails the
/// experiment — every E20 request is well-formed and admission is opened
/// up, so a failure here is a service bug.
fn e20_run_mix(
    service: &cpsdfa_service::AnalysisService,
    mix: &'static str,
    cache: &'static str,
    lines: &[String],
    sink: &mut impl TraceSink,
) -> (E20Mix, Vec<cpsdfa_service::Outcome>) {
    use cpsdfa_service::proto::{Served, Status};
    use std::time::Instant;

    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let mut agg = AggSink::new();
    let start = Instant::now();
    let outcomes = service.run_batch_traced(&refs, &mut agg);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    trace::with_span(sink, &format!("e20.{mix}.{cache}"), |s| agg.replay_into(s));
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut latencies = Vec::with_capacity(outcomes.len());
    for o in &outcomes {
        match &o.response.status {
            Status::Ok { cache, .. } => {
                latencies.push(o.response.latency_us);
                match cache {
                    Served::Hit => hits += 1,
                    // E20 requests carry no session id, so the watch-mode
                    // warm path can never answer here.
                    Served::Miss | Served::Warm => misses += 1,
                    Served::Off => {}
                }
            }
            other => panic!(
                "E20 {mix}/{cache}: request {} failed: {other:?}",
                o.response.id
            ),
        }
    }
    let summary = E20Mix {
        mix,
        cache,
        requests: outcomes.len(),
        wall_ms,
        p50_us: e20_percentile(&latencies, 0.50),
        p95_us: e20_percentile(&latencies, 0.95),
        p99_us: e20_percentile(&latencies, 0.99),
        hits,
        misses,
    };
    summary.emit_into(sink);
    (summary, outcomes)
}

/// Nearest-rank percentile over an unsorted latency sample.
fn e20_percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// E20: the analysis-as-a-service daemon's content-addressed cache under
/// sustained mixed-family traffic. Three request mixes — cold (every
/// program distinct), warm-repeat (a primed pool replayed), zipf-skewed
/// (rank-weighted draws over the pool) — each run against a cache-on and a
/// cache-off service built from the *same* request lines, with per-sample
/// bit-identity asserted between the two. Records p50/p95/p99 service
/// latency, throughput, and hit-rate into `BENCH_service.json` and
/// `e20.*` trace events; the acceptance target is a >= 10x warm-repeat
/// p50 over cold.
fn e20_service(sink: &mut impl TraceSink, test_mode: bool) {
    use cpsdfa_service::{AnalysisService, Outcome, ServiceConfig};

    section(
        "E20",
        "analysis service: content-addressed fixpoint cache under mixed traffic",
    );
    let workers = cpsdfa_workloads::par::worker_count();
    let hw = hw_threads();
    sink.gauge("e20.workers", workers as u64);
    sink.gauge("e20.hw_threads", hw as u64);
    println!("service workers: {workers}; hardware threads: {hw}");
    println!("(latency is per-request service time — cache probe + solve — so the");
    println!(" warm/cold ratio is queue-independent; throughput is batch wall-clock)\n");

    // -- The request pool --------------------------------------------------
    let pool: Vec<E20Req> = E20_POOL
        .iter()
        .flat_map(|&(analysis, (family, build), n_full, n_test)| {
            let n = if test_mode { n_test } else { n_full };
            [n, (n / 2).max(2)].map(move |n| {
                let program = build(n).to_string();
                E20Req {
                    label: format!("{analysis} {family}({n})"),
                    tail: format!(
                        "\"analysis\": \"{analysis}\", \"program\": \"{}\"",
                        cpsdfa_service::json::escape(&program)
                    ),
                }
            })
        })
        .collect();
    println!(
        "request pool ({} distinct programs, zipf rank order): {}\n",
        pool.len(),
        pool.iter()
            .map(|r| r.label.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let line = |id: usize, req: &E20Req| format!("{{\"id\": {id}, {}}}", req.tail);
    let pool_pass = |base: usize| -> Vec<String> {
        pool.iter()
            .enumerate()
            .map(|(i, r)| line(base + i, r))
            .collect()
    };

    // E20 measures the cache, not admission control: the batch feeder
    // enqueues a whole mix at once, so worst-case reservations for the
    // backlog would trip the capacity rung. Open the admission ladder up.
    let config = |cache_enabled: bool| ServiceConfig {
        workers,
        cache_enabled,
        capacity_charges: u64::MAX / 2,
        max_queue: 1 << 16,
        ..ServiceConfig::default()
    };

    // Per-sample differential: the cache-on and cache-off services ran the
    // identical request sequence, so outcome i of one must be bit-identical
    // to outcome i of the other — same canonical digest, same whole answer.
    let assert_bit_identity = |mix: &str, on: &[Outcome], off: &[Outcome]| -> usize {
        assert_eq!(on.len(), off.len(), "E20 {mix}: sample counts differ");
        for (a, b) in on.iter().zip(off) {
            let fa = a.fixpoint.as_ref().unwrap_or_else(|| {
                panic!(
                    "E20 {mix}: cache-on request {} has no answer",
                    a.response.id
                )
            });
            let fb = b.fixpoint.as_ref().unwrap_or_else(|| {
                panic!(
                    "E20 {mix}: cache-off request {} has no answer",
                    b.response.id
                )
            });
            assert_eq!(
                fa.answer_digest, fb.answer_digest,
                "E20 {mix}: request {} digests diverge between cache on/off",
                a.response.id
            );
            assert_eq!(
                fa.answer, fb.answer,
                "E20 {mix}: request {} answers diverge between cache on/off",
                a.response.id
            );
        }
        on.len()
    };

    let mut summaries: Vec<E20Mix> = Vec::new();
    let mut identical_samples = 0usize;

    // -- Mix 1: cold — every program distinct, nothing to reuse ------------
    let cold_lines = pool_pass(1_000);
    let (cold_on, cold_off) = (AnalysisService::new(config(true)), {
        AnalysisService::new(config(false))
    });
    let (cold_on_mix, cold_on_out) = e20_run_mix(&cold_on, "cold", "on", &cold_lines, sink);
    let (cold_off_mix, cold_off_out) = e20_run_mix(&cold_off, "cold", "off", &cold_lines, sink);
    identical_samples += assert_bit_identity("cold", &cold_on_out, &cold_off_out);
    assert_eq!(cold_on_mix.hits, 0, "a cold mix cannot hit");

    // -- Mix 2: warm-repeat — prime once, then replay the pool -------------
    let passes = if test_mode { 2 } else { 8 };
    let (warm_on, warm_off) = (AnalysisService::new(config(true)), {
        AnalysisService::new(config(false))
    });
    // The priming pass is run on both services (and excluded from the
    // measurement) so the measured sequences stay sample-aligned.
    for service in [&warm_on, &warm_off] {
        let prime = pool_pass(2_000);
        let refs: Vec<&str> = prime.iter().map(String::as_str).collect();
        service.run_batch(&refs);
    }
    let warm_lines: Vec<String> = (0..passes)
        .flat_map(|pass| pool_pass(3_000 + pass * pool.len()))
        .collect();
    let (warm_on_mix, warm_on_out) = e20_run_mix(&warm_on, "warm-repeat", "on", &warm_lines, sink);
    let (warm_off_mix, warm_off_out) =
        e20_run_mix(&warm_off, "warm-repeat", "off", &warm_lines, sink);
    identical_samples += assert_bit_identity("warm-repeat", &warm_on_out, &warm_off_out);
    assert_eq!(
        warm_on_mix.misses, 0,
        "a primed pool replay must be all hits"
    );

    // -- Mix 3: zipf-skewed — rank-weighted draws over the pool ------------
    // Rank r of the pool carries weight 1/r (zipf s=1); draws come from a
    // fixed-seed LCG so the mix is reproducible run to run.
    let draws = if test_mode { 32 } else { 200 };
    let weights: Vec<f64> = (1..=pool.len()).map(|r| 1.0 / r as f64).collect();
    let total_weight: f64 = weights.iter().sum();
    let mut lcg: u64 = 0xE20_5EED;
    let mut next_index = || -> usize {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (lcg >> 11) as f64 / (1u64 << 53) as f64;
        let mut target = u * total_weight;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        pool.len() - 1
    };
    let zipf_lines: Vec<String> = (0..draws)
        .map(|i| line(10_000 + i, &pool[next_index()]))
        .collect();
    let (zipf_on, zipf_off) = (AnalysisService::new(config(true)), {
        AnalysisService::new(config(false))
    });
    let (zipf_on_mix, zipf_on_out) = e20_run_mix(&zipf_on, "zipf", "on", &zipf_lines, sink);
    let (zipf_off_mix, zipf_off_out) = e20_run_mix(&zipf_off, "zipf", "off", &zipf_lines, sink);
    identical_samples += assert_bit_identity("zipf", &zipf_on_out, &zipf_off_out);
    assert!(
        zipf_on_mix.hits > 0 && zipf_on_mix.misses > 0,
        "a zipf mix over a {}-program pool must interleave hits and misses",
        pool.len()
    );

    // -- Report ------------------------------------------------------------
    let ratio = cold_on_mix.p50_us as f64 / warm_on_mix.p50_us.max(1) as f64;
    summaries.extend([
        cold_on_mix,
        cold_off_mix,
        warm_on_mix,
        warm_off_mix,
        zipf_on_mix,
        zipf_off_mix,
    ]);
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|m| {
            vec![
                m.mix.to_string(),
                m.cache.to_string(),
                format!("{}", m.requests),
                format!("{}", m.p50_us),
                format!("{}", m.p95_us),
                format!("{}", m.p99_us),
                format!("{:.0}", m.throughput_rps()),
                format!("{:.0}%", m.hit_rate() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["mix", "cache", "reqs", "p50 us", "p95 us", "p99 us", "req/s", "hit rate",],
            &rows
        )
    );
    println!(
        "warm-repeat p50 speedup over cold (cache on): {ratio:.1}x  \
         (target >= 10x)"
    );
    println!(
        "bit-identity: {identical_samples} samples compared cache-on vs \
         cache-off, all identical"
    );
    sink.gauge("e20.warm_cold_p50_ratio_x100", (ratio * 100.0) as u64);
    sink.gauge("e20.identical_samples", identical_samples as u64);
    if !test_mode {
        assert!(
            ratio >= 10.0,
            "warm-repeat p50 must be >= 10x faster than cold (got {ratio:.1}x)"
        );
    }

    // -- Artifact ----------------------------------------------------------
    let mixes = format!(
        "[\n{}\n]",
        summaries
            .iter()
            .map(E20Mix::to_json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let summary = format!(
        "{{\"warm_cold_p50_ratio\": {ratio:.2}, \
         \"identical_samples\": {identical_samples}, \"pool_programs\": {}, \
         \"workers\": {workers}, \"hw_threads\": {hw}, \"test_mode\": {test_mode}}}",
        pool.len(),
    );
    bench_service_merge(&[("mixes", mixes), ("summary", summary)]);
}

/// Splits the text of a JSON object into `(key, raw value)` pairs at the
/// top level — strings and nesting respected, values left as raw text.
/// `None` when the text is not a braced object (the caller starts fresh).
fn json_top_sections(text: &str) -> Option<Vec<(String, String)>> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut i);
        if i >= bytes.len() {
            return None;
        }
        if bytes[i] == b'}' {
            return Some(out);
        }
        if bytes[i] != b'"' {
            return None;
        }
        let key_start = i + 1;
        i += 1;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1 + usize::from(bytes[i] == b'\\');
        }
        if i >= bytes.len() {
            return None;
        }
        let key = text[key_start..i].to_owned();
        i += 1;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        let val_start = i;
        let mut depth = 0u32;
        let mut in_str = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_str {
                if b == b'\\' {
                    i += 1;
                } else if b == b'"' {
                    in_str = false;
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth > 0 => depth -= 1,
                    b'}' | b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        out.push((key, text[val_start..i].trim_end().to_owned()));
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// Merges top-level sections into `BENCH_service.json`: sections of other
/// producers survive, same-named sections are replaced, new ones appended
/// — the same live-and-let-live contract the `BENCH_solver.json` row
/// helpers give the curve experiments.
fn bench_service_merge(sections: &[(&str, String)]) {
    let mut all: Vec<(String, String)> = std::fs::read_to_string("BENCH_service.json")
        .ok()
        .as_deref()
        .and_then(json_top_sections)
        .unwrap_or_default();
    for (key, value) in sections {
        match all.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.clone(),
            None => all.push(((*key).to_owned(), value.clone())),
        }
    }
    let body = all
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let names = sections
        .iter()
        .map(|(k, _)| *k)
        .collect::<Vec<_>>()
        .join(", ");
    match std::fs::write("BENCH_service.json", format!("{{\n{body}\n}}\n")) {
        Ok(()) => println!("\nwrote sections [{names}] into BENCH_service.json"),
        Err(e) => println!("\ncould not write BENCH_service.json: {e}"),
    }
}

// ---------------------------------------------------------------------------
// E22: incremental re-analysis
// ---------------------------------------------------------------------------

const E22_FAMILIES: [Family; 2] = [
    ("dispatch", families::dispatch),
    ("polyvariant", families::polyvariant),
];
const E22_NS: [usize; 3] = [40, 160, 640];
const E22_TEST_NS: [usize; 1] = [24];
/// The dispatch family's wall gate gets one extra scale rung in full
/// mode: the warm update is edit-proportional while the cold solve is
/// ~quadratic, so the margin over the 10x bar widens with n and the
/// assertion stops being sensitive to allocator noise from earlier
/// experiments in the suite (polyvariant already clears it ~60x at 640).
const E22_DISPATCH_TOP_N: usize = 1280;

/// Appends E22 curve rows to `BENCH_solver.json`, symmetric with
/// [`e19_append_rows`]/[`e21_append_rows`]: rows of every other producer
/// survive, stale e22 rows are dropped, fresh ones appended.
fn e22_append_rows(rows: &[String]) {
    let mut all = bench_solver_rows(|line| !line.contains("\"curve\": \"e22\""));
    all.extend(rows.iter().cloned());
    let payload = format!("[\n{}\n]\n", all.join(",\n"));
    match std::fs::write("BENCH_solver.json", &payload) {
        Ok(()) => println!(
            "\nappended {} incremental rows to BENCH_solver.json",
            rows.len()
        ),
        Err(e) => println!("\ncould not write BENCH_solver.json: {e}"),
    }
}

/// E22: the edit-delta warm-start solver. Three parts:
///
/// 1. **Headline ratio** — a *live* [`IncrementalCfa`] session absorbs a
///    single leaf edit (toggling one binding between a constant and a
///    free variable) on the big dispatch/polyvariant workloads. Each
///    warm update rides the retract rung — work proportional to the
///    edit, not the fixpoint — and is paired against a from-scratch
///    solve of the same program in one interleaved sampling loop.
///    `"curve": "e22"` rows (warm vs cold wall time *and* fired
///    constraints) land in `BENCH_solver.json`. On the largest size the
///    live warm path must beat from-scratch ≥10× on fired constraints
///    always, and on wall time in a full run (`--test` skips the wall
///    assertion because CI wall clocks on shrunken programs measure
///    noise). Bit-identity is asserted outside the timing loop, in both
///    edit directions.
/// 2. **Stateless transport** — the sessionless `zero_cfa_warm` driver
///    across an inserted-leaf edit, reported honestly: it saves ≥10× on
///    fired constraints but its seed transport is Ω(fixpoint), so no
///    wall-ratio bar applies (the table shows whatever it measures).
/// 3. **Rung census** — a generated edit script covering every
///    [`EditKind`](cpsdfa_workloads::edits::EditKind) twice drives the
///    live incremental analyzer; each step's warm fixpoint is checked
///    bit-identical to a from-scratch solve, and the table records which
///    cascade rung (noop / retract / seeded / transport / cold) answered.
fn e22_incremental(sink: &mut impl TraceSink, test_mode: bool) {
    use cpsdfa_core::cfa::zero_cfa_instrumented;
    use cpsdfa_core::incremental::{zero_cfa_warm, IncrementalCfa, Outcome, WarmPath, WarmSolve};
    use cpsdfa_syntax::build::{let_, num, var};
    use cpsdfa_workloads::edits::{edit_script, ALL_EDIT_KINDS};

    section(
        "E22",
        "incremental re-analysis: warm-start vs from-scratch after an edit",
    );

    // --- headline: a live session toggling one leaf binding ---
    let ns: &[usize] = if test_mode { &E22_TEST_NS } else { &E22_NS };
    let reps = if test_mode { 2 } else { 5 };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    for (family, build) in E22_FAMILIES {
        let mut grid: Vec<usize> = ns.to_vec();
        if !test_mode && family == "dispatch" {
            grid.push(E22_DISPATCH_TOP_N);
        }
        for &n in &grid {
            // `e22w` mentions `z` so the free-variable space is identical
            // in both versions; the edit toggles `e22x` between a constant
            // and that (closure-free) variable, which the aligner resolves
            // on the retract rung in both directions.
            let inner = build(n);
            let v0 = let_("e22w", var("z"), let_("e22x", num(1), inner.clone()));
            let v1 = let_("e22w", var("z"), let_("e22x", var("z"), inner));
            let p0 = AnfProgram::from_term(&v0);
            let p1 = AnfProgram::from_term(&v1);
            let psize = p1.root().size();
            let mut live = IncrementalCfa::new(p0.clone()).expect("live base solve");
            let (mut cold_flip, mut warm_flip) = (0usize, 0usize);
            let ((cold_ms, (_, cold_stats)), (warm_ms, report)) = paired_median_ms(
                reps,
                || {
                    let target = if cold_flip % 2 == 0 { &p1 } else { &p0 };
                    cold_flip += 1;
                    zero_cfa_instrumented(target).expect("cold edited solve")
                },
                || {
                    let target = if warm_flip % 2 == 0 { &p1 } else { &p0 };
                    warm_flip += 1;
                    let report = live.update(target.clone()).expect("warm update");
                    assert!(
                        matches!(report.outcome, Outcome::Warm(WarmPath::Retract)),
                        "leaf toggle on {family}({n}) must ride the retract rung, \
                         got {:?}",
                        report.outcome
                    );
                    report
                },
            );
            // Bit-identity in both directions, outside the timing loop
            // (the first update may be a noop if the session already sits
            // at that version — still warm, still identical).
            for target in [&p0, &p1] {
                let rep = live.update(target.clone()).expect("verify update");
                assert!(
                    matches!(rep.outcome, Outcome::Warm(_)),
                    "verification update fell cold on {family}({n}): {:?}",
                    rep.outcome
                );
                let (fresh, _) = zero_cfa_instrumented(target).expect("verify cold solve");
                assert!(
                    live.result().same_solution(&fresh),
                    "live warm fixpoint diverges from from-scratch on {family}({n})"
                );
            }
            let cold_fired = cold_stats.fired.max(1);
            let warm_fired = report.fired;
            let wall_ratio = cold_ms / warm_ms;
            let fired_ratio = cold_fired as f64 / warm_fired.max(1) as f64;
            let p = format!("e22.{family}.{n}");
            sink.gauge(&format!("{p}.program_size"), psize as u64);
            sink.time_ns(&format!("{p}.cold_ns"), (cold_ms * 1e6) as u64);
            sink.time_ns(&format!("{p}.warm_ns"), (warm_ms * 1e6) as u64);
            sink.gauge(&format!("{p}.cold_fired"), cold_fired);
            sink.gauge(&format!("{p}.warm_fired"), warm_fired);
            rows.push(vec![
                format!("{family}({n})"),
                format!("{cold_ms:.2}"),
                format!("{warm_ms:.3}"),
                format!("{wall_ratio:.1}x"),
                format!("{cold_fired}"),
                format!("{warm_fired}"),
                format!("{fired_ratio:.1}x"),
            ]);
            json_rows.push(format!(
                "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
                 \"analyzer\": \"0cfa-src\", \"impl\": \"live-incremental\", \
                 \"edit\": \"toggle-leaf\", \"wall_ms\": {:.4}, \
                 \"cold_wall_ms\": {:.4}, \"iterations\": {}, \
                 \"cold_iterations\": {}, \"wall_ratio\": {:.2}, \
                 \"fired_ratio\": {:.2}, \"curve\": \"e22\"}}",
                family, n, psize, warm_ms, cold_ms, warm_fired, cold_fired, wall_ratio, fired_ratio,
            ));
            if n == *grid.last().unwrap() {
                assert!(
                    fired_ratio >= 10.0,
                    "live warm update must fire >=10x fewer constraints than \
                     from-scratch on {family}({n}): cold {cold_fired}, warm {warm_fired}"
                );
                if !test_mode {
                    assert!(
                        wall_ratio >= 10.0,
                        "live warm update must be >=10x faster than from-scratch \
                         on {family}({n}): cold {cold_ms:.2}ms, warm {warm_ms:.3}ms"
                    );
                }
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "cold ms",
                "warm ms",
                "wall",
                "cold fired",
                "warm fired",
                "fired",
            ],
            &rows
        )
    );
    println!("every warm fixpoint checked bit-identical to the from-scratch solve");

    // --- stateless transport: sessionless warm across an inserted leaf ---
    let mut seeded_rows: Vec<Vec<String>> = Vec::new();
    for (family, build) in E22_FAMILIES {
        let n = *ns.last().unwrap();
        let base = build(n);
        let edited = let_("e22fresh", num(1), base.clone());
        let old = AnfProgram::from_term(&base);
        let new = AnfProgram::from_term(&edited);
        let psize = new.root().size();
        let (prev, _) = zero_cfa_instrumented(&old).expect("cold base solve");
        let ((cold_ms, (cold, cold_stats)), (warm_ms, (warm, report))) = paired_median_ms(
            reps,
            || zero_cfa_instrumented(&new).expect("cold edited solve"),
            || match zero_cfa_warm(&old, &prev, &new).expect("warm solve") {
                WarmSolve::Warm(r, rep) => (r, rep),
                WarmSolve::Cold(reason) => {
                    panic!("leaf edit on {family}({n}) must warm-start, fell cold: {reason:?}")
                }
            },
        );
        assert!(
            warm.same_solution(&cold),
            "stateless warm fixpoint diverges from from-scratch on {family}({n})"
        );
        let cold_fired = cold_stats.fired.max(1);
        let warm_fired = report.fired;
        let fired_ratio = cold_fired as f64 / warm_fired.max(1) as f64;
        assert!(
            fired_ratio >= 10.0,
            "stateless warm must fire >=10x fewer constraints than \
             from-scratch on {family}({n}): cold {cold_fired}, warm {warm_fired}"
        );
        seeded_rows.push(vec![
            format!("{family}({n})"),
            format!("{cold_ms:.2}"),
            format!("{warm_ms:.3}"),
            format!("{cold_fired}"),
            format!("{warm_fired}"),
            format!("{fired_ratio:.1}x"),
        ]);
        json_rows.push(format!(
            "  {{\"family\": \"{}\", \"n\": {}, \"program_size\": {}, \
             \"analyzer\": \"0cfa-src\", \"impl\": \"seeded-stateless\", \
             \"edit\": \"insert-leaf\", \"wall_ms\": {:.4}, \
             \"cold_wall_ms\": {:.4}, \"iterations\": {}, \
             \"cold_iterations\": {}, \"wall_ratio\": {:.2}, \
             \"fired_ratio\": {:.2}, \"curve\": \"e22\"}}",
            family,
            n,
            psize,
            warm_ms,
            cold_ms,
            warm_fired,
            cold_fired,
            cold_ms / warm_ms,
            fired_ratio,
        ));
    }
    println!(
        "\nstateless transport (sessionless zero_cfa_warm; seed transport is \
         proportional to the fixpoint, so only the fired bar applies):\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "cold ms",
                "warm ms",
                "cold fired",
                "warm fired",
                "fired",
            ],
            &seeded_rows
        )
    );

    // --- rung census: a full edit script on the live analyzer ---
    let census_n = if test_mode { 12 } else { 48 };
    let base = families::dispatch(census_n);
    let kinds: Vec<_> = ALL_EDIT_KINDS
        .iter()
        .chain(ALL_EDIT_KINDS.iter())
        .copied()
        .collect();
    let script = edit_script(&base, &kinds, 0xE22);
    let mut live =
        IncrementalCfa::new(AnfProgram::from_term(&script.base)).expect("live base solve");
    let mut census: Vec<Vec<String>> = Vec::new();
    for step in &script.steps {
        let prog = AnfProgram::from_term(&step.term);
        let report = live.update(prog.clone()).expect("live update");
        let (fresh, _) = zero_cfa_instrumented(&prog).expect("census cold solve");
        assert!(
            live.result().same_solution(&fresh),
            "live analyzer diverged from from-scratch after {:?}",
            step.kind
        );
        let rung = match report.outcome {
            Outcome::Warm(WarmPath::Noop) => "noop".to_owned(),
            Outcome::Warm(WarmPath::Retract) => "retract".to_owned(),
            Outcome::Warm(WarmPath::Seeded) => "seeded".to_owned(),
            Outcome::Warm(WarmPath::Transport) => "transport".to_owned(),
            Outcome::Cold(reason) => format!("cold ({reason:?})"),
        };
        sink.counter(
            &format!("e22.script.rung.{}", rung.split(' ').next().unwrap()),
            1,
        );
        sink.counter("e22.script.fired", report.fired);
        census.push(vec![
            format!("{:?}", step.kind),
            rung,
            format!("{}", report.fired),
            format!("{}", report.retracted),
            format!("{}", report.added),
        ]);
    }
    println!(
        "\nedit-script rung census on dispatch({census_n}), {} steps:\n",
        script.steps.len()
    );
    println!(
        "{}",
        render_table(&["edit", "rung", "fired", "retracted", "added"], &census)
    );
    println!("every step checked bit-identical to a from-scratch solve");
    e22_append_rows(&json_rows);
}

// ---------------------------------------------------------------------------
// E23: chaos harness — kill/restart/corrupt over the persistent cache
// ---------------------------------------------------------------------------

/// E23: the crash-safety acceptance run. Phase A fills a persisted cache
/// (plus a watch-session journal) with cold solves; phase B restarts the
/// daemon over the same directory and measures the post-restart warm
/// hit-rate; phase C loops every [`PersistFault`] through a
/// store/kill/restart cycle with full serve-path certification on,
/// asserting three invariants: zero wrong answers served (every response's
/// digest matches a from-scratch baseline and every served answer is
/// certified), every injected corruption detected and counted in the
/// matching recovery column, and every corruption healed (a second
/// recovery over the directory is clean). Results land in the `"e23"`
/// section of `BENCH_service.json`.
fn e23_chaos(sink: &mut impl TraceSink, test_mode: bool) {
    use cpsdfa_core::faultinject::{PersistFault, PersistFaultPlan};
    use cpsdfa_service::proto::{Served, Status};
    use cpsdfa_service::{AnalysisService, ServiceConfig};
    use std::collections::HashMap;
    use std::sync::Arc;

    section(
        "E23",
        "chaos harness: certified answers over a crash-safe persistent cache",
    );

    let ns: &[usize] = if test_mode {
        &[4, 5, 6]
    } else {
        &[4, 6, 8, 10, 12]
    };
    let mut reqs: Vec<(&'static str, String)> = Vec::new();
    for &n in ns {
        reqs.push(("cfa.src", families::dispatch(n).to_string()));
        reqs.push(("cfa.cps", families::repeated_calls(n).to_string()));
        reqs.push(("mfp.flat", families::cond_chain(n).to_string()));
    }
    let line_for = |id: u64, analysis: &str, program: &str| {
        format!(
            "{{\"id\": {id}, \"analysis\": \"{analysis}\", \"program\": \"{}\"}}",
            cpsdfa_service::json::escape(program)
        )
    };
    let ok_of = |status: &Status| -> (Served, u64) {
        match status {
            Status::Ok {
                cache,
                answer_digest,
                ..
            } => (cache.clone(), *answer_digest),
            other => panic!("E23: request failed: {other:?}"),
        }
    };

    // From-scratch ground truth, computed with the cache disabled: the
    // digest every certified/recovered/healed answer must reproduce.
    let mut truth: HashMap<(&'static str, String), u64> = HashMap::new();
    {
        let baseline = AnalysisService::new(ServiceConfig {
            workers: 1,
            capacity_charges: u64::MAX / 2,
            cache_enabled: false,
            ..ServiceConfig::default()
        });
        for (i, (analysis, program)) in reqs.iter().enumerate() {
            let line = line_for(i as u64, analysis, program);
            let out = baseline.run_batch(&[&line]);
            truth.insert(
                (analysis, program.clone()),
                ok_of(&out[0].response.status).1,
            );
        }
    }
    println!(
        "{} programs across cfa.src / cfa.cps / mfp.flat",
        reqs.len()
    );

    let scratch = std::env::temp_dir().join(format!("cpsdfa-e23-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let config_for = |dir: &std::path::Path| ServiceConfig {
        workers: 1,
        capacity_charges: u64::MAX / 2,
        persist_dir: Some(dir.to_path_buf()),
        certify_sample: 1,
        ..ServiceConfig::default()
    };

    // -- Phase A: cold fill + watch session ---------------------------------
    let warm_dir = scratch.join("restart");
    let session_base = families::dispatch(*ns.last().unwrap()).to_string();
    {
        let service = AnalysisService::new(config_for(&warm_dir));
        for (i, (analysis, program)) in reqs.iter().enumerate() {
            let line = line_for(i as u64, analysis, program);
            let out = service.run_batch(&[&line]);
            let (served, digest) = ok_of(&out[0].response.status);
            assert_eq!(served, Served::Miss, "phase A solves cold");
            assert_eq!(digest, truth[&(*analysis, program.clone())]);
        }
        let line = format!(
            "{{\"id\": 900, \"session\": 9, \"analysis\": \"cfa.cps\", \"program\": \"{}\"}}",
            cpsdfa_service::json::escape(&session_base)
        );
        service.run_batch(&[&line]);
    }

    // -- Phase B: restart, measure the warm hit-rate ------------------------
    let (recovered, warm_hit_rate);
    {
        let service = AnalysisService::new(config_for(&warm_dir));
        let rec = *service.recovery().expect("persist dir recovers");
        assert_eq!(rec.dropped(), 0, "clean shutdown leaves no corruption");
        assert_eq!(rec.sessions, 1, "watch session journaled: {rec:?}");
        recovered = rec.recovered;
        let mut warm_served = 0usize;
        for (i, (analysis, program)) in reqs.iter().enumerate() {
            let line = line_for(1000 + i as u64, analysis, program);
            let out = service.run_batch(&[&line]);
            let (served, digest) = ok_of(&out[0].response.status);
            assert_eq!(digest, truth[&(*analysis, program.clone())]);
            if served == Served::Hit {
                warm_served += 1;
            }
        }
        // The journaled session warm-starts an edit of its last program —
        // an answer no cache key could have served.
        let edited = cpsdfa_syntax::build::let_(
            "e23fresh",
            cpsdfa_syntax::build::num(3),
            families::dispatch(*ns.last().unwrap()),
        )
        .to_string();
        let line = format!(
            "{{\"id\": 901, \"session\": 9, \"analysis\": \"cfa.cps\", \"program\": \"{}\"}}",
            cpsdfa_service::json::escape(&edited)
        );
        let out = service.run_batch(&[&line]);
        let (served, _) = ok_of(&out[0].response.status);
        assert_eq!(served, Served::Warm, "journaled session warm-starts");
        warm_hit_rate = warm_served as f64 / reqs.len() as f64;
        assert!(
            warm_hit_rate > 0.0,
            "post-restart warm hit-rate must be nonzero"
        );
        let stats = service.cache_stats();
        assert_eq!(
            stats.certify_fail, 0,
            "nothing to refute after a clean restart"
        );
        assert!(stats.certify_ok > 0, "served answers were certified");
    }
    println!(
        "restart recovery: {recovered} entries re-admitted, post-restart \
         warm hit-rate {:.0}%",
        warm_hit_rate * 100.0
    );
    sink.gauge("e23.restart.recovered", recovered);
    sink.gauge(
        "e23.restart.warm_hit_rate_x100",
        (warm_hit_rate * 100.0) as u64,
    );

    // -- Phase C: the fault loop --------------------------------------------
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut faults_injected = 0u64;
    let mut faults_detected = 0u64;
    let chaos_reqs: &[(&'static str, String)] = &reqs[..reqs.len().min(6)];
    for fault in PersistFault::ALL {
        let dir = scratch.join(fault.as_str());
        {
            let mut cfg = config_for(&dir);
            cfg.persist_faults = Some(Arc::new(PersistFaultPlan::new(fault, 2)));
            let service = AnalysisService::new(cfg);
            for (i, (analysis, program)) in chaos_reqs.iter().enumerate() {
                let line = line_for(i as u64, analysis, program);
                let out = service.run_batch(&[&line]);
                let (_, digest) = ok_of(&out[0].response.status);
                assert_eq!(
                    digest,
                    truth[&(*analysis, program.clone())],
                    "{fault:?}: a spill fault must never change the served answer"
                );
            }
            assert!(
                service
                    .config()
                    .persist_faults
                    .as_ref()
                    .unwrap()
                    .has_fired(),
                "{fault:?}: the plan must fire"
            );
            faults_injected += 1;
        }
        // Restart: detection. Kill-before-rename loses the entry without
        // corrupting anything (detected as a swept interruption); the
        // other three leave damage recovery must classify and delete.
        let service = AnalysisService::new(config_for(&dir));
        let rec = *service.recovery().expect("persist dir recovers");
        let detected = match fault {
            PersistFault::KillBeforeRename => rec.interrupted,
            PersistFault::TruncateTail | PersistFault::BitFlip => rec.corrupt,
            PersistFault::StaleKey => rec.stale,
        };
        assert_eq!(
            detected, 1,
            "{fault:?}: detected in its own column: {rec:?}"
        );
        faults_detected += detected;
        // Healing: every program still answers with the ground-truth
        // digest, certified (certify_sample = 1).
        for (i, (analysis, program)) in chaos_reqs.iter().enumerate() {
            let line = line_for(2000 + i as u64, analysis, program);
            let out = service.run_batch(&[&line]);
            let (_, digest) = ok_of(&out[0].response.status);
            assert_eq!(digest, truth[&(*analysis, program.clone())], "{fault:?}");
        }
        assert_eq!(
            service.cache_stats().certify_fail,
            0,
            "{fault:?}: recovery left nothing refutable in the cache"
        );
        // A second restart proves the damage was deleted, not skipped.
        let clean = AnalysisService::new(config_for(&dir));
        let rec2 = *clean.recovery().expect("persist dir recovers");
        assert_eq!(
            rec2.corrupt + rec2.stale + rec2.interrupted,
            0,
            "{fault:?}: healed directory recovers clean: {rec2:?}"
        );
        sink.counter(&format!("e23.fault.{}.detected", fault.as_str()), detected);
        rows.push(vec![
            fault.as_str().to_owned(),
            format!("{detected}"),
            format!("{}", rec.recovered),
            "0".to_owned(),
            "yes".to_owned(),
        ]);
    }
    println!(
        "\n{}",
        render_table(
            &["fault", "detected", "recovered", "mis-served", "healed"],
            &rows
        )
    );
    assert_eq!(
        faults_detected, faults_injected,
        "every injected persistence fault must be detected"
    );
    println!(
        "{faults_injected}/{faults_injected} injected faults detected and healed, \
         0 wrong answers served"
    );
    sink.gauge("e23.faults.injected", faults_injected);
    sink.gauge("e23.faults.detected", faults_detected);

    let _ = std::fs::remove_dir_all(&scratch);

    // -- Artifact ------------------------------------------------------------
    bench_service_merge(&[(
        "e23",
        format!(
            "{{\"faults_injected\": {faults_injected}, \"faults_detected\": {faults_detected}, \
             \"mis_served\": 0, \"restart_recovered\": {recovered}, \
             \"warm_hit_rate\": {warm_hit_rate:.2}, \"programs\": {}, \
             \"test_mode\": {test_mode}}}",
            reqs.len()
        ),
    )]);
}
