//! Shared helpers for the cpsdfa benches and the experiment harness.
//!
//! The benches (one per cost claim of §6.2, see `DESIGN.md`'s experiment
//! index) live under `benches/`; the table-producing harness is the
//! `experiments` binary.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::domain::NumDomain;
use cpsdfa_core::{AnalysisBudget, AnalysisError, DirectAnalyzer, SemCpsAnalyzer, SynCpsAnalyzer};
use cpsdfa_cps::CpsProgram;

/// Which of the paper's three analyzers to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analyzer {
    /// `M_e`, Figure 4.
    Direct,
    /// `M_e` with §6.3 bounded duplication at depth `d`.
    DirectDup(u32),
    /// `C_e`, Figure 5.
    SemCps,
    /// `M_s`, Figure 6 (runs on the CPS transform of the program).
    SynCps,
}

impl Analyzer {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Analyzer::Direct => "direct".to_owned(),
            Analyzer::DirectDup(d) => format!("direct+dup{d}"),
            Analyzer::SemCps => "semantic-cps".to_owned(),
            Analyzer::SynCps => "syntactic-cps".to_owned(),
        }
    }
}

/// One measured run: goals expanded (machine-independent cost) or a budget
/// failure.
pub fn run_goals<D: NumDomain>(
    analyzer: Analyzer,
    prog: &AnfProgram,
    budget: AnalysisBudget,
) -> Result<u64, AnalysisError> {
    match analyzer {
        Analyzer::Direct => Ok(DirectAnalyzer::<D>::new(prog)
            .with_budget(budget)
            .analyze()?
            .stats
            .goals),
        Analyzer::DirectDup(d) => Ok(DirectAnalyzer::<D>::new(prog)
            .with_budget(budget)
            .with_duplication_depth(d)
            .analyze()?
            .stats
            .goals),
        Analyzer::SemCps => Ok(SemCpsAnalyzer::<D>::new(prog)
            .with_budget(budget)
            .analyze()?
            .stats
            .goals),
        Analyzer::SynCps => {
            let cps = CpsProgram::from_anf(prog);
            Ok(SynCpsAnalyzer::<D>::new(&cps)
                .with_budget(budget)
                .analyze()?
                .stats
                .goals)
        }
    }
}

/// Runs the analyzer purely for wall-time measurement, returning a value
/// that depends on the result so the optimizer cannot elide the work.
pub fn run_blackbox<D: NumDomain>(analyzer: Analyzer, prog: &AnfProgram) -> u64 {
    run_goals::<D>(analyzer, prog, AnalysisBudget::default()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_core::domain::Flat;
    use cpsdfa_workloads::families;

    #[test]
    fn helpers_run_every_analyzer() {
        let prog = AnfProgram::from_term(&families::cond_chain(3));
        for a in [
            Analyzer::Direct,
            Analyzer::DirectDup(1),
            Analyzer::SemCps,
            Analyzer::SynCps,
        ] {
            let goals = run_goals::<Flat>(a, &prog, AnalysisBudget::default()).unwrap();
            assert!(goals > 0, "{}", a.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            Analyzer::Direct,
            Analyzer::DirectDup(1),
            Analyzer::DirectDup(2),
            Analyzer::SemCps,
            Analyzer::SynCps,
        ]
        .iter()
        .map(Analyzer::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
