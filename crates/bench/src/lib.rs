//! Shared helpers for the cpsdfa benches and the experiment harness.
//!
//! The benches (one per cost claim of §6.2, see `DESIGN.md`'s experiment
//! index) live under `benches/`; the table-producing harness is the
//! `experiments` binary.

use cpsdfa_anf::{label_anf, normalize, normalize_arena, AnfProgram};
use cpsdfa_core::domain::NumDomain;
use cpsdfa_core::{AnalysisBudget, AnalysisError, DirectAnalyzer, SemCpsAnalyzer, SynCpsAnalyzer};
use cpsdfa_cps::{cps_transform, cps_transform_arena, CpsProgram};
use cpsdfa_syntax::arena::TermArena;
use cpsdfa_syntax::parse::parse_term;
use cpsdfa_syntax::FreshGen;

/// Which of the paper's three analyzers to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analyzer {
    /// `M_e`, Figure 4.
    Direct,
    /// `M_e` with §6.3 bounded duplication at depth `d`.
    DirectDup(u32),
    /// `C_e`, Figure 5.
    SemCps,
    /// `M_s`, Figure 6 (runs on the CPS transform of the program).
    SynCps,
}

impl Analyzer {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Analyzer::Direct => "direct".to_owned(),
            Analyzer::DirectDup(d) => format!("direct+dup{d}"),
            Analyzer::SemCps => "semantic-cps".to_owned(),
            Analyzer::SynCps => "syntactic-cps".to_owned(),
        }
    }
}

/// One measured run: goals expanded (machine-independent cost) or a budget
/// failure.
pub fn run_goals<D: NumDomain>(
    analyzer: Analyzer,
    prog: &AnfProgram,
    budget: AnalysisBudget,
) -> Result<u64, AnalysisError> {
    match analyzer {
        Analyzer::Direct => Ok(DirectAnalyzer::<D>::new(prog)
            .with_budget(budget)
            .analyze()?
            .stats
            .goals),
        Analyzer::DirectDup(d) => Ok(DirectAnalyzer::<D>::new(prog)
            .with_budget(budget)
            .with_duplication_depth(d)
            .analyze()?
            .stats
            .goals),
        Analyzer::SemCps => Ok(SemCpsAnalyzer::<D>::new(prog)
            .with_budget(budget)
            .analyze()?
            .stats
            .goals),
        Analyzer::SynCps => {
            let cps = CpsProgram::from_anf(prog);
            Ok(SynCpsAnalyzer::<D>::new(&cps)
                .with_budget(budget)
                .analyze()?
                .stats
                .goals)
        }
    }
}

/// Runs the analyzer purely for wall-time measurement, returning a value
/// that depends on the result so the optimizer cannot elide the work.
pub fn run_blackbox<D: NumDomain>(analyzer: Analyzer, prog: &AnfProgram) -> u64 {
    run_goals::<D>(analyzer, prog, AnalysisBudget::default()).unwrap_or(u64::MAX)
}

/// What one front-end pipeline run produced. The label counts are the
/// "nodes processed" measure for throughput (every ANF and CPS node gets
/// exactly one label); `arena_bytes` is the interned pipeline's peak arena
/// footprint (0 for the boxed pipeline, whose allocations are scattered
/// `Box`es with no single measurable pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOut {
    /// Labels assigned by the A-normalizer.
    pub anf_labels: u32,
    /// Labels assigned by the CPS transform.
    pub cps_labels: u32,
    /// Bytes held by the Λ/ANF/CPS arenas after the run.
    pub arena_bytes: usize,
}

impl PipelineOut {
    /// Total labeled nodes produced — the unit of pipeline throughput.
    pub fn nodes(&self) -> u64 {
        u64::from(self.anf_labels) + u64::from(self.cps_labels)
    }
}

/// The legacy boxed front end: parse → boxed A-normalize → label → boxed
/// CPS transform. Assumes the source has unique binders (all workload
/// families do), matching what `AnfProgram::from_term` skips freshening on.
pub fn pipeline_boxed(src: &str) -> PipelineOut {
    let t = parse_term(src).expect("pipeline source parses");
    let mut gen = FreshGen::new();
    let mut root = normalize(&t, &mut gen);
    let anf_labels = label_anf(&mut root);
    let tx = cps_transform(&root, &mut gen);
    PipelineOut {
        anf_labels,
        cps_labels: tx.label_count,
        arena_bytes: 0,
    }
}

/// The interned front end: parse into the hash-consed Λ arena → arena
/// A-normalize → label → arena CPS transform. Produces byte-identical
/// printed output and identical label assignments to [`pipeline_boxed`]
/// (asserted by the differential corpus tests), allocating flat arena nodes
/// instead of boxed trees.
pub fn pipeline_interned(src: &str) -> PipelineOut {
    let mut ta = TermArena::new();
    let tid = ta.parse(src).expect("pipeline source parses");
    let mut gen = FreshGen::new();
    let (mut anf, root) = normalize_arena(&ta, tid, &mut gen);
    let anf_labels = anf.assign_labels(root);
    let tx = cps_transform_arena(&anf, root, &mut gen);
    PipelineOut {
        anf_labels,
        cps_labels: tx.label_count,
        arena_bytes: ta.arena_bytes() + anf.arena_bytes() + tx.arena.arena_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_core::domain::Flat;
    use cpsdfa_workloads::families;

    #[test]
    fn helpers_run_every_analyzer() {
        let prog = AnfProgram::from_term(&families::cond_chain(3));
        for a in [
            Analyzer::Direct,
            Analyzer::DirectDup(1),
            Analyzer::SemCps,
            Analyzer::SynCps,
        ] {
            let goals = run_goals::<Flat>(a, &prog, AnalysisBudget::default()).unwrap();
            assert!(goals > 0, "{}", a.label());
        }
    }

    #[test]
    fn pipelines_agree_on_label_counts() {
        for n in [4, 16] {
            let src = families::dispatch(n).to_string();
            let boxed = pipeline_boxed(&src);
            let interned = pipeline_interned(&src);
            assert_eq!(boxed.anf_labels, interned.anf_labels, "n = {n}");
            assert_eq!(boxed.cps_labels, interned.cps_labels, "n = {n}");
            assert!(interned.nodes() > 0);
            assert!(interned.arena_bytes > 0);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            Analyzer::Direct,
            Analyzer::DirectDup(1),
            Analyzer::DirectDup(2),
            Analyzer::SemCps,
            Analyzer::SynCps,
        ]
        .iter()
        .map(Analyzer::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
