//! E10 (§6.3): the cost dial of bounded duplication — direct analysis with
//! duplication depth d between Figure 4 (d = 0) and full CPS duplication.

use cpsdfa_anf::AnfProgram;
use cpsdfa_bench::{run_blackbox, Analyzer};
use cpsdfa_core::domain::Flat;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_polyvariant(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyvariant");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    let prog = AnfProgram::from_term(&families::cond_chain(10));
    for analyzer in [
        Analyzer::Direct,
        Analyzer::DirectDup(1),
        Analyzer::DirectDup(2),
        Analyzer::DirectDup(4),
        Analyzer::SemCps,
    ] {
        group.bench_with_input(BenchmarkId::new(analyzer.label(), 10), &prog, |b, prog| {
            b.iter(|| black_box(run_blackbox::<Flat>(analyzer, prog)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polyvariant);
criterion_main!(benches);
