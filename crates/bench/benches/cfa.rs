//! E12/E14: cost of the control-flow analysis formulations — monovariant
//! constraint 0CFA, continuation-polyvariant CFA, and the Figure 6 abstract
//! interpreter — on the false-return family and on conditional chains.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cfa::{zero_cfa, zero_cfa_cps};
use cpsdfa_core::domain::AnyNum;
use cpsdfa_core::kcfa::cont_sensitive_cfa;
use cpsdfa_core::SynCpsAnalyzer;
use cpsdfa_cps::CpsProgram;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cfa(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfa");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for m in [4usize, 8, 16] {
        let prog = AnfProgram::from_term(&families::repeated_calls(m));
        let cps = CpsProgram::from_anf(&prog);
        group.bench_with_input(BenchmarkId::new("zero-cfa-src", m), &prog, |b, p| {
            b.iter(|| black_box(zero_cfa(p).unwrap().iterations))
        });
        group.bench_with_input(BenchmarkId::new("zero-cfa-cps", m), &cps, |b, p| {
            b.iter(|| black_box(zero_cfa_cps(p).unwrap().iterations))
        });
        group.bench_with_input(BenchmarkId::new("cont-polyvariant", m), &cps, |b, p| {
            b.iter(|| black_box(cont_sensitive_cfa(p).states))
        });
        group.bench_with_input(BenchmarkId::new("figure-6-anynum", m), &cps, |b, p| {
            b.iter(|| {
                black_box(
                    SynCpsAnalyzer::<AnyNum>::new(p)
                        .analyze()
                        .map(|r| r.stats.goals)
                        .unwrap_or(u64::MAX),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cfa);
criterion_main!(benches);
