//! E7 (§6.2): wall-time at multi-target call sites — `dispatch(k)` applies
//! one of `k` closures; CPS-style analyzers re-analyze the continuation per
//! callee.

use cpsdfa_anf::AnfProgram;
use cpsdfa_bench::{run_blackbox, Analyzer};
use cpsdfa_core::domain::Flat;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for k in [1usize, 2, 4, 8] {
        let prog = AnfProgram::from_term(&families::dispatch(k));
        for analyzer in [Analyzer::Direct, Analyzer::SemCps, Analyzer::SynCps] {
            group.bench_with_input(BenchmarkId::new(analyzer.label(), k), &prog, |b, prog| {
                b.iter(|| black_box(run_blackbox::<Flat>(analyzer, prog)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
