//! E6 (§6.2): wall-time of the three analyzers on `cond_chain(n)` — the
//! exponential duplication cliff. Goal counts for the same sweep come from
//! the `experiments` binary; this bench confirms the shape in wall time.

use cpsdfa_anf::AnfProgram;
use cpsdfa_bench::{run_blackbox, Analyzer};
use cpsdfa_core::domain::Flat;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cond_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("cond_chain");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for n in [2usize, 4, 6, 8, 10] {
        let prog = AnfProgram::from_term(&families::cond_chain(n));
        for analyzer in [Analyzer::Direct, Analyzer::SemCps, Analyzer::SynCps] {
            group.bench_with_input(BenchmarkId::new(analyzer.label(), n), &prog, |b, prog| {
                b.iter(|| black_box(run_blackbox::<Flat>(analyzer, prog)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cond_chain);
criterion_main!(benches);
