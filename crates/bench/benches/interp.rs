//! B1: throughput of the three concrete interpreters (Figures 1–3) on
//! higher-order workloads — a sanity baseline showing the interpreters
//! themselves are comparable, so analysis-cost differences (E6/E7) are not
//! interpreter artifacts.

use cpsdfa_anf::AnfProgram;
use cpsdfa_cps::CpsProgram;
use cpsdfa_interp::{run_direct, run_semcps, run_syncps, Fuel};
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for n in [50usize, 200, 800] {
        let prog = AnfProgram::from_term(&families::church(n));
        let cps = CpsProgram::from_anf(&prog);
        group.bench_with_input(BenchmarkId::new("direct", n), &prog, |b, p| {
            b.iter(|| black_box(run_direct(p, &[], Fuel::new(10_000_000)).unwrap().steps))
        });
        group.bench_with_input(BenchmarkId::new("semantic-cps", n), &prog, |b, p| {
            b.iter(|| black_box(run_semcps(p, &[], Fuel::new(10_000_000)).unwrap().steps))
        });
        group.bench_with_input(BenchmarkId::new("syntactic-cps", n), &cps, |b, p| {
            b.iter(|| black_box(run_syncps(p, &[], Fuel::new(10_000_000)).unwrap().steps))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
