//! E17 companion bench: front-end pipeline throughput (parse → A-normalize
//! → label → CPS transform), legacy boxed trees vs the interned arena
//! representation, on the families ladder at three sizes each.
//!
//! Throughput is in labeled nodes per second (every ANF and CPS node gets
//! exactly one label, so `anf_labels + cps_labels` counts the nodes both
//! pipelines materialize). With `--trace <path>` the bench additionally
//! performs one run per cell and appends the interned pipeline's gauges
//! (`pipeline.arena_bytes`, `pipeline.interned_syms`) plus wall times to
//! `<path>` as JSONL trace events, mirroring the solver bench's artifact.

use cpsdfa_bench::{pipeline_boxed, pipeline_interned};
use cpsdfa_core::trace::{JsonlSink, TraceSink};
use cpsdfa_syntax::intern::Symbol;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

type Family = (&'static str, fn(usize) -> cpsdfa_syntax::Term);

const LADDER: [Family; 3] = [
    ("cond-chain", families::cond_chain),
    ("dispatch", families::dispatch),
    ("polyvariant", families::repeated_calls),
];
const SIZES: [usize; 3] = [32, 128, 512];

fn bench_pipeline(c: &mut Criterion) {
    let trace_path = c.trace_path().map(str::to_owned);

    let mut group = c.benchmark_group("pipeline");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));

    for (family, build) in LADDER {
        for size in SIZES {
            let src = build(size).to_string();
            let nodes = pipeline_interned(&src).nodes();
            let id = format!("{family}-{size}");
            group.throughput(Throughput::Elements(nodes));
            group.bench_with_input(BenchmarkId::new("boxed", &id), &src, |b, s| {
                b.iter(|| black_box(pipeline_boxed(s).nodes()))
            });
            group.bench_with_input(BenchmarkId::new("interned", &id), &src, |b, s| {
                b.iter(|| black_box(pipeline_interned(s).nodes()))
            });
        }
    }
    group.finish();

    if let Some(path) = trace_path {
        write_trace(&path);
        println!("pipeline: wrote JSONL trace events to {path}");
    }
}

/// One instrumented run per cell, appending the interned pipeline's arena
/// gauges and a single-run wall time — the same `pipeline.*` event names
/// the experiments harness records into `BENCH_pipeline.json`.
fn write_trace(path: &str) {
    let mut sink = JsonlSink::create(path).expect("create --trace output file");
    for (family, build) in LADDER {
        for size in SIZES {
            let src = build(size).to_string();
            let id = format!("{family}-{size}");
            let t0 = Instant::now();
            let out = pipeline_interned(&src);
            sink.time_ns(
                &format!("pipeline.interned.{id}.wall"),
                t0.elapsed().as_nanos() as u64,
            );
            sink.gauge(&format!("pipeline.interned.{id}.nodes"), out.nodes());
            sink.gauge(
                &format!("pipeline.interned.{id}.arena_bytes"),
                out.arena_bytes as u64,
            );
        }
    }
    sink.gauge("pipeline.interned_syms", Symbol::interned_count());
    sink.flush().expect("flush --trace output file");
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
