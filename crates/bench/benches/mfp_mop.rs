//! E9 (§6.2): cost of the classical solutions — the MFP worklist is
//! polynomial while MOP path enumeration is exponential in the number of
//! diamonds, mirroring direct-vs-CPS analysis cost.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::domain::Flat;
use cpsdfa_core::mfp::{Cfg, PathMode};
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_mfp_mop(c: &mut Criterion) {
    let mut group = c.benchmark_group("mfp_mop");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for n in [2usize, 4, 6, 8, 10] {
        let prog = AnfProgram::from_term(&families::diamond_chain(n));
        let cfg = Cfg::from_first_order(&prog).unwrap();
        group.bench_with_input(BenchmarkId::new("mfp", n), &cfg, |b, g| {
            b.iter(|| {
                let init = g.initial_env::<Flat>(&prog);
                black_box(g.solve_mfp::<Flat>(init).unwrap().vars.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("mop-all-paths", n), &cfg, |b, g| {
            b.iter(|| {
                let init = g.initial_env::<Flat>(&prog);
                black_box(
                    g.solve_mop::<Flat>(init, 10_000_000, PathMode::AllPaths)
                        .unwrap()
                        .1,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mfp_mop);
criterion_main!(benches);
