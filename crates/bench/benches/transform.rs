//! B2: throughput of A-normalization and the CPS transformation as program
//! size grows (the compiler-pipeline cost of choosing CPS as an IR).

use cpsdfa_anf::{normalize, AnfProgram};
use cpsdfa_cps::cps_transform;
use cpsdfa_syntax::FreshGen;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    for n in [50usize, 200, 800] {
        let term = families::adder_pipeline(n);
        group.throughput(Throughput::Elements(term.size() as u64));
        group.bench_with_input(BenchmarkId::new("a-normalize", n), &term, |b, t| {
            b.iter(|| {
                let mut gen = FreshGen::new();
                black_box(normalize(t, &mut gen).size())
            })
        });
        let prog = AnfProgram::from_term(&term);
        group.bench_with_input(BenchmarkId::new("cps-transform", n), &prog, |b, p| {
            b.iter(|| {
                let mut gen = p.fresh_gen();
                black_box(cps_transform(p.root(), &mut gen).root.size())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
