//! Tentpole measurement: the sparse worklist engine (hash-consed set pool,
//! dependency-driven firing) against the original dense formulations of
//! the same three fixpoints — source 0CFA, CPS 0CFA, and MFP — on the
//! families ladder at three sizes each.
//!
//! With `--trace <path>` the bench additionally performs one instrumented
//! run per sparse cell and appends its solver counters plus wall time to
//! `<path>` as JSONL trace events (`solver.<bench>.<family>-<size>.*`), so
//! CI smoke runs leave a machine-readable artifact behind.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cfa::{
    zero_cfa, zero_cfa_cps, zero_cfa_cps_dense, zero_cfa_cps_instrumented, zero_cfa_dense,
    zero_cfa_instrumented,
};
use cpsdfa_core::domain::Flat;
use cpsdfa_core::mfp::Cfg;
use cpsdfa_core::trace::{JsonlSink, TraceSink};
use cpsdfa_cps::CpsProgram;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

type Family = (&'static str, fn(usize) -> cpsdfa_syntax::Term);

const LADDER: [Family; 3] = [
    ("cond-chain", families::cond_chain),
    ("dispatch", families::dispatch),
    ("polyvariant", families::repeated_calls),
];
const SIZES: [usize; 3] = [8, 32, 128];

fn bench_solver(c: &mut Criterion) {
    let trace_path = c.trace_path().map(str::to_owned);

    let mut group = c.benchmark_group("solver");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));

    for (family, build) in LADDER {
        for size in SIZES {
            let prog = AnfProgram::from_term(&build(size));
            let cps = CpsProgram::from_anf(&prog);
            let id = format!("{family}-{size}");
            group.bench_with_input(BenchmarkId::new("0cfa-sparse", &id), &prog, |b, p| {
                b.iter(|| black_box(zero_cfa(p).unwrap().iterations))
            });
            group.bench_with_input(BenchmarkId::new("0cfa-dense", &id), &prog, |b, p| {
                b.iter(|| black_box(zero_cfa_dense(p).iterations))
            });
            group.bench_with_input(BenchmarkId::new("0cfa-cps-sparse", &id), &cps, |b, p| {
                b.iter(|| black_box(zero_cfa_cps(p).unwrap().iterations))
            });
            group.bench_with_input(BenchmarkId::new("0cfa-cps-dense", &id), &cps, |b, p| {
                b.iter(|| black_box(zero_cfa_cps_dense(p).iterations))
            });
        }
    }

    // MFP needs the first-order fragment: the diamond chain is the ladder's
    // first-order member.
    for size in SIZES {
        let prog = AnfProgram::from_term(&families::diamond_chain(size));
        let cfg = Cfg::from_first_order(&prog).unwrap();
        let init = cfg.initial_env::<Flat>(&prog);
        let id = format!("diamond-{size}");
        group.bench_with_input(BenchmarkId::new("mfp-sparse", &id), &cfg, |b, g| {
            b.iter(|| black_box(g.solve_mfp::<Flat>(init.clone()).unwrap().vars.len()))
        });
        group.bench_with_input(BenchmarkId::new("mfp-dense", &id), &cfg, |b, g| {
            b.iter(|| black_box(g.solve_mfp_dense::<Flat>(init.clone()).vars.len()))
        });
    }
    group.finish();

    if let Some(path) = trace_path {
        write_trace(&path);
        println!("solver: wrote JSONL trace events to {path}");
    }
}

/// One instrumented pass over the same cells the bench timed, appending
/// solver counters and a single-run wall time per sparse cell.
fn write_trace(path: &str) {
    let mut sink = JsonlSink::create(path).expect("create --trace output file");
    for (family, build) in LADDER {
        for size in SIZES {
            let prog = AnfProgram::from_term(&build(size));
            let cps = CpsProgram::from_anf(&prog);
            let id = format!("{family}-{size}");

            let t0 = Instant::now();
            let (_, stats) = zero_cfa_instrumented(&prog).unwrap();
            sink.time_ns(
                &format!("solver.0cfa-sparse.{id}.wall"),
                t0.elapsed().as_nanos() as u64,
            );
            stats.emit_into(&mut sink, &format!("solver.0cfa-sparse.{id}"));

            let t0 = Instant::now();
            let (_, stats) = zero_cfa_cps_instrumented(&cps).unwrap();
            sink.time_ns(
                &format!("solver.0cfa-cps-sparse.{id}.wall"),
                t0.elapsed().as_nanos() as u64,
            );
            stats.emit_into(&mut sink, &format!("solver.0cfa-cps-sparse.{id}"));
        }
    }
    for size in SIZES {
        let prog = AnfProgram::from_term(&families::diamond_chain(size));
        let cfg = Cfg::from_first_order(&prog).unwrap();
        let init = cfg.initial_env::<Flat>(&prog);
        let id = format!("diamond-{size}");
        let t0 = Instant::now();
        let (_, stats) = cfg.solve_mfp_instrumented::<Flat>(init).unwrap();
        sink.time_ns(
            &format!("solver.mfp-sparse.{id}.wall"),
            t0.elapsed().as_nanos() as u64,
        );
        stats.emit_into(&mut sink, &format!("solver.mfp-sparse.{id}"));
    }
    sink.flush().expect("flush --trace output file");
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
