//! Tentpole measurement: the sparse worklist engine (hash-consed set pool,
//! dependency-driven firing) against the original dense formulations of
//! the same three fixpoints — source 0CFA, CPS 0CFA, and MFP — on the
//! families ladder at three sizes each.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cfa::{zero_cfa, zero_cfa_cps, zero_cfa_cps_dense, zero_cfa_dense};
use cpsdfa_core::domain::Flat;
use cpsdfa_core::mfp::Cfg;
use cpsdfa_cps::CpsProgram;
use cpsdfa_workloads::families;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

type Family = (&'static str, fn(usize) -> cpsdfa_syntax::Term);

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));

    let ladder: [Family; 3] = [
        ("cond-chain", families::cond_chain),
        ("dispatch", families::dispatch),
        ("polyvariant", families::repeated_calls),
    ];
    for (family, build) in ladder {
        for size in [8usize, 32, 128] {
            let prog = AnfProgram::from_term(&build(size));
            let cps = CpsProgram::from_anf(&prog);
            let id = format!("{family}-{size}");
            group.bench_with_input(BenchmarkId::new("0cfa-sparse", &id), &prog, |b, p| {
                b.iter(|| black_box(zero_cfa(p).iterations))
            });
            group.bench_with_input(BenchmarkId::new("0cfa-dense", &id), &prog, |b, p| {
                b.iter(|| black_box(zero_cfa_dense(p).iterations))
            });
            group.bench_with_input(BenchmarkId::new("0cfa-cps-sparse", &id), &cps, |b, p| {
                b.iter(|| black_box(zero_cfa_cps(p).iterations))
            });
            group.bench_with_input(BenchmarkId::new("0cfa-cps-dense", &id), &cps, |b, p| {
                b.iter(|| black_box(zero_cfa_cps_dense(p).iterations))
            });
        }
    }

    // MFP needs the first-order fragment: the diamond chain is the ladder's
    // first-order member.
    for size in [8usize, 32, 128] {
        let prog = AnfProgram::from_term(&families::diamond_chain(size));
        let cfg = Cfg::from_first_order(&prog).unwrap();
        let init = cfg.initial_env::<Flat>(&prog);
        let id = format!("diamond-{size}");
        group.bench_with_input(BenchmarkId::new("mfp-sparse", &id), &cfg, |b, g| {
            b.iter(|| black_box(g.solve_mfp::<Flat>(init.clone()).vars.len()))
        });
        group.bench_with_input(BenchmarkId::new("mfp-dense", &id), &cfg, |b, g| {
            b.iter(|| black_box(g.solve_mfp_dense::<Flat>(init.clone()).vars.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
