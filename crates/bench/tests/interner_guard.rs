//! Guard against string traffic sneaking back into the hot loops: after a
//! warm-up run has interned a workload's names, re-running the full
//! interned pipeline must intern **zero** new symbols. The A-normalizer and
//! CPS transform draw fresh names deterministically (`t%0`, `k%1`, …), so a
//! repeat run re-derives exactly the names the warm-up already interned; any
//! new symbol means a hot path started allocating per-run strings again.
//!
//! Lives in its own integration-test binary: the interner is process-global,
//! and sibling test threads interning unrelated names would make the
//! zero-delta assertion flaky.

use cpsdfa_bench::pipeline_interned;
use cpsdfa_syntax::intern::Symbol;
use cpsdfa_workloads::families;

#[test]
fn warm_pipeline_interns_no_new_symbols() {
    for (family, build) in [
        ("cond-chain", families::cond_chain as fn(usize) -> _),
        ("dispatch", families::dispatch),
        ("polyvariant", families::repeated_calls),
    ] {
        let src = build(32).to_string();
        // Warm-up: interns every program variable and fresh name once.
        pipeline_interned(&src);
        let before = Symbol::interned_count();
        let out = pipeline_interned(&src);
        assert!(out.nodes() > 0);
        assert_eq!(
            Symbol::interned_count(),
            before,
            "{family}: warm pipeline re-run interned new symbols"
        );
    }
}
