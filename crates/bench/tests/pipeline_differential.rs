//! Differential proof obligation for the interned front end: on an
//! 800-program random corpus, the arena pipeline (direct-to-arena parse →
//! defunctionalized A-normalizer → arena CPS transform) must be
//! **byte-identical** — printed forms, label counts, label maps — to the
//! legacy boxed pipeline it replaced, which is kept as a test-only oracle
//! (`from_term_via_boxed` / `from_anf_via_boxed`, mirroring the `*_dense`
//! solver oracles).

use cpsdfa_anf::AnfProgram;
use cpsdfa_cps::CpsProgram;
use cpsdfa_syntax::arena::TermArena;
use cpsdfa_syntax::parse::parse_term;
use cpsdfa_syntax::Term;
use cpsdfa_workloads::random::{corpus, open_config, GenConfig};

/// 800 programs: half from the closed default configuration, half from the
/// open (free-variable) one, drawn from disjoint seed ranges.
fn differential_corpus() -> Vec<Term> {
    let mut terms = corpus(0, 400, &GenConfig::default());
    terms.extend(corpus(1000, 400, &open_config()));
    assert_eq!(terms.len(), 800);
    terms
}

#[test]
fn interned_parser_is_bit_identical_to_boxed_on_corpus() {
    for (i, t) in differential_corpus().iter().enumerate() {
        let src = t.to_string();
        let boxed = parse_term(&src).unwrap_or_else(|e| panic!("program {i}: {e}"));
        let mut ta = TermArena::new();
        let tid = ta
            .parse(&src)
            .unwrap_or_else(|e| panic!("program {i}: {e}"));
        assert_eq!(
            ta.to_term(tid).to_string(),
            boxed.to_string(),
            "parsers disagree on program {i}: {src}"
        );
    }
}

#[test]
fn interned_anf_pipeline_is_bit_identical_to_boxed_on_corpus() {
    for (i, t) in differential_corpus().iter().enumerate() {
        let interned = AnfProgram::from_term(t);
        let oracle = AnfProgram::from_term_via_boxed(t);
        assert_eq!(
            interned.root().to_string(),
            oracle.root().to_string(),
            "ANF printed forms disagree on program {i}: {t}"
        );
        assert_eq!(interned.label_count(), oracle.label_count(), "program {i}");
        assert_eq!(
            interned.lambda_labels(),
            oracle.lambda_labels(),
            "program {i}"
        );
    }
}

#[test]
fn interned_cps_pipeline_is_bit_identical_to_boxed_on_corpus() {
    for (i, t) in differential_corpus().iter().enumerate() {
        let prog = AnfProgram::from_term(t);
        let interned = CpsProgram::from_anf(&prog);
        let oracle = CpsProgram::from_anf_via_boxed(&prog);
        assert_eq!(
            interned.root().to_string(),
            oracle.root().to_string(),
            "CPS printed forms disagree on program {i}: {t}"
        );
        assert_eq!(interned.label_count(), oracle.label_count(), "program {i}");
        assert_eq!(
            interned.label_map().lam,
            oracle.label_map().lam,
            "program {i}"
        );
        assert_eq!(
            interned.label_map().cont_of_let,
            oracle.label_map().cont_of_let,
            "program {i}"
        );
    }
}
