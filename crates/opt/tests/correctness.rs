//! Differential correctness of the optimizer: for every fact source, the
//! optimized program evaluates exactly like the original, on random corpora
//! and across inputs. Optimization must also be monotone in fact precision:
//! better facts can only enable more rewrites.

use cpsdfa_anf::AnfProgram;
use cpsdfa_interp::{run_direct, Fuel};
use cpsdfa_opt::{optimize, FactSource};
use cpsdfa_syntax::Ident;
use cpsdfa_workloads::random::{corpus, open_config, GenConfig};

const SOURCES: [FactSource; 4] = [
    FactSource::Direct,
    FactSource::DirectDup(1),
    FactSource::DirectDup(2),
    FactSource::SemCps,
];

fn outcomes(p: &AnfProgram, z: i64) -> (Option<Option<i64>>, u64) {
    match run_direct(p, &[(Ident::new("z"), z)], Fuel::new(300_000)) {
        Ok(a) => (Some(a.value.as_num()), a.steps),
        Err(_) => (None, 0),
    }
}

#[test]
fn optimization_preserves_evaluation_on_closed_corpus() {
    for (i, t) in corpus(0x09717, 150, &GenConfig::default())
        .into_iter()
        .enumerate()
    {
        let p = AnfProgram::from_term(&t);
        let (expected, _) = outcomes(&p, 0);
        for source in SOURCES {
            let (q, _) = optimize(&p, source).unwrap();
            let (got, _) = outcomes(&q, 0);
            assert_eq!(expected, got, "#{i} {source}: {t}\n→ {}", q.root());
        }
    }
}

#[test]
fn optimization_preserves_evaluation_on_open_corpus() {
    for (i, t) in corpus(0x09718, 150, &open_config()).into_iter().enumerate() {
        let p = AnfProgram::from_term(&t);
        for source in SOURCES {
            let (q, _) = optimize(&p, source).unwrap();
            for z in [-3i64, 0, 1, 7] {
                let (expected, _) = outcomes(&p, z);
                let (got, _) = outcomes(&q, z);
                assert_eq!(expected, got, "#{i} {source} z={z}: {t}\n→ {}", q.root());
            }
        }
    }
}

#[test]
fn optimization_never_slows_programs_down() {
    for t in corpus(0x09719, 100, &open_config()) {
        let p = AnfProgram::from_term(&t);
        let (res, before) = outcomes(&p, 1);
        if res.is_none() {
            continue;
        }
        let (q, _) = optimize(&p, FactSource::SemCps).unwrap();
        let (_, after) = outcomes(&q, 1);
        assert!(
            after <= before,
            "optimized program got slower: {t}\n→ {}",
            q.root()
        );
    }
}

#[test]
fn better_facts_shrink_programs_at_least_as_much() {
    // The useful monotonicity is in the *residual program*: finer facts can
    // only license more shrinking. (Rewrite *counts* are not monotone — one
    // branch elimination with good facts can subsume many separate folds.)
    for t in corpus(0x0971A, 120, &open_config()) {
        let p = AnfProgram::from_term(&t);
        let (qd, _) = optimize(&p, FactSource::Direct).unwrap();
        let (qs, _) = optimize(&p, FactSource::SemCps).unwrap();
        assert!(
            qs.root().size() <= qd.root().size(),
            "semantic-CPS facts left a bigger residue on {t}:
 direct → {}
 semcps → {}",
            qd.root(),
            qs.root()
        );
    }
}

#[test]
fn paper_examples_optimize_as_the_theorems_predict() {
    // Theorem 5.2 case 2 via the optimizer: only duplication-based facts
    // collapse the whole program to the constant 5.
    let src = "(let (f (if0 z (lambda (d0) 0) (lambda (d1) 1))) \
                 (let (a1 (f 3)) \
                   (let (a2 (if0 a1 5 (let (s (sub1 a1)) (if0 s 5 6)))) a2)))";
    let p = AnfProgram::parse(src).unwrap();
    let (d, _) = optimize(&p, FactSource::Direct).unwrap();
    let d_text = d.root().to_string();
    assert!(
        d_text.contains("(if0 a1"),
        "direct facts must not decide a2: {d_text}"
    );
    // Duplication-based facts fold a2 to 5; the call to the unknown-shaped f
    // stays (it is impure for the conservative purity test), but the
    // conditional on its result is gone.
    let (s, stats) = optimize(&p, FactSource::SemCps).unwrap();
    let s_text = s.root().to_string();
    assert!(!s_text.contains("(if0 a1"), "{s_text} ({stats})");
    assert!(s_text.ends_with(" 5))"), "{s_text}");
    assert!(stats.folds >= 1, "{stats}");
}
