//! The analysis-driven rewrites.

use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, AnfProgram, Bind};
use cpsdfa_core::absval::AbsStore;
use cpsdfa_core::domain::{Flat, NumDomain};
use cpsdfa_core::{AnalysisError, DirectAnalyzer, SemCpsAnalyzer};
use cpsdfa_syntax::free::free_vars;
use cpsdfa_syntax::Ident;
use std::fmt;

/// Which analyzer supplies the facts for the rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactSource {
    /// `M_e`, Figure 4.
    Direct,
    /// `M_e` with §6.3 bounded duplication at the given depth.
    DirectDup(u32),
    /// `C_e`, Figure 5.
    SemCps,
}

impl fmt::Display for FactSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactSource::Direct => f.write_str("direct"),
            FactSource::DirectDup(d) => write!(f, "direct+dup{d}"),
            FactSource::SemCps => f.write_str("semantic-cps"),
        }
    }
}

/// Counters for enabled optimizations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Bindings replaced by literals.
    pub folds: usize,
    /// Conditionals resolved to one arm.
    pub branches_eliminated: usize,
    /// Pure, unused bindings removed.
    pub dead_bindings: usize,
    /// Call sites with a singleton callee set (devirtualizable).
    pub devirtualized: usize,
    /// Rewrite rounds until fixpoint.
    pub rounds: usize,
}

impl OptStats {
    /// Total enabled rewrites (excluding the devirtualization census).
    pub fn total_rewrites(&self) -> usize {
        self.folds + self.branches_eliminated + self.dead_bindings
    }

    fn absorb(&mut self, other: &OptStats) {
        self.folds += other.folds;
        self.branches_eliminated += other.branches_eliminated;
        self.dead_bindings += other.dead_bindings;
        // `devirtualized` is a census of the final program, not a running
        // sum; the driver overwrites it after the last round.
    }
}

impl fmt::Display for OptStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "folds={} branches={} dead={} devirt={} rounds={}",
            self.folds,
            self.branches_eliminated,
            self.dead_bindings,
            self.devirtualized,
            self.rounds
        )
    }
}

/// Runs analyze-rewrite rounds to a fixpoint (bounded at 10 rounds) and
/// returns the optimized program plus cumulative statistics.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the fact-supplying analyzer.
///
/// ```
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_opt::{optimize, FactSource};
///
/// // Theorem 5.2 case 1: duplication-based facts fold a2 to the constant 3.
/// let p = AnfProgram::parse(
///     "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))",
/// )?;
/// let (direct, _) = optimize(&p, FactSource::Direct)?;
/// let (semcps, _) = optimize(&p, FactSource::SemCps)?;
/// assert!(direct.root().to_string().contains("if0"));   // direct facts cannot decide
/// assert_eq!(semcps.root().to_string(), "3");           // C_e facts fold everything
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(
    prog: &AnfProgram,
    source: FactSource,
) -> Result<(AnfProgram, OptStats), AnalysisError> {
    let mut current = prog.clone();
    let mut stats = OptStats::default();
    for round in 1..=10 {
        let (next, round_stats) = optimize_once(&current, source)?;
        stats.absorb(&round_stats);
        stats.rounds = round;
        let stable = next.root().to_string() == current.root().to_string();
        current = next;
        if stable {
            break;
        }
    }
    // Devirtualization census on the final program.
    stats.devirtualized = devirt_census(&current, source)?;
    Ok((current, stats))
}

/// One analyze-rewrite round.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the fact-supplying analyzer.
pub fn optimize_once(
    prog: &AnfProgram,
    source: FactSource,
) -> Result<(AnfProgram, OptStats), AnalysisError> {
    let facts = facts_of(prog, source)?;
    let mut stats = OptStats::default();
    let rewritten = rewrite_term(prog.root(), prog, &facts, &mut stats);
    let next = AnfProgram::from_root(rewritten).expect("rewrites preserve unique binders");
    Ok((next, stats))
}

fn facts_of(prog: &AnfProgram, source: FactSource) -> Result<AbsStore<Flat>, AnalysisError> {
    Ok(match source {
        FactSource::Direct => DirectAnalyzer::<Flat>::new(prog).analyze()?.store,
        FactSource::DirectDup(d) => {
            DirectAnalyzer::<Flat>::new(prog)
                .with_duplication_depth(d)
                .analyze()?
                .store
        }
        FactSource::SemCps => SemCpsAnalyzer::<Flat>::new(prog).analyze()?.store,
    })
}

fn devirt_census(prog: &AnfProgram, source: FactSource) -> Result<usize, AnalysisError> {
    let flows = match source {
        FactSource::Direct => DirectAnalyzer::<Flat>::new(prog).analyze()?.flows,
        FactSource::DirectDup(d) => {
            DirectAnalyzer::<Flat>::new(prog)
                .with_duplication_depth(d)
                .analyze()?
                .flows
        }
        FactSource::SemCps => SemCpsAnalyzer::<Flat>::new(prog).analyze()?.flows,
    };
    Ok(flows.calls.values().filter(|cs| cs.len() == 1).count())
}

/// A right-hand side is *pure* if evaluating it cannot diverge or go wrong:
/// values always; `add1`/`sub1` applied to a numeral or a variable the
/// analysis knows is a number.
fn bind_is_pure(bind: &Bind, prog: &AnfProgram, facts: &AbsStore<Flat>) -> bool {
    match bind {
        Bind::Value(_) => true,
        Bind::App(f, a) => {
            matches!(f.kind, AValKind::Add1 | AValKind::Sub1) && operand_is_number(a, prog, facts)
        }
        Bind::If0(c, t, e) => {
            operand_is_number(c, prog, facts)
                && term_is_pure(t, prog, facts)
                && term_is_pure(e, prog, facts)
        }
        Bind::Loop => false,
    }
}

fn term_is_pure(m: &Anf, prog: &AnfProgram, facts: &AbsStore<Flat>) -> bool {
    match &m.kind {
        AnfKind::Value(_) => true,
        AnfKind::Let { bind, body, .. } => {
            bind_is_pure(bind, prog, facts) && term_is_pure(body, prog, facts)
        }
    }
}

fn operand_is_number(v: &AVal, prog: &AnfProgram, facts: &AbsStore<Flat>) -> bool {
    match &v.kind {
        AValKind::Num(_) => true,
        AValKind::Var(x) => {
            let id = prog.var_id(x).expect("indexed variable");
            // ⊥ is allowed: γ(⊥) = ∅ means the use is unreachable, and an
            // unreachable primitive application is vacuously pure.
            facts.get(id).clos.is_empty()
        }
        _ => false,
    }
}

fn known_const(v: &AVal, prog: &AnfProgram, facts: &AbsStore<Flat>) -> Option<i64> {
    match &v.kind {
        AValKind::Num(n) => Some(*n),
        AValKind::Var(x) => {
            let id = prog.var_id(x).expect("indexed variable");
            let av = facts.get(id);
            if !av.clos.is_empty() {
                return None;
            }
            if av.num.is_bot() {
                // Unreachable binding: γ(⊥) = ∅, so no execution observes
                // the value — any literal is a sound replacement.
                return Some(0);
            }
            av.num.as_const()
        }
        _ => None,
    }
}

fn rewrite_term(m: &Anf, prog: &AnfProgram, facts: &AbsStore<Flat>, stats: &mut OptStats) -> Anf {
    match &m.kind {
        AnfKind::Value(v) => Anf::new(AnfKind::Value(rewrite_value(v, prog, facts, stats))),
        AnfKind::Let { var, bind, body } => {
            let body_r = rewrite_term(body, prog, facts, stats);

            // Branch elimination first (so a decidable conditional is
            // reported as such even when later rounds would also find the
            // binding dead): decidable `if0`.
            if let Bind::If0(c, t, e) = bind {
                let id = known_const(c, prog, facts);
                let arm = match &c.kind {
                    _ if id == Some(0) => Some(t),
                    _ if id.is_some() => Some(e),
                    AValKind::Var(x) => {
                        let vid = prog.var_id(x).expect("indexed variable");
                        let av = facts.get(vid);
                        if av.is_exactly_zero() {
                            Some(t)
                        } else if !av.may_be_zero() && !av.num.is_bot() {
                            Some(e)
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(arm) = arm {
                    stats.branches_eliminated += 1;
                    let arm_r = rewrite_term(arm, prog, facts, stats);
                    return splice(arm_r, var.clone(), body_r);
                }
            }

            // Dead-binding elimination: pure rhs, variable unused.
            let body_free = free_vars(&body_r.to_term());
            if bind_is_pure(bind, prog, facts) && !body_free.contains(var) {
                stats.dead_bindings += 1;
                return body_r;
            }

            // Constant folding: pure rhs whose fact is a known constant.
            let new_bind = {
                let folded = match bind {
                    Bind::Value(AVal {
                        kind: AValKind::Num(_),
                        ..
                    }) => None, // already a literal
                    _ if bind_is_pure(bind, prog, facts) => {
                        let id = prog.var_id(var).expect("indexed variable");
                        let av = facts.get(id);
                        if !av.clos.is_empty() {
                            None
                        } else if av.num.is_bot() {
                            Some(0) // unreachable binding (see known_const)
                        } else {
                            av.num.as_const()
                        }
                    }
                    _ => None,
                };
                match folded {
                    Some(n) => {
                        stats.folds += 1;
                        Bind::Value(AVal::new(AValKind::Num(n)))
                    }
                    None => rewrite_bind(bind, prog, facts, stats),
                }
            };
            // Copy propagation at the tail: `(let (x V) x)` is `V`.
            if let (
                Bind::Value(v),
                AnfKind::Value(AVal {
                    kind: AValKind::Var(y),
                    ..
                }),
            ) = (&new_bind, &body_r.kind)
            {
                if y == var {
                    stats.folds += 1;
                    return Anf::new(AnfKind::Value(v.clone()));
                }
            }
            Anf::new(AnfKind::Let {
                var: var.clone(),
                bind: new_bind,
                body: Box::new(body_r),
            })
        }
    }
}

fn rewrite_bind(
    bind: &Bind,
    prog: &AnfProgram,
    facts: &AbsStore<Flat>,
    stats: &mut OptStats,
) -> Bind {
    match bind {
        Bind::Value(v) => Bind::Value(rewrite_value(v, prog, facts, stats)),
        Bind::App(f, a) => Bind::App(
            rewrite_value(f, prog, facts, stats),
            rewrite_value(a, prog, facts, stats),
        ),
        Bind::If0(c, t, e) => Bind::If0(
            rewrite_value(c, prog, facts, stats),
            Box::new(rewrite_term(t, prog, facts, stats)),
            Box::new(rewrite_term(e, prog, facts, stats)),
        ),
        Bind::Loop => Bind::Loop,
    }
}

fn rewrite_value(
    v: &AVal,
    prog: &AnfProgram,
    facts: &AbsStore<Flat>,
    stats: &mut OptStats,
) -> AVal {
    match &v.kind {
        AValKind::Lam(x, body) => AVal::new(AValKind::Lam(
            x.clone(),
            Box::new(rewrite_term(body, prog, facts, stats)),
        )),
        other => AVal::new(other.clone()),
    }
}

/// Splices an arm's bindings in front of `(let (x tail) body)`, preserving
/// the restricted grammar (binders are globally unique, so no capture).
fn splice(arm: Anf, x: Ident, body: Anf) -> Anf {
    let mut bindings: Vec<(Ident, Bind)> = Vec::new();
    let mut cur = arm;
    let tail = loop {
        match cur.kind {
            AnfKind::Value(v) => break v,
            AnfKind::Let { var, bind, body } => {
                bindings.push((var, bind));
                cur = *body;
            }
        }
    };
    let mut out = Anf::new(AnfKind::Let {
        var: x,
        bind: Bind::Value(tail),
        body: Box::new(body),
    });
    for (var, bind) in bindings.into_iter().rev() {
        out = Anf::new(AnfKind::Let {
            var,
            bind,
            body: Box::new(out),
        });
    }
    out
}

/// Counts the conditionals remaining in a program — a small census used by
/// reports to show how much dynamic control flow the facts resolved.
pub fn residual_conditionals(prog: &AnfProgram) -> usize {
    let mut n = 0;
    prog.root().visit_terms(&mut |m| {
        if let AnfKind::Let {
            bind: Bind::If0(..),
            ..
        } = &m.kind
        {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(src: &str, source: FactSource) -> (String, OptStats) {
        let p = AnfProgram::parse(src).unwrap();
        let (q, stats) = optimize(&p, source).unwrap();
        (q.root().to_string(), stats)
    }

    #[test]
    fn folds_constant_chains_to_a_literal() {
        let (out, stats) = opt(
            "(let (a 1) (let (b (add1 a)) (add1 b)))",
            FactSource::Direct,
        );
        assert_eq!(out, "3");
        assert!(stats.folds >= 1);
        assert!(stats.dead_bindings >= 1);
    }

    #[test]
    fn eliminates_decidable_branches() {
        let (out, stats) = opt("(let (a (if0 0 10 20)) (add1 a))", FactSource::Direct);
        assert_eq!(out, "11");
        assert_eq!(stats.branches_eliminated, 1);
    }

    #[test]
    fn keeps_undecidable_branches() {
        let (out, stats) = opt("(let (a (if0 z 10 20)) a)", FactSource::Direct);
        assert!(out.contains("if0"), "{out}");
        assert_eq!(stats.branches_eliminated, 0);
    }

    #[test]
    fn theorem_5_2_case_1_needs_duplication_facts() {
        let src = "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))";
        let (direct, ds) = opt(src, FactSource::Direct);
        assert!(direct.contains("if0"));
        assert_eq!(ds.folds, 0);
        let (semcps, ss) = opt(src, FactSource::SemCps);
        assert_eq!(semcps, "3");
        assert!(ss.folds >= 1);
        // §6.3: bounded duplication recovers the same optimization.
        let (dup, _) = opt(src, FactSource::DirectDup(1));
        assert_eq!(dup, "3");
    }

    #[test]
    fn impure_bindings_are_never_dropped() {
        // the call to the unknown f may diverge: must stay.
        let (out, _) = opt("(let (a (f 1)) 5)", FactSource::Direct);
        assert!(out.contains("(f 1)"), "{out}");
        // loop definitely diverges: must stay.
        let (out, _) = opt("(let (a (loop)) 5)", FactSource::Direct);
        assert!(out.contains("loop"), "{out}");
    }

    #[test]
    fn dead_pure_bindings_are_dropped() {
        let (out, stats) = opt("(let (a 1) (let (b 2) a))", FactSource::Direct);
        assert_eq!(out, "1");
        assert!(stats.dead_bindings >= 1);
        assert!(stats.folds >= 1);
    }

    #[test]
    fn devirtualization_census_counts_singleton_call_sites() {
        let (_, stats) = opt(
            "(let (f (lambda (x) x)) (let (a (f 1)) (f a)))",
            FactSource::Direct,
        );
        assert_eq!(stats.devirtualized, 2);
    }

    #[test]
    fn splice_preserves_arm_bindings() {
        // the surviving arm has its own lets
        let src = "(let (a (if0 0 (let (u 5) (add1 u)) 9)) (sub1 a))";
        let (out, stats) = opt(src, FactSource::Direct);
        assert_eq!(out, "5");
        assert_eq!(stats.branches_eliminated, 1);
    }

    #[test]
    fn lambda_bodies_are_optimized_too() {
        let (out, _) = opt("(lambda (x) (let (a (if0 0 1 2)) a))", FactSource::Direct);
        assert_eq!(out, "(lambda (x) 1)");
    }

    #[test]
    fn residual_census() {
        let p = AnfProgram::parse("(let (a (if0 z 1 2)) a)").unwrap();
        assert_eq!(residual_conditionals(&p), 1);
    }
}
