//! An optimizer driven by the paper's data flow analyzers.
//!
//! The paper's motivation (§1) is that compilers run data flow analyses to
//! enable "advanced optimization" — so the practical meaning of a precision
//! difference between analyzers is a difference in *optimizations enabled*.
//! This crate closes that loop: it implements the three classical rewrites
//! that constant propagation licenses, parameterized by which analyzer
//! supplies the facts, and counts what each analyzer's facts make possible
//! (experiment E15).
//!
//! Rewrites (on A-normal forms, preserving the restricted grammar):
//!
//! * **constant folding** — a binding whose abstract value is a known
//!   constant, and whose right-hand side is pure, becomes a literal;
//! * **branch elimination** — an `if0` whose test the analysis decides is
//!   spliced down to the surviving arm;
//! * **dead-binding elimination** — a pure binding whose variable is never
//!   used is dropped;
//! * **devirtualization census** — call sites whose closure set is a
//!   singleton are counted (a real compiler would emit direct jumps).
//!
//! Correctness — optimization preserves evaluation — is checked
//! differentially over random corpora in `tests/`.

pub mod rewrite;

pub use rewrite::{optimize, optimize_once, FactSource, OptStats};
