//! Abstract syntax of the source language Λ (§2 of the paper).

use crate::ident::Ident;
use std::fmt;

/// A term of Λ:
///
/// ```text
/// M ::= V | (M M) | (let (x M) M) | (if0 M M M) | (loop)
/// ```
///
/// `loop` is the §6.2 extension: a construct whose exact collecting semantics
/// is the infinite set `{0, 1, 2, …}`; it is used to demonstrate that the
/// semantic-CPS analysis becomes non-computable.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A syntactic value `V`.
    Value(Value),
    /// A call-by-value application `(M M)`.
    App(Box<Term>, Box<Term>),
    /// `(let (x M₁) M₂)`: evaluate `M₁`, bind to `x`, evaluate `M₂`.
    Let(Ident, Box<Term>, Box<Term>),
    /// `(if0 M₀ M₁ M₂)`: branch to `M₁` if `M₀` evaluates to `0`, else `M₂`.
    If0(Box<Term>, Box<Term>, Box<Term>),
    /// `(loop)`: the §6.2 infinite-value construct.
    Loop,
}

/// A syntactic value of Λ:
///
/// ```text
/// V ::= n | x | add1 | sub1 | (λx.M)
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A numeral `n ∈ Z`.
    Num(i64),
    /// A variable `x ∈ Vars`.
    Var(Ident),
    /// The successor primitive.
    Add1,
    /// The predecessor primitive.
    Sub1,
    /// A user-defined procedure `(λx.M)`.
    Lam(Ident, Box<Term>),
}

impl Term {
    /// The number of AST nodes in the term (terms and values both count).
    ///
    /// ```
    /// use cpsdfa_syntax::parse::parse_term;
    /// let t = parse_term("(let (x 1) (add1 x))").unwrap();
    /// assert_eq!(t.size(), 5); // let, 1, app, add1, x
    /// ```
    pub fn size(&self) -> usize {
        match self {
            Term::Value(v) => v.size(),
            Term::App(f, a) => 1 + f.size() + a.size(),
            Term::Let(_, rhs, body) => 1 + rhs.size() + body.size(),
            Term::If0(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Term::Loop => 1,
        }
    }

    /// The maximum nesting depth of the term.
    pub fn depth(&self) -> usize {
        match self {
            Term::Value(v) => v.depth(),
            Term::App(f, a) => 1 + f.depth().max(a.depth()),
            Term::Let(_, rhs, body) => 1 + rhs.depth().max(body.depth()),
            Term::If0(c, t, e) => 1 + c.depth().max(t.depth()).max(e.depth()),
            Term::Loop => 1,
        }
    }

    /// True if the term is a syntactic value.
    pub fn is_value(&self) -> bool {
        matches!(self, Term::Value(_))
    }

    /// Counts the user-defined λ-abstractions in the term.
    pub fn lambda_count(&self) -> usize {
        match self {
            Term::Value(Value::Lam(_, body)) => 1 + body.lambda_count(),
            Term::Value(_) => 0,
            Term::App(f, a) => f.lambda_count() + a.lambda_count(),
            Term::Let(_, rhs, body) => rhs.lambda_count() + body.lambda_count(),
            Term::If0(c, t, e) => c.lambda_count() + t.lambda_count() + e.lambda_count(),
            Term::Loop => 0,
        }
    }

    /// True if the term contains the `loop` extension anywhere.
    pub fn uses_loop(&self) -> bool {
        match self {
            Term::Loop => true,
            Term::Value(Value::Lam(_, body)) => body.uses_loop(),
            Term::Value(_) => false,
            Term::App(f, a) => f.uses_loop() || a.uses_loop(),
            Term::Let(_, rhs, body) => rhs.uses_loop() || body.uses_loop(),
            Term::If0(c, t, e) => c.uses_loop() || t.uses_loop() || e.uses_loop(),
        }
    }
}

impl Value {
    /// The number of AST nodes in the value.
    pub fn size(&self) -> usize {
        match self {
            Value::Lam(_, body) => 1 + body.size(),
            _ => 1,
        }
    }

    /// The maximum nesting depth of the value.
    pub fn depth(&self) -> usize {
        match self {
            Value::Lam(_, body) => 1 + body.depth(),
            _ => 1,
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Value(v)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The printer produces concrete syntax; that is the most useful Debug.
        write!(f, "{self}")
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn size_counts_every_node() {
        let t = if0(num(0), num(1), num(2));
        assert_eq!(t.size(), 4);
        assert_eq!(num(5).size(), 1);
        assert_eq!(lam("x", var("x")).size(), 2);
    }

    #[test]
    fn depth_of_nested_lets() {
        let t = let_("a", num(1), let_("b", num(2), var("b")));
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn lambda_count_sees_nested_lambdas() {
        let t = app(lam("f", app(var("f"), num(1))), lam("x", var("x")));
        assert_eq!(t.lambda_count(), 2);
        let nested = lam("x", lam("y", var("x")));
        assert_eq!(nested.lambda_count(), 2);
    }

    #[test]
    fn uses_loop_detects_extension() {
        assert!(Term::Loop.uses_loop());
        assert!(let_("x", Term::Loop, var("x")).uses_loop());
        assert!(!num(0).uses_loop());
        assert!(app(lam("x", Term::Loop), num(1)).uses_loop());
    }

    #[test]
    fn value_into_term() {
        let t: Term = Value::Num(3).into();
        assert_eq!(t, num(3));
    }
}
