//! Program-point labels.
//!
//! The analyses of §4 need a finite, per-program identification of
//! subexpressions: abstract closures are "the λ at label ℓ", abstract
//! continuations are "the frame/continuation created at label ℓ". A
//! [`Label`] is a dense `u32` assigned by the labeling passes in
//! `cpsdfa-anf` and `cpsdfa-cps`.

use std::fmt;

/// A dense program-point label.
///
/// ```
/// use cpsdfa_syntax::Label;
/// let l = Label::new(3);
/// assert_eq!(l.index(), 3);
/// assert_eq!(l.to_string(), "ℓ3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// A placeholder label used before a labeling pass runs.
    pub const UNASSIGNED: Label = Label(u32::MAX);

    /// Creates a label with the given index.
    pub fn new(index: u32) -> Self {
        Label(index)
    }

    /// The dense index of this label.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Whether this label has been assigned by a labeling pass.
    pub fn is_assigned(self) -> bool {
        self != Label::UNASSIGNED
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_assigned() {
            write!(f, "ℓ{}", self.0)
        } else {
            f.write_str("ℓ?")
        }
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An allocator of dense labels.
///
/// ```
/// use cpsdfa_syntax::label::LabelGen;
/// let mut g = LabelGen::new();
/// assert_eq!(g.next().index(), 0);
/// assert_eq!(g.next().index(), 1);
/// assert_eq!(g.count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct LabelGen {
    next: u32,
}

impl LabelGen {
    /// Creates an allocator starting at label 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next label.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Label {
        let l = Label(self.next);
        self.next += 1;
        l
    }

    /// The number of labels allocated so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_dense_and_ordered() {
        let mut g = LabelGen::new();
        let a = g.next();
        let b = g.next();
        assert!(a < b);
        assert_eq!(b.index(), a.index() + 1);
    }

    #[test]
    fn unassigned_is_distinguishable() {
        assert!(!Label::UNASSIGNED.is_assigned());
        assert!(Label::new(0).is_assigned());
        assert_eq!(Label::UNASSIGNED.to_string(), "ℓ?");
    }

    #[test]
    fn display_shows_index() {
        assert_eq!(Label::new(12).to_string(), "ℓ12");
    }
}
