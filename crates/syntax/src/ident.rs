//! Identifiers for the two disjoint variable namespaces of the paper.
//!
//! §3.3 requires `KVars ∩ Vars = ∅`: continuation variables introduced by the
//! CPS transformation live in their own namespace. We enforce the disjointness
//! statically with two newtypes, [`Ident`] for ordinary variables and
//! [`KIdent`] for continuation variables.
//!
//! Both wrap an interned [`Symbol`], so clones, equality, hashing, and
//! ordering are all `u32` operations. In particular `Ord` compares intern
//! indices, **not** text: ordered collections keyed on identifiers (the
//! analyzers' `BTreeSet`s) never pay for a string comparison. Code that
//! needs a name-alphabetical order must sort by [`Ident::as_str`]
//! explicitly.

use crate::intern::Symbol;
use std::fmt;

/// An ordinary (user) variable `x ∈ Vars`.
///
/// Backed by an interned symbol, so clones are `u32` copies and comparisons
/// never touch the string; terms and analysis tables clone identifiers
/// freely.
///
/// ```
/// use cpsdfa_syntax::Ident;
/// let x = Ident::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x.to_string(), "x");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident(Symbol);

impl Ident {
    /// Creates an identifier from a name, interning it.
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(Symbol::intern(name.as_ref()))
    }

    /// The textual name of the identifier.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying interned symbol.
    pub fn symbol(&self) -> Symbol {
        self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.as_str())
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A continuation variable `k ∈ KVars` (disjoint from [`Ident`]).
///
/// Only the CPS language of Definition 3.2 binds these. Same interned
/// representation (and the same index-based `Ord`) as [`Ident`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KIdent(Symbol);

impl KIdent {
    /// Creates a continuation identifier from a name, interning it.
    pub fn new(name: impl AsRef<str>) -> Self {
        KIdent(Symbol::intern(name.as_ref()))
    }

    /// The textual name of the identifier.
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying interned symbol.
    pub fn symbol(&self) -> Symbol {
        self.0
    }
}

impl fmt::Display for KIdent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for KIdent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KIdent({})", self.as_str())
    }
}

impl From<&str> for KIdent {
    fn from(s: &str) -> Self {
        KIdent::new(s)
    }
}

/// A generator of fresh names, used by α-freshening, A-normalization, and the
/// CPS transform.
///
/// Generated names embed a `%` which the parser rejects in source programs,
/// so fresh names can never capture user-written ones. The counter is
/// deterministic, so re-running a pass over the same input regenerates the
/// *same* names — after a warm-up run, the interner allocates nothing.
///
/// ```
/// use cpsdfa_syntax::FreshGen;
/// let mut g = FreshGen::new();
/// let a = g.fresh("x");
/// let b = g.fresh("x");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("x%"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct FreshGen {
    counter: u64,
}

impl FreshGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator whose counter starts at `start`; useful when
    /// several passes must not collide.
    pub fn starting_at(start: u64) -> Self {
        FreshGen { counter: start }
    }

    /// Returns a fresh ordinary variable whose name begins with `hint`.
    pub fn fresh(&mut self, hint: &str) -> Ident {
        let n = self.next_id();
        Ident(Self::intern_fresh(hint, n))
    }

    /// Returns a fresh continuation variable whose name begins with `hint`.
    pub fn fresh_k(&mut self, hint: &str) -> KIdent {
        let n = self.next_id();
        KIdent(Self::intern_fresh(hint, n))
    }

    /// Interns `"{hint}%{n}"`. Fresh names are drawn in every
    /// normalization and CPS pass, so this is one of the hottest paths in
    /// the front end; two layers keep it cheap:
    ///
    /// * a thread-local `(hint, n) → Symbol` cache — deterministic
    ///   generators re-draw the same names on every pass over the same
    ///   input, so warm draws skip both the string rendering and the global
    ///   interner lock entirely;
    /// * on a cache miss, the name is rendered into a stack buffer, never a
    ///   heap-allocated intermediate.
    fn intern_fresh(hint: &str, n: u64) -> Symbol {
        use crate::fxhash::FxHashMap;
        use std::cell::RefCell;
        thread_local! {
            static CACHE: RefCell<FxHashMap<String, FxHashMap<u64, Symbol>>> =
                RefCell::new(FxHashMap::default());
        }
        CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(by_n) = cache.get_mut(hint) {
                if let Some(&sym) = by_n.get(&n) {
                    return sym;
                }
                let sym = Self::render_and_intern(hint, n);
                by_n.insert(n, sym);
                return sym;
            }
            let sym = Self::render_and_intern(hint, n);
            let mut by_n = FxHashMap::default();
            by_n.insert(n, sym);
            cache.insert(hint.to_owned(), by_n);
            sym
        })
    }

    /// Renders `"{hint}%{n}"` into a stack buffer and interns it.
    fn render_and_intern(hint: &str, n: u64) -> Symbol {
        let mut buf = [0u8; 48];
        if hint.len() + 21 <= buf.len() {
            let mut len = hint.len();
            buf[..len].copy_from_slice(hint.as_bytes());
            buf[len] = b'%';
            len += 1;
            let digits = Self::render_u64(n, &mut buf[len..]);
            len += digits;
            let name = std::str::from_utf8(&buf[..len]).expect("hint is valid UTF-8");
            Symbol::intern(name)
        } else {
            // Oversized hints are not worth a fast path.
            Symbol::intern(&format!("{hint}%{n}"))
        }
    }

    /// Writes the decimal digits of `n` into `out`, returning the count.
    fn render_u64(mut n: u64, out: &mut [u8]) -> usize {
        let mut tmp = [0u8; 20];
        let mut i = tmp.len();
        loop {
            i -= 1;
            tmp[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        let digits = tmp.len() - i;
        out[..digits].copy_from_slice(&tmp[i..]);
        digits
    }

    /// The number of names generated so far.
    pub fn generated(&self) -> u64 {
        self.counter
    }

    fn next_id(&mut self) -> u64 {
        let n = self.counter;
        self.counter += 1;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ident_equality_is_by_content() {
        assert_eq!(Ident::new("x"), Ident::new("x"));
        assert_ne!(Ident::new("x"), Ident::new("y"));
    }

    #[test]
    fn ident_ord_is_by_intern_index() {
        // The total order is by intern index — cheap, total, and consistent
        // with equality — but deliberately *not* lexicographic.
        let a = Ident::new("ident-ord-a");
        let b = Ident::new("ident-ord-b");
        assert_eq!(a < b, a.symbol().index() < b.symbol().index());
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn ident_clone_is_same_symbol() {
        let x = Ident::new("x");
        let y = x.clone();
        assert_eq!(x.symbol(), y.symbol());
        assert!(std::ptr::eq(x.as_str(), y.as_str()));
    }

    #[test]
    fn kident_is_distinct_type_with_same_behavior() {
        assert_eq!(KIdent::new("k"), KIdent::new("k"));
        assert_ne!(KIdent::new("k"), KIdent::new("k2"));
    }

    #[test]
    fn fresh_names_never_repeat() {
        let mut g = FreshGen::new();
        let names: HashSet<_> = (0..100).map(|_| g.fresh("t")).collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn fresh_interleaves_user_and_k_counters() {
        let mut g = FreshGen::new();
        let a = g.fresh("x");
        let k = g.fresh_k("k");
        let b = g.fresh("x");
        assert_eq!(a.as_str(), "x%0");
        assert_eq!(k.as_str(), "k%1");
        assert_eq!(b.as_str(), "x%2");
    }

    #[test]
    fn rerunning_a_fresh_sequence_interns_nothing_new() {
        let mut g = FreshGen::new();
        for _ in 0..20 {
            g.fresh("warm");
        }
        let before = crate::intern::Symbol::interned_count();
        let mut g2 = FreshGen::new();
        for _ in 0..20 {
            g2.fresh("warm");
        }
        assert_eq!(
            crate::intern::Symbol::interned_count(),
            before,
            "deterministic fresh names must hit the interner cache"
        );
    }

    #[test]
    fn starting_at_skips_prefix() {
        let mut g = FreshGen::starting_at(7);
        assert_eq!(g.fresh("v").as_str(), "v%7");
        assert_eq!(g.generated(), 8);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(Ident::new("x").to_string(), "x");
        assert!(!format!("{:?}", Ident::new("x")).is_empty());
        assert_eq!(KIdent::new("k").to_string(), "k");
        assert!(!format!("{:?}", KIdent::new("k")).is_empty());
    }
}
