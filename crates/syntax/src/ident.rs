//! Identifiers for the two disjoint variable namespaces of the paper.
//!
//! §3.3 requires `KVars ∩ Vars = ∅`: continuation variables introduced by the
//! CPS transformation live in their own namespace. We enforce the disjointness
//! statically with two newtypes, [`Ident`] for ordinary variables and
//! [`KIdent`] for continuation variables.

use std::fmt;
use std::sync::Arc;

/// An ordinary (user) variable `x ∈ Vars`.
///
/// Backed by a shared string, so clones are reference-count bumps; terms and
/// analysis tables clone identifiers freely.
///
/// ```
/// use cpsdfa_syntax::Ident;
/// let x = Ident::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x.to_string(), "x");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident(Arc<str>);

impl Ident {
    /// Creates an identifier from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(Arc::from(name.as_ref()))
    }

    /// The textual name of the identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident::new(s)
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A continuation variable `k ∈ KVars` (disjoint from [`Ident`]).
///
/// Only the CPS language of Definition 3.2 binds these.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KIdent(Arc<str>);

impl KIdent {
    /// Creates a continuation identifier from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        KIdent(Arc::from(name.as_ref()))
    }

    /// The textual name of the identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for KIdent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for KIdent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KIdent({})", self.0)
    }
}

impl From<&str> for KIdent {
    fn from(s: &str) -> Self {
        KIdent::new(s)
    }
}

/// A generator of fresh names, used by α-freshening, A-normalization, and the
/// CPS transform.
///
/// Generated names embed a `%` which the parser rejects in source programs,
/// so fresh names can never capture user-written ones.
///
/// ```
/// use cpsdfa_syntax::FreshGen;
/// let mut g = FreshGen::new();
/// let a = g.fresh("x");
/// let b = g.fresh("x");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("x%"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct FreshGen {
    counter: u64,
}

impl FreshGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a generator whose counter starts at `start`; useful when
    /// several passes must not collide.
    pub fn starting_at(start: u64) -> Self {
        FreshGen { counter: start }
    }

    /// Returns a fresh ordinary variable whose name begins with `hint`.
    pub fn fresh(&mut self, hint: &str) -> Ident {
        let n = self.next_id();
        Ident::new(format!("{hint}%{n}"))
    }

    /// Returns a fresh continuation variable whose name begins with `hint`.
    pub fn fresh_k(&mut self, hint: &str) -> KIdent {
        let n = self.next_id();
        KIdent::new(format!("{hint}%{n}"))
    }

    /// The number of names generated so far.
    pub fn generated(&self) -> u64 {
        self.counter
    }

    fn next_id(&mut self) -> u64 {
        let n = self.counter;
        self.counter += 1;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ident_equality_is_by_content() {
        assert_eq!(Ident::new("x"), Ident::new("x"));
        assert_ne!(Ident::new("x"), Ident::new("y"));
    }

    #[test]
    fn ident_orders_lexicographically() {
        assert!(Ident::new("a") < Ident::new("b"));
        assert!(Ident::new("a") < Ident::new("aa"));
    }

    #[test]
    fn kident_is_distinct_type_with_same_behavior() {
        assert_eq!(KIdent::new("k"), KIdent::new("k"));
        assert_ne!(KIdent::new("k"), KIdent::new("k2"));
    }

    #[test]
    fn fresh_names_never_repeat() {
        let mut g = FreshGen::new();
        let names: HashSet<_> = (0..100).map(|_| g.fresh("t")).collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn fresh_interleaves_user_and_k_counters() {
        let mut g = FreshGen::new();
        let a = g.fresh("x");
        let k = g.fresh_k("k");
        let b = g.fresh("x");
        assert_eq!(a.as_str(), "x%0");
        assert_eq!(k.as_str(), "k%1");
        assert_eq!(b.as_str(), "x%2");
    }

    #[test]
    fn starting_at_skips_prefix() {
        let mut g = FreshGen::starting_at(7);
        assert_eq!(g.fresh("v").as_str(), "v%7");
        assert_eq!(g.generated(), 8);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(Ident::new("x").to_string(), "x");
        assert!(!format!("{:?}", Ident::new("x")).is_empty());
        assert_eq!(KIdent::new("k").to_string(), "k");
        assert!(!format!("{:?}", KIdent::new("k")).is_empty());
    }
}
