//! Free-variable computation and closedness checks for Λ terms.

use crate::ast::{Term, Value};
use crate::ident::Ident;
use std::collections::BTreeSet;

/// The set of free variables of a term.
///
/// ```
/// use cpsdfa_syntax::{free::free_vars, parse::parse_term, Ident};
/// let t = parse_term("(lambda (x) (f x))").unwrap();
/// let fv = free_vars(&t);
/// assert!(fv.contains(&Ident::new("f")));
/// assert!(!fv.contains(&Ident::new("x")));
/// ```
pub fn free_vars(term: &Term) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    let mut bound = Vec::new();
    collect_term(term, &mut bound, &mut out);
    out
}

/// True if the term has no free variables.
pub fn is_closed(term: &Term) -> bool {
    free_vars(term).is_empty()
}

/// All variables bound anywhere in the term (by `let` or `λ`), with
/// multiplicity collapsed.
pub fn bound_vars(term: &Term) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    collect_bound(term, &mut out);
    out
}

/// True if every binder in the term binds a distinct variable and no bound
/// variable also occurs free — the "all bound variables in a program are
/// unique" hygiene assumption of §2.
pub fn has_unique_binders(term: &Term) -> bool {
    let mut seen = BTreeSet::new();
    unique_binders(term, &mut seen) && seen.is_disjoint(&free_vars(term))
}

fn collect_term(term: &Term, bound: &mut Vec<Ident>, out: &mut BTreeSet<Ident>) {
    match term {
        Term::Value(v) => collect_value(v, bound, out),
        Term::App(f, a) => {
            collect_term(f, bound, out);
            collect_term(a, bound, out);
        }
        Term::Let(x, rhs, body) => {
            collect_term(rhs, bound, out);
            bound.push(x.clone());
            collect_term(body, bound, out);
            bound.pop();
        }
        Term::If0(c, t, e) => {
            collect_term(c, bound, out);
            collect_term(t, bound, out);
            collect_term(e, bound, out);
        }
        Term::Loop => {}
    }
}

fn collect_value(value: &Value, bound: &mut Vec<Ident>, out: &mut BTreeSet<Ident>) {
    match value {
        Value::Var(x) => {
            if !bound.contains(x) {
                out.insert(x.clone());
            }
        }
        Value::Lam(x, body) => {
            bound.push(x.clone());
            collect_term(body, bound, out);
            bound.pop();
        }
        Value::Num(_) | Value::Add1 | Value::Sub1 => {}
    }
}

fn collect_bound(term: &Term, out: &mut BTreeSet<Ident>) {
    match term {
        Term::Value(Value::Lam(x, body)) => {
            out.insert(x.clone());
            collect_bound(body, out);
        }
        Term::Value(_) | Term::Loop => {}
        Term::App(f, a) => {
            collect_bound(f, out);
            collect_bound(a, out);
        }
        Term::Let(x, rhs, body) => {
            out.insert(x.clone());
            collect_bound(rhs, out);
            collect_bound(body, out);
        }
        Term::If0(c, t, e) => {
            collect_bound(c, out);
            collect_bound(t, out);
            collect_bound(e, out);
        }
    }
}

fn unique_binders(term: &Term, seen: &mut BTreeSet<Ident>) -> bool {
    match term {
        Term::Value(Value::Lam(x, body)) => seen.insert(x.clone()) && unique_binders(body, seen),
        Term::Value(_) | Term::Loop => true,
        Term::App(f, a) => unique_binders(f, seen) && unique_binders(a, seen),
        Term::Let(x, rhs, body) => {
            unique_binders(rhs, seen) && seen.insert(x.clone()) && unique_binders(body, seen)
        }
        Term::If0(c, t, e) => {
            unique_binders(c, seen) && unique_binders(t, seen) && unique_binders(e, seen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn free_vars_of_open_term() {
        let t = app(var("f"), var("x"));
        let fv = free_vars(&t);
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn let_binds_only_in_body() {
        // (let (x x) x): the rhs x is free, the body x is bound.
        let t = let_("x", var("x"), var("x"));
        let fv = free_vars(&t);
        assert!(fv.contains(&Ident::new("x")));
    }

    #[test]
    fn shadowing_is_respected() {
        // (lambda (x) (let (x 1) x)) is closed.
        let t = lam("x", let_("x", num(1), var("x")));
        assert!(is_closed(&t));
        assert!(!has_unique_binders(&t));
    }

    #[test]
    fn closed_combinators() {
        assert!(is_closed(&identity("x")));
        assert!(is_closed(&num(3)));
        assert!(is_closed(&loop_()));
        assert!(!is_closed(&var("y")));
    }

    #[test]
    fn bound_vars_collects_let_and_lambda() {
        let t = let_("a", lam("b", var("b")), var("a"));
        let bv = bound_vars(&t);
        assert!(bv.contains(&Ident::new("a")));
        assert!(bv.contains(&Ident::new("b")));
        assert_eq!(bv.len(), 2);
    }

    #[test]
    fn unique_binders_detects_reuse_and_capture() {
        let distinct = let_("a", num(1), let_("b", num(2), var("a")));
        assert!(has_unique_binders(&distinct));
        let reused = let_("a", num(1), let_("a", num(2), var("a")));
        assert!(!has_unique_binders(&reused));
        // bound name equal to a free name is also rejected
        let capture = let_("a", var("a"), num(0));
        assert!(!has_unique_binders(&capture));
    }
}
