//! The source language Λ of Sabry & Felleisen, *"Is Continuation-Passing
//! Useful for Data Flow Analysis?"* (PLDI 1994), §2.
//!
//! Λ is the core of a call-by-value higher-order language (Scheme, ML, Lisp):
//!
//! ```text
//! M ::= V | (M M) | (let (x M) M) | (if0 M M M)
//! V ::= n | x | add1 | sub1 | (λx.M)
//! ```
//!
//! plus the `loop` extension of §6.2 whose collecting semantics is the
//! infinite value set `{0, 1, 2, …}`.
//!
//! This crate provides:
//!
//! * the abstract syntax ([`Term`], [`Value`], [`Ident`], [`KIdent`]);
//! * a global [string interner](intern) — identifiers are `u32` symbols, so
//!   comparison, hashing, and ordering never walk a string;
//! * a [hash-consed term arena](arena) with `u32` node ids, the front end's
//!   flat representation (O(1) subtree equality, shared substructure);
//! * an s-expression [parser](parse) and a round-tripping pretty
//!   [printer](mod@print);
//! * [builder](build) combinators for constructing terms in tests and
//!   workload generators;
//! * [free-variable computation](free) and
//!   [α-freshening](fresh) (the analyses of the paper assume all bound
//!   variables in a program are unique).
//!
//! # Example
//!
//! ```
//! use cpsdfa_syntax::{parse::parse_term, build};
//!
//! let t = parse_term("(let (x 1) (add1 x))")?;
//! let u = build::let_("x", build::num(1), build::app(build::add1(), build::var("x")));
//! assert_eq!(t, u);
//! # Ok::<(), cpsdfa_syntax::parse::ParseError>(())
//! ```

pub mod arena;
pub mod ast;
pub mod build;
pub mod free;
pub mod fresh;
pub mod fxhash;
pub mod ident;
pub mod intern;
pub mod label;
pub mod parse;
pub mod print;

pub use arena::{TermArena, TermId};
pub use ast::{Term, Value};
pub use ident::{FreshGen, Ident, KIdent};
pub use intern::Symbol;
pub use label::Label;
