//! An s-expression parser for Λ.
//!
//! Accepted grammar (a superset of the paper's concrete syntax, with the
//! conveniences used in the paper's own examples):
//!
//! ```text
//! M ::= n | x | add1 | sub1
//!     | (lambda (x) M)            ; also (λ (x) M)
//!     | (let (x M) M)
//!     | (if0 M M M)
//!     | (loop)
//!     | (+ M n)                   ; paper's abbreviation: n × add1/sub1
//!     | (M M M ...)               ; curried application, left associative
//! ```
//!
//! Identifiers may not contain `%` (reserved for machine-generated fresh
//! names) and may not be keywords.

use crate::ast::{Term, Value};
use crate::build;
use crate::ident::Ident;
use std::error::Error;
use std::fmt;

/// A parse error with a byte position into the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseError {}

/// Parses a single Λ term; trailing whitespace and `;` line comments are
/// allowed, any other trailing input is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, reserved identifiers, or
/// trailing tokens.
///
/// ```
/// use cpsdfa_syntax::parse::parse_term;
/// let t = parse_term("(let (x 1) x) ; comment")?;
/// assert_eq!(t.to_string(), "(let (x 1) x)");
/// # Ok::<(), cpsdfa_syntax::parse::ParseError>(())
/// ```
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(input);
    let sexp = p.sexp()?;
    p.skip_trivia();
    if !p.at_end() {
        return Err(ParseError::new(p.pos, "unexpected trailing input"));
    }
    term_of_sexp(&sexp)
}

const KEYWORDS: &[&str] = &["lambda", "λ", "let", "if0", "loop", "add1", "sub1", "+"];

/// Checks whether `name` is usable as a source-program variable.
pub fn is_valid_ident(name: &str) -> bool {
    let not_number_like = !name.starts_with(|c: char| c.is_ascii_digit())
        && name != "-"
        && !(name.starts_with('-') && name[1..].starts_with(|c: char| c.is_ascii_digit()));
    !name.is_empty()
        && !KEYWORDS.contains(&name)
        && !name.contains('%')
        && not_number_like
        && name.chars().all(is_ident_char)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || "-_!?*/<>=+.".contains(c)
}

// ---------------------------------------------------------------------------
// S-expression layer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Sexp {
    Atom(usize, String),
    List(usize, Vec<Sexp>),
}

impl Sexp {
    fn pos(&self) -> usize {
        match self {
            Sexp::Atom(p, _) | Sexp::List(p, _) => *p,
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn sexp(&mut self) -> Result<Sexp, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        match self.peek() {
            None => Err(ParseError::new(start, "unexpected end of input")),
            Some('(') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    match self.peek() {
                        None => {
                            return Err(ParseError::new(self.pos, "unclosed parenthesis"));
                        }
                        Some(')') => {
                            self.bump();
                            return Ok(Sexp::List(start, items));
                        }
                        Some(_) => items.push(self.sexp()?),
                    }
                }
            }
            Some(')') => Err(ParseError::new(start, "unexpected `)`")),
            Some(_) => {
                let mut atom = String::new();
                while let Some(c) = self.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    atom.push(c);
                    self.bump();
                }
                Ok(Sexp::Atom(start, atom))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Term layer
// ---------------------------------------------------------------------------

fn term_of_sexp(s: &Sexp) -> Result<Term, ParseError> {
    match s {
        Sexp::Atom(pos, a) => atom_term(*pos, a),
        Sexp::List(pos, items) => list_term(*pos, items),
    }
}

fn atom_term(pos: usize, a: &str) -> Result<Term, ParseError> {
    if let Ok(n) = a.parse::<i64>() {
        return Ok(Term::Value(Value::Num(n)));
    }
    match a {
        "add1" => Ok(Term::Value(Value::Add1)),
        "sub1" => Ok(Term::Value(Value::Sub1)),
        _ if is_valid_ident(a) => Ok(Term::Value(Value::Var(Ident::new(a)))),
        _ => Err(ParseError::new(pos, format!("invalid identifier `{a}`"))),
    }
}

fn head(items: &[Sexp]) -> Option<&str> {
    match items.first() {
        Some(Sexp::Atom(_, a)) => Some(a.as_str()),
        _ => None,
    }
}

fn list_term(pos: usize, items: &[Sexp]) -> Result<Term, ParseError> {
    match head(items) {
        Some("lambda") | Some("λ") => {
            if items.len() != 3 {
                return Err(ParseError::new(pos, "lambda expects (lambda (x) M)"));
            }
            let param = match &items[1] {
                Sexp::List(_, ps) if ps.len() == 1 => binder_ident(&ps[0])?,
                other => {
                    return Err(ParseError::new(
                        other.pos(),
                        "lambda expects a single-parameter list (x)",
                    ))
                }
            };
            let body = term_of_sexp(&items[2])?;
            Ok(build::lam(param, body))
        }
        Some("let") => {
            if items.len() != 3 {
                return Err(ParseError::new(pos, "let expects (let (x M) M)"));
            }
            let (x, rhs) = match &items[1] {
                Sexp::List(_, b) if b.len() == 2 => (binder_ident(&b[0])?, term_of_sexp(&b[1])?),
                other => return Err(ParseError::new(other.pos(), "let expects a binding (x M)")),
            };
            let body = term_of_sexp(&items[2])?;
            Ok(build::let_(x, rhs, body))
        }
        Some("if0") => {
            if items.len() != 4 {
                return Err(ParseError::new(pos, "if0 expects (if0 M M M)"));
            }
            Ok(build::if0(
                term_of_sexp(&items[1])?,
                term_of_sexp(&items[2])?,
                term_of_sexp(&items[3])?,
            ))
        }
        Some("loop") => {
            if items.len() != 1 {
                return Err(ParseError::new(pos, "loop expects no arguments: (loop)"));
            }
            Ok(Term::Loop)
        }
        Some("+") => {
            // Paper abbreviation (+ M n): n applications of add1/sub1.
            if items.len() != 3 {
                return Err(ParseError::new(pos, "+ expects (+ M n) with literal n"));
            }
            let m = term_of_sexp(&items[1])?;
            let n = match &items[2] {
                Sexp::Atom(_, a) => a.parse::<i64>().map_err(|_| {
                    ParseError::new(items[2].pos(), "+ expects a literal integer offset")
                })?,
                other => {
                    return Err(ParseError::new(
                        other.pos(),
                        "+ expects a literal integer offset",
                    ))
                }
            };
            Ok(build::plus_const(m, n))
        }
        _ => {
            // Application, possibly curried.
            if items.len() < 2 {
                return Err(ParseError::new(
                    pos,
                    "application expects an operator and at least one operand",
                ));
            }
            let f = term_of_sexp(&items[0])?;
            let args = items[1..]
                .iter()
                .map(term_of_sexp)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(build::apps(f, args))
        }
    }
}

fn binder_ident(s: &Sexp) -> Result<Ident, ParseError> {
    match s {
        Sexp::Atom(pos, a) if is_valid_ident(a) => {
            let _ = pos;
            Ok(Ident::new(a))
        }
        other => Err(ParseError::new(other.pos(), "expected a variable name")),
    }
}

// ---------------------------------------------------------------------------
// Direct-to-arena layer
// ---------------------------------------------------------------------------

use crate::arena::{TermArena, TermId, TermNode, ValueNode};
use crate::fxhash::FxHashMap;

/// Parses `src` straight into `arena`, interning nodes as constructs
/// complete — no intermediate s-expression tree, no boxed [`Term`], no
/// per-atom `String`. Accepts exactly the grammar of [`parse_term`]; the
/// differential tests pin the two parsers to structurally identical output.
///
/// This is the parser behind [`TermArena::parse`], the entry point of the
/// interned front-end pipeline.
pub(crate) fn parse_into(arena: &mut TermArena, src: &str) -> Result<TermId, ParseError> {
    // S-expression sources run a handful of bytes per node; seeding the
    // arena and the atom cache avoids mid-parse rehashes without
    // over-reserving (Vec doubling would overshoot further than this).
    let nodes_guess = src.len() / 4;
    arena.reserve(nodes_guess, nodes_guess / 2);
    let mut cache = FxHashMap::default();
    cache.reserve(nodes_guess / 2);
    let mut p = ArenaParser {
        src,
        pos: 0,
        arena,
        atom_cache: cache,
    };
    let id = p.term()?;
    p.skip_trivia();
    if !p.at_end() {
        return Err(ParseError::new(p.pos, "unexpected trailing input"));
    }
    Ok(id)
}

/// What a byte means to the tokenizer; a 256-entry table beats per-byte
/// char classification in the scanning loops.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ByteClass {
    /// ASCII whitespace (what `char::is_whitespace` accepts below 0x80).
    Space,
    /// `(`, `)`, or `;` — always ends an atom.
    Delim,
    /// Any other ASCII byte: part of an atom.
    Other,
    /// Lead byte of a multi-byte char: needs a char decode.
    NonAscii,
}

const BYTE_CLASS: [ByteClass; 256] = {
    let mut t = [ByteClass::Other; 256];
    let mut i = 0x80;
    while i < 256 {
        t[i] = ByteClass::NonAscii;
        i += 1;
    }
    t[b' ' as usize] = ByteClass::Space;
    t[b'\t' as usize] = ByteClass::Space;
    t[b'\n' as usize] = ByteClass::Space;
    t[b'\r' as usize] = ByteClass::Space;
    t[0x0b] = ByteClass::Space; // vertical tab
    t[0x0c] = ByteClass::Space; // form feed
    t[b'(' as usize] = ByteClass::Delim;
    t[b')' as usize] = ByteClass::Delim;
    t[b';' as usize] = ByteClass::Delim;
    t
};

struct ArenaParser<'s, 'a> {
    src: &'s str,
    pos: usize,
    arena: &'a mut TermArena,
    /// Atom text → interned term, so a repeated identifier or numeral costs
    /// one local hash lookup instead of a global interner round-trip plus
    /// two arena memo probes. Keys borrow from `src`.
    atom_cache: FxHashMap<&'s str, TermId>,
}

impl<'s> ArenaParser<'s, '_> {
    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// The next byte; scanning is byte-oriented with an ASCII fast path
    /// (the grammar's delimiters are all ASCII), falling back to char
    /// decoding only for non-ASCII input like the `λ` keyword.
    fn peek(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        let bytes = self.src.as_bytes();
        loop {
            match bytes.get(self.pos) {
                Some(&c) if BYTE_CLASS[c as usize] == ByteClass::Space => self.pos += 1,
                Some(b';') => {
                    self.pos += 1;
                    while let Some(&c) = bytes.get(self.pos) {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(&c) if c >= 0x80 => {
                    let ch = self.src[self.pos..].chars().next().expect("valid UTF-8");
                    if ch.is_whitespace() {
                        self.pos += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    /// Reads one atom token as a borrowed slice (never allocates).
    fn atom(&mut self) -> &'s str {
        let bytes = self.src.as_bytes();
        let start = self.pos;
        while let Some(&c) = bytes.get(self.pos) {
            match BYTE_CLASS[c as usize] {
                ByteClass::Other => self.pos += 1,
                ByteClass::Space | ByteClass::Delim => break,
                ByteClass::NonAscii => {
                    let ch = self.src[self.pos..].chars().next().expect("valid UTF-8");
                    if ch.is_whitespace() {
                        break;
                    }
                    self.pos += ch.len_utf8();
                }
            }
        }
        &self.src[start..self.pos]
    }

    fn term(&mut self) -> Result<TermId, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        match self.peek() {
            None => Err(ParseError::new(start, "unexpected end of input")),
            Some(b'(') => {
                self.pos += 1;
                self.list_term(start)
            }
            Some(b')') => Err(ParseError::new(start, "unexpected `)`")),
            Some(_) => {
                let a = self.atom();
                self.atom_term(start, a)
            }
        }
    }

    fn atom_term(&mut self, pos: usize, a: &'s str) -> Result<TermId, ParseError> {
        use std::collections::hash_map::Entry;
        // Entry keeps the hash computed by the lookup alive for the insert,
        // so a cache miss hashes the atom text once rather than twice.
        let arena = &mut *self.arena;
        let vacant = match self.atom_cache.entry(a) {
            Entry::Occupied(e) => return Ok(*e.get()),
            Entry::Vacant(e) => e,
        };
        let node = if let Ok(n) = a.parse::<i64>() {
            ValueNode::Num(n)
        } else {
            match a {
                "add1" => ValueNode::Add1,
                "sub1" => ValueNode::Sub1,
                _ if is_valid_ident(a) => ValueNode::Var(Ident::new(a)),
                _ => return Err(ParseError::new(pos, format!("invalid identifier `{a}`"))),
            }
        };
        let v = arena.intern_value(node);
        let id = arena.intern_term(TermNode::Value(v));
        vacant.insert(id);
        Ok(id)
    }

    /// Parses a list body; the opening `(` at `start` is already consumed.
    fn list_term(&mut self, start: usize) -> Result<TermId, ParseError> {
        self.skip_trivia();
        let head_pos = self.pos;
        let operator = match self.peek() {
            None => return Err(ParseError::new(self.pos, "unclosed parenthesis")),
            Some(b')') => {
                self.pos += 1;
                return Err(ParseError::new(
                    start,
                    "application expects an operator and at least one operand",
                ));
            }
            Some(b'(') => {
                self.pos += 1;
                self.list_term(head_pos)?
            }
            Some(_) => {
                let a = self.atom();
                match a {
                    "lambda" | "λ" => return self.lambda_tail(start),
                    "let" => return self.let_tail(start),
                    "if0" => return self.if0_tail(start),
                    "loop" => return self.loop_tail(start),
                    "+" => return self.plus_tail(start),
                    _ => self.atom_term(head_pos, a)?,
                }
            }
        };
        self.apply_tail(start, operator)
    }

    /// Folds operands onto `f` left-associatively until the closing `)`.
    fn apply_tail(&mut self, start: usize, mut f: TermId) -> Result<TermId, ParseError> {
        let mut args = 0usize;
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Err(ParseError::new(self.pos, "unclosed parenthesis")),
                Some(b')') => {
                    self.pos += 1;
                    if args == 0 {
                        return Err(ParseError::new(
                            start,
                            "application expects an operator and at least one operand",
                        ));
                    }
                    return Ok(f);
                }
                Some(_) => {
                    let a = self.term()?;
                    f = self.arena.intern_term(TermNode::App(f, a));
                    args += 1;
                }
            }
        }
    }

    /// Consumes a closing `)`; `err` describes the form whose arity is
    /// violated when something else is found.
    fn expect_close(&mut self, err: &str) -> Result<(), ParseError> {
        self.skip_trivia();
        match self.peek() {
            None => Err(ParseError::new(self.pos, "unclosed parenthesis")),
            Some(b')') => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(ParseError::new(self.pos, err)),
        }
    }

    fn binder(&mut self, err: &str) -> Result<Ident, ParseError> {
        self.skip_trivia();
        let pos = self.pos;
        match self.peek() {
            Some(c) if c != b'(' && c != b')' => {
                let a = self.atom();
                if is_valid_ident(a) {
                    Ok(Ident::new(a))
                } else {
                    Err(ParseError::new(pos, "expected a variable name"))
                }
            }
            _ => Err(ParseError::new(pos, err)),
        }
    }

    fn lambda_tail(&mut self, start: usize) -> Result<TermId, ParseError> {
        self.skip_trivia();
        if self.peek() != Some(b'(') {
            return Err(ParseError::new(
                self.pos,
                "lambda expects a single-parameter list (x)",
            ));
        }
        self.pos += 1;
        let param = self.binder("lambda expects a single-parameter list (x)")?;
        self.expect_close("lambda expects a single-parameter list (x)")?;
        let body = self.term()?;
        self.expect_close("lambda expects (lambda (x) M)")?;
        let _ = start;
        let v = self.arena.intern_value(ValueNode::Lam(param, body));
        Ok(self.arena.intern_term(TermNode::Value(v)))
    }

    fn let_tail(&mut self, start: usize) -> Result<TermId, ParseError> {
        self.skip_trivia();
        if self.peek() != Some(b'(') {
            return Err(ParseError::new(self.pos, "let expects a binding (x M)"));
        }
        self.pos += 1;
        let x = self.binder("let expects a binding (x M)")?;
        let rhs = self.term()?;
        self.expect_close("let expects a binding (x M)")?;
        let body = self.term()?;
        self.expect_close("let expects (let (x M) M)")?;
        let _ = start;
        Ok(self.arena.intern_term(TermNode::Let(x, rhs, body)))
    }

    fn if0_tail(&mut self, start: usize) -> Result<TermId, ParseError> {
        let c = self.term()?;
        let t = self.term()?;
        let e = self.term()?;
        self.expect_close("if0 expects (if0 M M M)")?;
        let _ = start;
        Ok(self.arena.intern_term(TermNode::If0(c, t, e)))
    }

    fn loop_tail(&mut self, start: usize) -> Result<TermId, ParseError> {
        self.expect_close("loop expects no arguments: (loop)")?;
        let _ = start;
        Ok(self.arena.intern_term(TermNode::Loop))
    }

    fn plus_tail(&mut self, start: usize) -> Result<TermId, ParseError> {
        let m = self.term()?;
        self.skip_trivia();
        let pos = self.pos;
        let n = match self.peek() {
            Some(c) if c != b'(' && c != b')' => self
                .atom()
                .parse::<i64>()
                .map_err(|_| ParseError::new(pos, "+ expects a literal integer offset"))?,
            _ => return Err(ParseError::new(pos, "+ expects a literal integer offset")),
        };
        self.expect_close("+ expects (+ M n) with literal n")?;
        let _ = start;
        // Paper abbreviation (+ M n): n applications of add1/sub1.
        let prim = if n >= 0 {
            ValueNode::Add1
        } else {
            ValueNode::Sub1
        };
        let pv = self.arena.intern_value(prim);
        let pt = self.arena.intern_term(TermNode::Value(pv));
        let mut acc = m;
        for _ in 0..n.unsigned_abs() {
            acc = self.arena.intern_term(TermNode::App(pt, acc));
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn ok(s: &str) -> Term {
        parse_term(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn parses_atoms() {
        assert_eq!(ok("42"), num(42));
        assert_eq!(ok("-7"), num(-7));
        assert_eq!(ok("x"), var("x"));
        assert_eq!(ok("add1"), add1());
        assert_eq!(ok("sub1"), sub1());
    }

    #[test]
    fn parses_compound_forms() {
        assert_eq!(ok("(f x)"), app(var("f"), var("x")));
        assert_eq!(ok("(lambda (x) x)"), lam("x", var("x")));
        assert_eq!(ok("(λ (x) x)"), lam("x", var("x")));
        assert_eq!(ok("(let (x 1) x)"), let_("x", num(1), var("x")));
        assert_eq!(ok("(if0 x 1 2)"), if0(var("x"), num(1), num(2)));
        assert_eq!(ok("(loop)"), loop_());
    }

    #[test]
    fn curried_application_associates_left() {
        assert_eq!(ok("(f x y)"), app(app(var("f"), var("x")), var("y")));
    }

    #[test]
    fn plus_abbreviation_expands() {
        assert_eq!(
            ok("(+ a 3)"),
            app(add1(), app(add1(), app(add1(), var("a"))))
        );
        assert_eq!(ok("(+ a -2)"), app(sub1(), app(sub1(), var("a"))));
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        assert_eq!(
            ok("  ( let ; binding\n (x 1) x )  "),
            let_("x", num(1), var("x"))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "(",
            ")",
            "(let x 1)",
            "(lambda x x)",
            "(lambda (x y) x)",
            "(if0 1 2)",
            "(loop 1)",
            "(f)",
            "(let (x 1) x) trailing",
            "(+ a b)",
            "bad%name",
            "(let (let 1) 2)",
        ] {
            assert!(parse_term(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn keywords_are_not_variables() {
        assert!(parse_term("(let (lambda 1) 2)").is_err());
        assert!(parse_term("(lambda (if0) 1)").is_err());
    }

    #[test]
    fn error_positions_point_into_source() {
        let err = parse_term("(let (x 1) ").unwrap_err();
        assert_eq!(err.position, 11);
        let err = parse_term("abc)").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn display_roundtrip_on_samples() {
        for s in [
            "(let (x 1) (add1 x))",
            "(lambda (f) (f (f 0)))",
            "(if0 (sub1 n) 1 ((fact (sub1 n)) n))",
            "(loop)",
            "-3",
        ] {
            let t = ok(s);
            assert_eq!(ok(&t.to_string()), t, "roundtrip failed for {s}");
        }
    }
}
