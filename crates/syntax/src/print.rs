//! Pretty printer for Λ, producing the paper's concrete syntax.
//!
//! The printer emits exactly the grammar accepted by [`crate::parse`], so
//! `parse(print(t)) == t` (a property test in the parser module checks this).

use crate::ast::{Term, Value};
use std::fmt;

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Value(v) => write!(f, "{v}"),
            Term::App(fun, arg) => write!(f, "({fun} {arg})"),
            Term::Let(x, rhs, body) => write!(f, "(let ({x} {rhs}) {body})"),
            Term::If0(c, t, e) => write!(f, "(if0 {c} {t} {e})"),
            Term::Loop => f.write_str("(loop)"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Var(x) => write!(f, "{x}"),
            Value::Add1 => f.write_str("add1"),
            Value::Sub1 => f.write_str("sub1"),
            Value::Lam(x, body) => write!(f, "(lambda ({x}) {body})"),
        }
    }
}

/// Renders a term with indentation, two spaces per level, for human-facing
/// reports. `let` chains stay flat (one binding per line) because A-normal
/// forms are long `let` chains.
///
/// ```
/// use cpsdfa_syntax::{parse::parse_term, print::pretty};
/// let t = parse_term("(let (x 1) (let (y 2) x))").unwrap();
/// assert_eq!(pretty(&t), "(let (x 1)\n(let (y 2)\n  x))");
/// ```
pub fn pretty(term: &Term) -> String {
    let mut out = String::new();
    pretty_into(term, 0, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn pretty_into(term: &Term, level: usize, out: &mut String) {
    match term {
        Term::Value(Value::Lam(x, body)) => {
            out.push_str(&format!("(lambda ({x})\n"));
            indent(level + 1, out);
            pretty_into(body, level + 1, out);
            out.push(')');
        }
        Term::Value(v) => out.push_str(&v.to_string()),
        Term::App(f, a) => {
            out.push('(');
            pretty_into(f, level, out);
            out.push(' ');
            pretty_into(a, level, out);
            out.push(')');
        }
        Term::Let(x, rhs, body) => {
            out.push_str(&format!("(let ({x} "));
            pretty_into(rhs, level + 1, out);
            out.push_str(")\n");
            // Keep let chains at the same indentation so ANF reads as a
            // sequence of bindings rather than a staircase.
            let body_level = if matches!(**body, Term::Let(..)) {
                level
            } else {
                level + 1
            };
            indent(body_level, out);
            pretty_into(body, body_level, out);
            out.push(')');
        }
        Term::If0(c, t, e) => {
            out.push_str("(if0 ");
            pretty_into(c, level, out);
            out.push('\n');
            indent(level + 1, out);
            pretty_into(t, level + 1, out);
            out.push('\n');
            indent(level + 1, out);
            pretty_into(e, level + 1, out);
            out.push(')');
        }
        Term::Loop => out.push_str("(loop)"),
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;
    use crate::print::pretty;

    #[test]
    fn display_matches_paper_syntax() {
        let t = let_("x", num(1), app(add1(), var("x")));
        assert_eq!(t.to_string(), "(let (x 1) (add1 x))");
    }

    #[test]
    fn lambda_prints_with_keyword() {
        assert_eq!(lam("x", var("x")).to_string(), "(lambda (x) x)");
    }

    #[test]
    fn if0_and_loop_print() {
        assert_eq!(
            if0(var("x"), num(0), loop_()).to_string(),
            "(if0 x 0 (loop))"
        );
    }

    #[test]
    fn negative_numbers_print_parseably() {
        assert_eq!(num(-42).to_string(), "-42");
    }

    #[test]
    fn pretty_flattens_let_chains() {
        let t = let_("a", num(1), let_("b", num(2), var("b")));
        let p = pretty(&t);
        assert_eq!(p.lines().count(), 3);
        assert!(p.starts_with("(let (a 1)\n(let (b 2)\n"));
    }

    #[test]
    fn pretty_indents_if0_arms() {
        let t = if0(var("x"), num(1), num(2));
        assert_eq!(pretty(&t), "(if0 x\n  1\n  2)");
    }
}
