//! A global string interner backing [`Symbol`], the `u32` handle that
//! [`Ident`](crate::Ident) and [`KIdent`](crate::KIdent) wrap.
//!
//! Identifiers are compared, hashed, and cloned on every hot path of the
//! pipeline (normalization environments, variable indexing, analysis
//! stores). Interning collapses all of that to `u32` operations: two
//! symbols are equal iff their indices are equal, hashing hashes one
//! integer, and `Ord` compares indices — no string walk anywhere.
//!
//! The interner is process-global and append-only. Interned strings are
//! leaked (`Box::leak`) so [`Symbol::as_str`] can hand out `&'static str`
//! without holding the table lock; the set of distinct identifier names in
//! a process is small and bounded by the programs it builds, so the leak is
//! the classic interner trade-off, not a leak in the bug sense.
//!
//! [`Symbol::interned_count`] exposes the table size. The pipeline uses it
//! twice: as the `pipeline.interned_syms` trace gauge, and in regression
//! tests that assert the normalizer/CPS hot loops allocate **zero** new
//! symbols on a warm second run (fresh names are drawn deterministically,
//! so a repeated run re-uses every name it generated the first time).

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense `u32` handle into the process-global symbol
/// table. Equality, hashing, and ordering are all by index — O(1), never a
/// string comparison.
///
/// ```
/// use cpsdfa_syntax::intern::Symbol;
/// let a = Symbol::intern("x");
/// let b = Symbol::intern("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it. Interning the
    /// same string twice returns the same symbol and allocates nothing the
    /// second time — the hit path takes only a shared read lock.
    pub fn intern(name: &str) -> Symbol {
        if let Some(&id) = table().read().expect("symbol table poisoned").map.get(name) {
            return Symbol(id);
        }
        let mut t = table().write().expect("symbol table poisoned");
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = t.map.get(name) {
            return Symbol(id);
        }
        let stored: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(t.strings.len()).expect("symbol table overflow");
        t.strings.push(stored);
        t.map.insert(stored, id);
        Symbol(id)
    }

    /// The interned text. `'static` because the table is append-only.
    pub fn as_str(self) -> &'static str {
        table().read().expect("symbol table poisoned").strings[self.0 as usize]
    }

    /// The dense index of this symbol in the table.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The number of distinct strings interned so far, process-wide.
    ///
    /// Monotone; the difference across a region of code counts the fresh
    /// symbol allocations that region performed.
    pub fn interned_count() -> u64 {
        table().read().expect("symbol table poisoned").strings.len() as u64
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({}:{})", self.0, self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let before = Symbol::interned_count();
        let a = Symbol::intern("interner-test-idempotent");
        let mid = Symbol::interned_count();
        let b = Symbol::intern("interner-test-idempotent");
        let after = Symbol::interned_count();
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(mid, before + 1);
        assert_eq!(after, mid, "re-interning must not allocate");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("interner-test-a");
        let b = Symbol::intern("interner-test-b");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "interner-test-a");
        assert_eq!(b.as_str(), "interner-test-b");
    }

    #[test]
    fn as_str_is_static_and_stable() {
        let a = Symbol::intern("interner-test-stable");
        let s1: &'static str = a.as_str();
        // Force table growth, then re-read.
        for i in 0..64 {
            Symbol::intern(&format!("interner-test-grow-{i}"));
        }
        let s2: &'static str = a.as_str();
        assert_eq!(s1, s2);
        assert!(std::ptr::eq(s1, s2), "leaked storage must not move");
    }

    #[test]
    fn ord_is_by_intern_index_not_text() {
        // Whichever of the two interns first gets the smaller index; the
        // point is that Ord agrees with index order, so ordered collections
        // of symbols never do string comparisons.
        let a = Symbol::intern("interner-test-ord-zz");
        let b = Symbol::intern("interner-test-ord-aa");
        assert_eq!(a < b, a.index() < b.index());
    }
}
