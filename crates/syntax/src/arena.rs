//! A hash-consed, arena-backed representation of Λ terms.
//!
//! [`TermArena`] stores every term and value node exactly once in flat
//! vectors; [`TermId`]/[`ValueId`] are dense `u32` handles. Because the
//! arena *hash-conses* (structurally identical nodes get the same id),
//! equality of whole subtrees is a single integer comparison, shared
//! substructure is stored once, and node handles are `Copy` — the
//! A-normalizer and CPS transform downstream append one node per construct
//! instead of deep-cloning boxed trees.
//!
//! Invariants:
//!
//! * **Canonical ids**: for a given arena, structurally equal terms have
//!   equal [`TermId`]s (and conversely). Interning is memoized bottom-up,
//!   so `intern_term` on an already-present shape is a hash-map hit with no
//!   allocation.
//! * **Append-only**: ids are never invalidated; `Vec` growth only.
//! * **Ids are per-arena**: comparing ids across arenas is meaningless.
//!
//! The boxed [`Term`] tree remains the interchange format (the parser
//! produces it, the printer consumes it); [`TermArena::from_term`] and
//! [`TermArena::to_term`] convert losslessly in both directions.

use crate::ast::{Term, Value};
use crate::fxhash::FxHashMap;
use crate::ident::Ident;

/// Dense handle of a term node in a [`TermArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense handle of a value node in a [`TermArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ValueId(u32);

impl ValueId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena term node; children are ids, so the node is a few words.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermNode {
    /// A syntactic value.
    Value(ValueId),
    /// An application `(M M)`.
    App(TermId, TermId),
    /// `(let (x M₁) M₂)`.
    Let(Ident, TermId, TermId),
    /// `(if0 M₀ M₁ M₂)`.
    If0(TermId, TermId, TermId),
    /// `(loop)`.
    Loop,
}

/// An arena value node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ValueNode {
    /// A numeral.
    Num(i64),
    /// A variable occurrence.
    Var(Ident),
    /// The successor primitive.
    Add1,
    /// The predecessor primitive.
    Sub1,
    /// `(λx.M)`.
    Lam(Ident, TermId),
}

/// A hash-consing arena for Λ terms. See the module docs for invariants.
#[derive(Clone, Default, Debug)]
pub struct TermArena {
    terms: Vec<TermNode>,
    term_memo: FxHashMap<TermNode, u32>,
    values: Vec<ValueNode>,
    value_memo: FxHashMap<ValueNode, u32>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves room for about `terms` term nodes and `values` value nodes
    /// (vectors and memo tables both), so a parse of known source size
    /// avoids incremental growth and memo rehashes.
    pub fn reserve(&mut self, terms: usize, values: usize) {
        self.terms.reserve(terms);
        self.term_memo.reserve(terms);
        self.values.reserve(values);
        self.value_memo.reserve(values);
    }

    /// Number of distinct term nodes stored.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of distinct value nodes stored.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Total distinct nodes (terms + values).
    pub fn num_nodes(&self) -> usize {
        self.terms.len() + self.values.len()
    }

    /// Approximate heap footprint of the node storage in bytes (the memo
    /// tables are excluded: they are build-time scaffolding, not the
    /// representation).
    pub fn arena_bytes(&self) -> usize {
        self.terms.capacity() * std::mem::size_of::<TermNode>()
            + self.values.capacity() * std::mem::size_of::<ValueNode>()
    }

    /// Interns a term node, returning the canonical id for its shape.
    /// One hash probe whether hit or miss.
    pub fn intern_term(&mut self, node: TermNode) -> TermId {
        let terms = &mut self.terms;
        let id = *self.term_memo.entry(node).or_insert_with_key(|n| {
            let id = u32::try_from(terms.len()).expect("term arena overflow");
            terms.push(n.clone());
            id
        });
        TermId(id)
    }

    /// Interns a value node, returning the canonical id for its shape.
    /// One hash probe whether hit or miss.
    pub fn intern_value(&mut self, node: ValueNode) -> ValueId {
        let values = &mut self.values;
        let id = *self.value_memo.entry(node).or_insert_with_key(|n| {
            let id = u32::try_from(values.len()).expect("value arena overflow");
            values.push(n.clone());
            id
        });
        ValueId(id)
    }

    /// The node behind a term id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn term(&self, id: TermId) -> &TermNode {
        &self.terms[id.index()]
    }

    /// The node behind a value id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn value(&self, id: ValueId) -> &ValueNode {
        &self.values[id.index()]
    }

    /// Interns a boxed [`Term`] tree bottom-up. Structurally identical
    /// subtrees of `t` collapse to the same id.
    pub fn from_term(&mut self, t: &Term) -> TermId {
        match t {
            Term::Value(v) => {
                let vid = self.from_value(v);
                self.intern_term(TermNode::Value(vid))
            }
            Term::App(f, a) => {
                let f = self.from_term(f);
                let a = self.from_term(a);
                self.intern_term(TermNode::App(f, a))
            }
            Term::Let(x, rhs, body) => {
                let rhs = self.from_term(rhs);
                let body = self.from_term(body);
                self.intern_term(TermNode::Let(x.clone(), rhs, body))
            }
            Term::If0(c, t1, t2) => {
                let c = self.from_term(c);
                let t1 = self.from_term(t1);
                let t2 = self.from_term(t2);
                self.intern_term(TermNode::If0(c, t1, t2))
            }
            Term::Loop => self.intern_term(TermNode::Loop),
        }
    }

    /// Interns a boxed [`Value`].
    pub fn from_value(&mut self, v: &Value) -> ValueId {
        match v {
            Value::Num(n) => self.intern_value(ValueNode::Num(*n)),
            Value::Var(x) => self.intern_value(ValueNode::Var(x.clone())),
            Value::Add1 => self.intern_value(ValueNode::Add1),
            Value::Sub1 => self.intern_value(ValueNode::Sub1),
            Value::Lam(x, body) => {
                let body = self.from_term(body);
                self.intern_value(ValueNode::Lam(x.clone(), body))
            }
        }
    }

    /// Parses source text directly into the arena: a single pass that
    /// interns nodes as constructs complete, with no intermediate
    /// s-expression tree or boxed [`Term`]. Accepts exactly the grammar of
    /// [`parse_term`](crate::parse::parse_term) and produces the same term
    /// (structurally — differential tests pin this down), but skips the
    /// boxed pipeline's per-node `Box` and per-atom `String` allocations.
    ///
    /// # Errors
    ///
    /// Returns the parser's error for malformed input.
    pub fn parse(&mut self, src: &str) -> Result<TermId, crate::parse::ParseError> {
        crate::parse::parse_into(self, src)
    }

    /// Rebuilds the boxed tree for a term id (shared substructure is
    /// re-expanded).
    pub fn to_term(&self, id: TermId) -> Term {
        match self.term(id) {
            TermNode::Value(v) => Term::Value(self.to_value(*v)),
            TermNode::App(f, a) => {
                Term::App(Box::new(self.to_term(*f)), Box::new(self.to_term(*a)))
            }
            TermNode::Let(x, rhs, body) => Term::Let(
                x.clone(),
                Box::new(self.to_term(*rhs)),
                Box::new(self.to_term(*body)),
            ),
            TermNode::If0(c, t, e) => Term::If0(
                Box::new(self.to_term(*c)),
                Box::new(self.to_term(*t)),
                Box::new(self.to_term(*e)),
            ),
            TermNode::Loop => Term::Loop,
        }
    }

    /// Rebuilds the boxed value for a value id.
    pub fn to_value(&self, id: ValueId) -> Value {
        match self.value(id) {
            ValueNode::Num(n) => Value::Num(*n),
            ValueNode::Var(x) => Value::Var(x.clone()),
            ValueNode::Add1 => Value::Add1,
            ValueNode::Sub1 => Value::Sub1,
            ValueNode::Lam(x, body) => Value::Lam(x.clone(), Box::new(self.to_term(*body))),
        }
    }

    /// The number of AST nodes in the *tree* rooted at `id` (counting shared
    /// substructure once per occurrence, like [`Term::size`]).
    pub fn size(&self, id: TermId) -> usize {
        match self.term(id) {
            TermNode::Value(v) => self.value_size(*v),
            TermNode::App(f, a) => 1 + self.size(*f) + self.size(*a),
            TermNode::Let(_, rhs, body) => 1 + self.size(*rhs) + self.size(*body),
            TermNode::If0(c, t, e) => 1 + self.size(*c) + self.size(*t) + self.size(*e),
            TermNode::Loop => 1,
        }
    }

    fn value_size(&self, id: ValueId) -> usize {
        match self.value(id) {
            ValueNode::Lam(_, body) => 1 + self.size(*body),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::parse::parse_term;

    #[test]
    fn equal_terms_intern_to_equal_ids() {
        let mut a = TermArena::new();
        let t1 = parse_term("(let (x 1) (add1 x))").unwrap();
        let t2 = parse_term("(let (x 1) (add1 x))").unwrap();
        assert_eq!(a.from_term(&t1), a.from_term(&t2));
    }

    #[test]
    fn distinct_terms_intern_to_distinct_ids() {
        let mut a = TermArena::new();
        let id1 = a.from_term(&num(1));
        let id2 = a.from_term(&num(2));
        assert_ne!(id1, id2);
    }

    #[test]
    fn shared_substructure_is_stored_once() {
        // ((f x) (f x)): the operand tree equals the operator tree.
        let mut a = TermArena::new();
        let sub = app(var("f"), var("x"));
        let t = app(sub.clone(), sub);
        let before_then = a.num_nodes();
        let _ = a.from_term(&t);
        // f, x, (f x), and the outer app: the duplicate (f x) adds nothing.
        let nodes = a.num_nodes() - before_then;
        assert_eq!(nodes, 6); // values f, x; terms: f, x (as value terms), (f x), outer
    }

    #[test]
    fn roundtrips_through_boxed_form() {
        let mut a = TermArena::new();
        for src in [
            "(let (x 1) (add1 x))",
            "(lambda (f) (f (f 0)))",
            "(if0 (sub1 n) 1 ((fact (sub1 n)) n))",
            "(loop)",
            "-3",
        ] {
            let t = parse_term(src).unwrap();
            let id = a.from_term(&t);
            assert_eq!(a.to_term(id), t, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn parse_into_arena_matches_boxed_parse() {
        let mut a = TermArena::new();
        let id = a.parse("(let (x 1) (add1 x))").unwrap();
        assert_eq!(a.to_term(id), parse_term("(let (x 1) (add1 x))").unwrap());
        assert!(a.parse("(bad%").is_err());
    }

    #[test]
    fn size_matches_boxed_size() {
        let mut a = TermArena::new();
        for src in ["(let (x 1) (add1 x))", "(lambda (x) (x x))", "(loop)"] {
            let t = parse_term(src).unwrap();
            let id = a.from_term(&t);
            assert_eq!(a.size(id), t.size(), "size mismatch for {src}");
        }
    }

    #[test]
    fn arena_bytes_is_nonzero_after_interning() {
        let mut a = TermArena::new();
        assert_eq!(a.arena_bytes(), 0);
        a.from_term(&num(1));
        assert!(a.arena_bytes() > 0);
    }
}
