//! Combinators for building Λ terms programmatically.
//!
//! Every combinator returns a [`Term`] so they compose directly; value-level
//! constructors wrap themselves in [`Term::Value`]. Tests and workload
//! generators use these instead of the parser when the program is computed.
//!
//! ```
//! use cpsdfa_syntax::build::*;
//! // (let (x 1) (if0 x 0 (add1 x)))
//! let t = let_("x", num(1), if0(var("x"), num(0), app(add1(), var("x"))));
//! assert_eq!(t.to_string(), "(let (x 1) (if0 x 0 (add1 x)))");
//! ```

use crate::ast::{Term, Value};
use crate::ident::Ident;

/// A numeral value `n`.
pub fn num(n: i64) -> Term {
    Term::Value(Value::Num(n))
}

/// A variable reference `x`.
pub fn var(name: impl Into<Ident>) -> Term {
    Term::Value(Value::Var(name.into()))
}

/// The `add1` primitive as a value.
pub fn add1() -> Term {
    Term::Value(Value::Add1)
}

/// The `sub1` primitive as a value.
pub fn sub1() -> Term {
    Term::Value(Value::Sub1)
}

/// A λ-abstraction `(λx.M)`.
pub fn lam(param: impl Into<Ident>, body: Term) -> Term {
    Term::Value(Value::Lam(param.into(), Box::new(body)))
}

/// A λ-abstraction as a [`Value`], for contexts that need one.
pub fn lam_v(param: impl Into<Ident>, body: Term) -> Value {
    Value::Lam(param.into(), Box::new(body))
}

/// An application `(M N)`.
pub fn app(f: Term, arg: Term) -> Term {
    Term::App(Box::new(f), Box::new(arg))
}

/// A curried application `(M N₁ N₂ …)` = `((M N₁) N₂) …`.
///
/// # Panics
///
/// Panics if `args` is empty; a nullary application is not a Λ term.
pub fn apps(f: Term, args: impl IntoIterator<Item = Term>) -> Term {
    let mut it = args.into_iter();
    let first = it
        .next()
        .expect("apps requires at least one argument: Λ applications are unary");
    it.fold(app(f, first), app)
}

/// A let binding `(let (x M₁) M₂)`.
pub fn let_(x: impl Into<Ident>, rhs: Term, body: Term) -> Term {
    Term::Let(x.into(), Box::new(rhs), Box::new(body))
}

/// A conditional `(if0 M₀ M₁ M₂)`.
pub fn if0(cond: Term, then_: Term, else_: Term) -> Term {
    Term::If0(Box::new(cond), Box::new(then_), Box::new(else_))
}

/// The `loop` construct of §6.2.
pub fn loop_() -> Term {
    Term::Loop
}

/// The paper's `(+ M n)` abbreviation (proof of Theorem 5.2): `n` applications
/// of `add1` (or `sub1` for negative `n`) to `M`.
///
/// ```
/// use cpsdfa_syntax::build::*;
/// assert_eq!(plus_const(var("a"), 2).to_string(), "(add1 (add1 a))");
/// assert_eq!(plus_const(var("a"), -1).to_string(), "(sub1 a)");
/// assert_eq!(plus_const(var("a"), 0).to_string(), "a");
/// ```
pub fn plus_const(m: Term, n: i64) -> Term {
    let (prim, count): (fn() -> Term, i64) = if n >= 0 { (add1, n) } else { (sub1, -n) };
    (0..count).fold(m, |acc, _| app(prim(), acc))
}

/// Chains `(let (x₁ M₁) (let (x₂ M₂) … body))` from a list of bindings.
pub fn lets(bindings: impl IntoIterator<Item = (Ident, Term)>, body: Term) -> Term {
    let bindings: Vec<_> = bindings.into_iter().collect();
    bindings
        .into_iter()
        .rev()
        .fold(body, |acc, (x, rhs)| let_(x, rhs, acc))
}

/// The identity function `(λx.x)` with a chosen parameter name.
pub fn identity(param: impl Into<Ident>) -> Term {
    let p = param.into();
    lam(p.clone(), var(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apps_curries_left() {
        let t = apps(var("f"), [num(1), num(2)]);
        assert_eq!(t, app(app(var("f"), num(1)), num(2)));
    }

    #[test]
    #[should_panic(expected = "at least one argument")]
    fn apps_rejects_empty() {
        let _ = apps(var("f"), []);
    }

    #[test]
    fn lets_binds_in_order() {
        let t = lets(
            [(Ident::new("a"), num(1)), (Ident::new("b"), var("a"))],
            var("b"),
        );
        assert_eq!(t, let_("a", num(1), let_("b", var("a"), var("b"))));
    }

    #[test]
    fn plus_const_zero_is_identity() {
        assert_eq!(plus_const(var("x"), 0), var("x"));
    }

    #[test]
    fn identity_uses_given_name() {
        assert_eq!(identity("z"), lam("z", var("z")));
    }
}
