//! A fast, non-cryptographic hasher for the interner and arena memo tables.
//!
//! The pipeline's hash keys are tiny — short identifier strings and
//! few-word arena nodes — and the tables are process-internal, so SipHash's
//! DoS resistance buys nothing here while costing most of the lookup time.
//! This is the classic Fx multiply-rotate hash (as used by rustc): each
//! word is folded in with a rotate, xor, and multiply by a single odd
//! constant. Quality is plenty for interning workloads; speed is the point.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden-ratio family; odd, high avalanche on the top
/// bits, which `HashMap` uses for bucket selection.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one word, folded with rotate-xor-multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length into the tail word so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of("t%17"), hash_of("t%17"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
    }

    #[test]
    fn distinct_short_strings_hash_distinct() {
        // Not a collision-resistance claim — just a smoke test that the
        // tail handling distinguishes the shapes the interner sees.
        let names: Vec<String> = (0..1000).map(|i| format!("t%{i}")).collect();
        let hashes: std::collections::HashSet<u64> =
            names.iter().map(|s| hash_of(s.as_str())).collect();
        assert_eq!(hashes.len(), names.len());
    }

    #[test]
    fn prefix_and_padded_inputs_differ() {
        assert_ne!(hash_of("ab"), hash_of("ab\0"));
        assert_ne!(hash_of("abcdefgh"), hash_of("abcdefg"));
    }

    #[test]
    fn fxhashmap_roundtrips() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("x", 1);
        m.insert("y", 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.get("y"), Some(&2));
        assert_eq!(m.get("z"), None);
    }
}
