//! α-freshening: rename binders so that *all bound variables are unique* and
//! distinct from every free variable — the hygiene precondition the paper's
//! analyses place on programs (§2).
//!
//! The original name is kept as a prefix (`x` becomes `x%7`), so reports stay
//! readable.

use crate::ast::{Term, Value};
use crate::free::free_vars;
use crate::ident::{FreshGen, Ident};
use std::collections::HashMap;

/// Renames every binder in `term` to a globally fresh name, consistently
/// updating bound occurrences. Free variables are left untouched.
///
/// The result satisfies [`crate::free::has_unique_binders`] and is
/// α-equivalent to the input.
///
/// ```
/// use cpsdfa_syntax::{fresh::freshen, free::has_unique_binders, parse::parse_term};
/// let t = parse_term("(let (x 1) (let (x (add1 x)) x))").unwrap();
/// let (u, _) = freshen(&t);
/// assert!(has_unique_binders(&u));
/// ```
pub fn freshen(term: &Term) -> (Term, FreshGen) {
    let mut gen = FreshGen::new();
    let out = freshen_with(term, &mut gen);
    (out, gen)
}

/// Like [`freshen`] but threads an existing [`FreshGen`], so later passes
/// (A-normalization, CPS) can keep allocating non-colliding names.
pub fn freshen_with(term: &Term, gen: &mut FreshGen) -> Term {
    // Free variables must never be renamed, so scope maps only binders.
    let _fv = free_vars(term);
    let mut scope: HashMap<Ident, Vec<Ident>> = HashMap::new();
    rename_term(term, &mut scope, gen)
}

fn rename_term(term: &Term, scope: &mut HashMap<Ident, Vec<Ident>>, gen: &mut FreshGen) -> Term {
    match term {
        Term::Value(v) => Term::Value(rename_value(v, scope, gen)),
        Term::App(f, a) => Term::App(
            Box::new(rename_term(f, scope, gen)),
            Box::new(rename_term(a, scope, gen)),
        ),
        Term::Let(x, rhs, body) => {
            let rhs = rename_term(rhs, scope, gen);
            let fresh = gen.fresh(base_name(x));
            scope.entry(x.clone()).or_default().push(fresh.clone());
            let body = rename_term(body, scope, gen);
            scope.get_mut(x).expect("binder was pushed").pop();
            Term::Let(fresh, Box::new(rhs), Box::new(body))
        }
        Term::If0(c, t, e) => Term::If0(
            Box::new(rename_term(c, scope, gen)),
            Box::new(rename_term(t, scope, gen)),
            Box::new(rename_term(e, scope, gen)),
        ),
        Term::Loop => Term::Loop,
    }
}

fn rename_value(
    value: &Value,
    scope: &mut HashMap<Ident, Vec<Ident>>,
    gen: &mut FreshGen,
) -> Value {
    match value {
        Value::Var(x) => match scope.get(x).and_then(|v| v.last()) {
            Some(fresh) => Value::Var(fresh.clone()),
            None => Value::Var(x.clone()),
        },
        Value::Lam(x, body) => {
            let fresh = gen.fresh(base_name(x));
            scope.entry(x.clone()).or_default().push(fresh.clone());
            let body = rename_term(body, scope, gen);
            scope.get_mut(x).expect("binder was pushed").pop();
            Value::Lam(fresh, Box::new(body))
        }
        Value::Num(n) => Value::Num(*n),
        Value::Add1 => Value::Add1,
        Value::Sub1 => Value::Sub1,
    }
}

/// Strips a previous freshening suffix so repeated freshening does not grow
/// names (`x%3` freshens to `x%17`, not `x%3%17`).
fn base_name(x: &Ident) -> &str {
    match x.as_str().split_once('%') {
        Some((base, _)) if !base.is_empty() => base,
        _ => x.as_str(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::free::{free_vars, has_unique_binders};

    #[test]
    fn shadowed_binders_become_distinct() {
        let t = let_("x", num(1), let_("x", num(2), var("x")));
        let (u, _) = freshen(&t);
        assert!(has_unique_binders(&u));
        // The body variable refers to the inner binder.
        if let Term::Let(_, _, body) = &u {
            if let Term::Let(inner, _, innermost) = &**body {
                assert_eq!(**innermost, Term::Value(Value::Var(inner.clone())));
                return;
            }
        }
        panic!("shape changed by freshening");
    }

    #[test]
    fn free_variables_survive() {
        let t = app(var("f"), let_("x", num(1), app(var("f"), var("x"))));
        let (u, _) = freshen(&t);
        assert!(free_vars(&u).contains(&Ident::new("f")));
        assert_eq!(free_vars(&u).len(), 1);
    }

    #[test]
    fn lambda_parameters_are_renamed_consistently() {
        let t = lam("x", app(var("x"), lam("x", var("x"))));
        let (u, _) = freshen(&t);
        assert!(has_unique_binders(&u));
        match &u {
            Term::Value(Value::Lam(outer, body)) => match &**body {
                Term::App(f, a) => {
                    assert_eq!(**f, Term::Value(Value::Var(outer.clone())));
                    match &**a {
                        Term::Value(Value::Lam(inner, ib)) => {
                            assert_ne!(inner, outer);
                            assert_eq!(**ib, Term::Value(Value::Var(inner.clone())));
                        }
                        other => panic!("unexpected {other}"),
                    }
                }
                other => panic!("unexpected {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn base_names_do_not_accumulate_suffixes() {
        let t = let_("x", num(1), var("x"));
        let (u, _) = freshen(&t);
        let (w, _) = freshen(&u);
        if let Term::Let(x, _, _) = &w {
            assert_eq!(x.as_str().matches('%').count(), 1);
        } else {
            panic!("shape changed");
        }
    }

    #[test]
    fn idempotent_on_structure() {
        let t = if0(var("a"), lam("b", var("b")), loop_());
        let (u, _) = freshen(&t);
        assert_eq!(u.size(), t.size());
        assert_eq!(u.depth(), t.depth());
    }
}
