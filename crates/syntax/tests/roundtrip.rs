//! Property tests: printing then parsing is the identity on Λ terms, and
//! α-freshening preserves size/shape while establishing unique binders.

use cpsdfa_syntax::ast::{Term, Value};
use cpsdfa_syntax::free::has_unique_binders;
use cpsdfa_syntax::fresh::freshen;
use cpsdfa_syntax::parse::parse_term;
use proptest::prelude::*;

/// Strategy for source-level identifiers (no `%`, not keywords).
fn ident_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "a", "b", "c", "f", "g", "x", "y", "z", "acc", "n", "tmp", "fun-1", "lst?",
    ])
    .prop_map(str::to_owned)
}

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|n| Term::Value(Value::Num(n as i64))),
        ident_strategy().prop_map(|x| Term::Value(Value::Var(x.into()))),
        Just(Term::Value(Value::Add1)),
        Just(Term::Value(Value::Sub1)),
        Just(Term::Loop),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (ident_strategy(), inner.clone())
                .prop_map(|(x, b)| Term::Value(Value::Lam(x.into(), Box::new(b)))),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| Term::App(Box::new(f), Box::new(a))),
            (ident_strategy(), inner.clone(), inner.clone()).prop_map(|(x, r, b)| Term::Let(
                x.into(),
                Box::new(r),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Term::If0(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(t in term_strategy()) {
        let printed = t.to_string();
        let reparsed = parse_term(&printed)
            .unwrap_or_else(|e| panic!("printed term failed to parse: {printed}: {e}"));
        prop_assert_eq!(reparsed, t);
    }

    #[test]
    fn freshen_establishes_unique_binders(t in term_strategy()) {
        let (u, _) = freshen(&t);
        prop_assert!(has_unique_binders(&u));
        prop_assert_eq!(u.size(), t.size());
        prop_assert_eq!(u.depth(), t.depth());
        prop_assert_eq!(u.lambda_count(), t.lambda_count());
    }

    #[test]
    fn interned_parse_of_print_is_identity(t in term_strategy()) {
        // The direct-to-arena parser agrees with the boxed one: parsing a
        // printed term into the hash-consed arena and materializing it back
        // reproduces the term exactly.
        let printed = t.to_string();
        let mut arena = cpsdfa_syntax::arena::TermArena::new();
        let tid = arena.parse(&printed)
            .unwrap_or_else(|e| panic!("printed term failed arena parse: {printed}: {e}"));
        prop_assert_eq!(arena.to_term(tid), t);
    }

    #[test]
    fn freshen_is_stable_under_reprinting(t in term_strategy()) {
        // freshening, printing and reparsing yields a structurally equal term
        let (u, _) = freshen(&t);
        // Fresh names contain '%' which the parser rejects by design, so we
        // compare against the pretty printer only when no '%' appears.
        let printed = u.to_string();
        if !printed.contains('%') {
            prop_assert_eq!(parse_term(&printed).unwrap(), u);
        }
    }
}
