//! Robustness fuzzing for the parser: arbitrary byte soup must parse or
//! fail with a positioned error — never panic — and accepted inputs must
//! round-trip.

use cpsdfa_syntax::parse::{is_valid_ident, parse_term};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_strings(s in ".{0,120}") {
        let _ = parse_term(&s); // ok or Err — both fine, panic is not
    }

    #[test]
    fn parser_never_panics_on_paren_heavy_soup(
        s in "[()λa-z0-9 +.%;\\-]{0,200}"
    ) {
        let _ = parse_term(&s);
    }

    #[test]
    fn accepted_inputs_round_trip(s in "[()a-z0-9 \\-]{0,80}") {
        if let Ok(t) = parse_term(&s) {
            let printed = t.to_string();
            let again = parse_term(&printed)
                .unwrap_or_else(|e| panic!("printed form `{printed}` failed: {e}"));
            prop_assert_eq!(again, t);
        }
    }

    #[test]
    fn error_positions_are_in_bounds(s in ".{0,120}") {
        if let Err(e) = parse_term(&s) {
            prop_assert!(e.position <= s.len(), "position {} > len {}", e.position, s.len());
            prop_assert!(!e.message.is_empty());
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn ident_validity_is_stable_under_keywords(w in "[a-zA-Z0-9%+\\-]{1,12}") {
        // is_valid_ident must agree with the parser's acceptance of the
        // word as a bare variable.
        let as_var = parse_term(&w);
        let valid = is_valid_ident(&w);
        let is_literal = w.parse::<i64>().is_ok();
        let is_prim = w == "add1" || w == "sub1";
        if valid {
            prop_assert!(as_var.is_ok(), "valid ident `{w}` rejected");
        } else if !is_literal && !is_prim {
            prop_assert!(as_var.is_err(), "invalid ident `{w}` accepted");
        }
    }
}
