//! A minimal data-parallel map for corpus-scale driving of the analyzers.
//!
//! The experiment harness and benches analyze hundreds of generated
//! programs that are completely independent of each other, so corpus loops
//! are embarrassingly parallel. The build environment has no network access
//! to crates.io, so instead of `rayon` this module provides the primitives
//! the drivers need — an order-preserving [`par_map`] over
//! [`std::thread::scope`] plus its fault-isolated variant
//! [`par_map_isolated`] — behind the same call shape, chunking the input
//! into one contiguous slice per worker.
//!
//! Each worker runs whole analyses and owns all of its mutable state; in
//! particular every sparse 0CFA run builds its own
//! `cpsdfa_core::SetPool`, so pools stay single-threaded and lock-free by
//! construction (they are `!Sync` — built on `Rc` — which the compiler
//! enforces here).
//!
//! [`par_map_isolated`] adds per-item panic isolation (`catch_unwind`, so
//! one poisoned program no longer aborts a corpus sweep) and cooperative
//! cancellation via a shared [`AtomicBool`] — the same flag
//! `cpsdfa_core::govern::CancelToken::as_flag` exposes, kept as a plain
//! std type in these signatures so callers can drive a sweep without
//! constructing a token.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

/// The worker count used by [`par_map`]: the `CPSDFA_WORKERS` environment
/// variable if set to a parseable integer (clamped to at least 1, so `0`
/// means "sequential", not "panic"), otherwise the available hardware
/// parallelism, or 1 if neither can be determined. The experiment harness
/// records this value in its report header and trace output so runs on
/// different machines stay comparable.
///
/// This is a re-export shim over [`cpsdfa_core::worker_count`] — the
/// single parsing point for the knob, shared with the intra-program
/// parallel engine (`SolverMode::par_from_env`), so the corpus-level and
/// solver-level layers can never disagree about what the variable means.
pub fn worker_count() -> usize {
    cpsdfa_core::worker_count()
}

/// The fate of one input item under [`par_map_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParOutcome<R> {
    /// The worker finished the item.
    Done(R),
    /// The worker panicked on this item; the payload (stringified) is kept
    /// and every *other* item is unaffected.
    Panicked(String),
    /// The sweep was cancelled before this item started.
    Skipped,
}

impl<R> ParOutcome<R> {
    /// The result, if the item completed.
    pub fn done(self) -> Option<R> {
        match self {
            ParOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the item completed.
    pub fn is_done(&self) -> bool {
        matches!(self, ParOutcome::Done(_))
    }
}

/// Partial results of a fault-isolated sweep: one [`ParOutcome`] per input
/// item in input order, plus summary counts and the explicit
/// `interrupted` marker callers use to log a `harness.cancelled` counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParReport<R> {
    /// One outcome per input item, input order preserved.
    pub results: Vec<ParOutcome<R>>,
    /// How many items completed.
    pub completed: usize,
    /// How many items panicked.
    pub panicked: usize,
    /// Whether the sweep was cut short by the cancellation flag (some
    /// items are [`ParOutcome::Skipped`]).
    pub interrupted: bool,
}

impl<R> ParReport<R> {
    /// Consumes the report, yielding the completed results in input order
    /// (panicked and skipped items are dropped).
    pub fn into_done(self) -> Vec<R> {
        self.results
            .into_iter()
            .filter_map(ParOutcome::done)
            .collect()
    }
}

/// Renders a caught panic payload (the common `&str` / `String` cases)
/// for [`ParOutcome::Panicked`].
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Applies `f` to every element of `items` across [`worker_count`] scoped
/// threads, preserving input order in the result. Falls back to a plain
/// sequential map for trivially small inputs, so calls are cheap to leave
/// unconditional.
///
/// `f` must be `Sync` (shared by reference across workers) and is handed
/// `&T`; results are returned by value.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let report = par_map_isolated(items, None, f);
    report
        .results
        .into_iter()
        .map(|outcome| match outcome {
            ParOutcome::Done(r) => r,
            ParOutcome::Panicked(msg) => panic!("par_map worker panicked: {msg}"),
            ParOutcome::Skipped => unreachable!("no cancel flag, nothing skipped"),
        })
        .collect()
}

/// The fault-isolated sweep: like [`par_map`] but each item runs under
/// `catch_unwind` (a panic poisons only that item's slot) and workers
/// check `cancel` between items, marking everything not yet started as
/// [`ParOutcome::Skipped`] when it trips. Already-running items finish —
/// cancellation is cooperative, never preemptive — so every `Done` result
/// in the report is a complete, trustworthy answer.
pub fn par_map_isolated<T, R, F>(items: &[T], cancel: Option<&AtomicBool>, f: F) -> ParReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_isolated_in(items, worker_count(), cancel, f)
}

/// [`par_map_isolated`] with an explicit worker count (tests pin it to 1
/// to make cancellation order deterministic).
fn par_map_isolated_in<T, R, F>(
    items: &[T],
    workers: usize,
    cancel: Option<&AtomicBool>,
    f: F,
) -> ParReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len());
    let mut slots: Vec<Option<ParOutcome<R>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let run_one = |item: &T| -> ParOutcome<R> {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(r) => ParOutcome::Done(r),
            Err(payload) => ParOutcome::Panicked(payload_string(payload.as_ref())),
        }
    };
    let cancelled = |flag: Option<&AtomicBool>| flag.is_some_and(|c| c.load(Ordering::Acquire));
    if workers <= 1 {
        for (slot, item) in slots.iter_mut().zip(items) {
            if cancelled(cancel) {
                break;
            }
            *slot = Some(run_one(item));
        }
    } else {
        let chunk = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let run_one = &run_one;
            for (chunk_slots, chunk_items) in slots.chunks_mut(chunk).zip(items.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, item) in chunk_slots.iter_mut().zip(chunk_items) {
                        if cancelled(cancel) {
                            break;
                        }
                        *slot = Some(run_one(item));
                    }
                });
            }
        });
    }
    let results: Vec<ParOutcome<R>> = slots
        .into_iter()
        .map(|s| s.unwrap_or(ParOutcome::Skipped))
        .collect();
    let completed = results.iter().filter(|o| o.is_done()).count();
    let panicked = results
        .iter()
        .filter(|o| matches!(o, ParOutcome::Panicked(_)))
        .count();
    let interrupted = results.iter().any(|o| matches!(o, ParOutcome::Skipped));
    ParReport {
        results,
        completed,
        panicked,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_and_covers_every_item() {
        let items: Vec<u64> = (0..997).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_count_honors_the_env_override() {
        // Set/remove the variable in one test only: the test harness runs
        // tests concurrently, and `worker_count` reads the environment, so
        // sibling tests must not touch CPSDFA_WORKERS.
        std::env::set_var("CPSDFA_WORKERS", "3");
        assert_eq!(worker_count(), 3);
        std::env::set_var("CPSDFA_WORKERS", "0");
        assert_eq!(worker_count(), 1, "zero clamps to sequential");
        std::env::set_var("CPSDFA_WORKERS", "not-a-number");
        let fallback = worker_count();
        assert!(fallback >= 1, "unparseable values fall back");
        std::env::remove_var("CPSDFA_WORKERS");
        assert!(worker_count() >= 1);
    }

    #[test]
    fn runs_real_analyses_per_worker() {
        // Each worker builds its own programs and (inside zero_cfa) its own
        // set pool; results must match the sequential run exactly.
        let sizes: Vec<usize> = (1..=8).collect();
        let par: Vec<usize> = par_map(&sizes, |&n| {
            let p = cpsdfa_anf::AnfProgram::from_term(&crate::families::dispatch(n));
            p.lambda_labels().len()
        });
        assert_eq!(par, sizes);
    }

    #[test]
    fn isolated_sweep_survives_one_poisoned_item() {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..64).collect();
        let report = par_map_isolated(&items, None, |&x| {
            assert_ne!(x, 7, "poisoned item");
            x * 10
        });
        std::panic::set_hook(quiet);
        assert_eq!(report.completed, 63);
        assert_eq!(report.panicked, 1);
        assert!(!report.interrupted);
        for (i, outcome) in report.results.iter().enumerate() {
            if i == 7 {
                let ParOutcome::Panicked(msg) = outcome else {
                    panic!("item 7 should have panicked, got {outcome:?}");
                };
                assert!(msg.contains("poisoned item"), "payload kept: {msg}");
            } else {
                assert_eq!(*outcome, ParOutcome::Done(i as u32 * 10));
            }
        }
    }

    #[test]
    fn pre_cancelled_sweep_skips_everything() {
        let cancel = AtomicBool::new(true);
        let touched = AtomicUsize::new(0);
        let items: Vec<u32> = (0..32).collect();
        let report = par_map_isolated(&items, Some(&cancel), |&x| {
            touched.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(touched.load(Ordering::Relaxed), 0);
        assert_eq!(report.completed, 0);
        assert!(report.interrupted);
        assert!(report.results.iter().all(|o| *o == ParOutcome::Skipped));
        assert_eq!(report.into_done(), Vec::<u32>::new());
    }

    #[test]
    fn mid_sweep_cancel_returns_partial_results() {
        // One worker makes the order deterministic: cancel fires while the
        // third item runs, the prefix survives, and every later item is
        // skipped with the explicit marker.
        let cancel = AtomicBool::new(false);
        let items: Vec<u32> = (0..16).collect();
        let report = par_map_isolated_in(&items, 1, Some(&cancel), |&x| {
            if x == 2 {
                cancel.store(true, Ordering::Release);
            }
            x + 100
        });
        assert!(report.interrupted, "sweep was cut short");
        assert_eq!(report.completed, 3, "in-flight item 2 finishes");
        assert_eq!(report.results[2], ParOutcome::Done(102));
        assert!(report.results[3..]
            .iter()
            .all(|o| *o == ParOutcome::Skipped));
        assert_eq!(report.into_done(), vec![100, 101, 102]);
    }
}
