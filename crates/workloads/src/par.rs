//! A minimal data-parallel map for corpus-scale driving of the analyzers.
//!
//! The experiment harness and benches analyze hundreds of generated
//! programs that are completely independent of each other, so corpus loops
//! are embarrassingly parallel. The build environment has no network access
//! to crates.io, so instead of `rayon` this module provides the one
//! primitive the drivers need — an order-preserving [`par_map`] over
//! [`std::thread::scope`] — behind the same call shape, chunking the input
//! into one contiguous slice per worker.
//!
//! Each worker runs whole analyses and owns all of its mutable state; in
//! particular every sparse 0CFA run builds its own
//! `cpsdfa_core::SetPool`, so pools stay single-threaded and lock-free by
//! construction (they are `!Sync` — built on `Rc` — which the compiler
//! enforces here).

use std::num::NonZeroUsize;

/// The worker count used by [`par_map`]: the `CPSDFA_WORKERS` environment
/// variable if set to a parseable integer (clamped to at least 1, so `0`
/// means "sequential", not "panic"), otherwise the available hardware
/// parallelism, or 1 if neither can be determined. The experiment harness
/// records this value in its report header and trace output so runs on
/// different machines stay comparable.
pub fn worker_count() -> usize {
    if let Ok(raw) = std::env::var("CPSDFA_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Applies `f` to every element of `items` across [`worker_count`] scoped
/// threads, preserving input order in the result. Falls back to a plain
/// sequential map for trivially small inputs, so calls are cheap to leave
/// unconditional.
///
/// `f` must be `Sync` (shared by reference across workers) and is handed
/// `&T`; results are returned by value.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        for (slots, chunk_items) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_every_item() {
        let items: Vec<u64> = (0..997).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map::<u8, u8, _>(&[], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_count_honors_the_env_override() {
        // Set/remove the variable in one test only: the test harness runs
        // tests concurrently, and `worker_count` reads the environment, so
        // sibling tests must not touch CPSDFA_WORKERS.
        std::env::set_var("CPSDFA_WORKERS", "3");
        assert_eq!(worker_count(), 3);
        std::env::set_var("CPSDFA_WORKERS", "0");
        assert_eq!(worker_count(), 1, "zero clamps to sequential");
        std::env::set_var("CPSDFA_WORKERS", "not-a-number");
        let fallback = worker_count();
        assert!(fallback >= 1, "unparseable values fall back");
        std::env::remove_var("CPSDFA_WORKERS");
        assert!(worker_count() >= 1);
    }

    #[test]
    fn runs_real_analyses_per_worker() {
        // Each worker builds its own programs and (inside zero_cfa) its own
        // set pool; results must match the sequential run exactly.
        let sizes: Vec<usize> = (1..=8).collect();
        let par: Vec<usize> = par_map(&sizes, |&n| {
            let p = cpsdfa_anf::AnfProgram::from_term(&crate::families::dispatch(n));
            p.lambda_labels().len()
        });
        assert_eq!(par, sizes);
    }
}
