//! Edit scripts over Λ terms for the incremental-analysis experiments.
//!
//! An *edit script* is a deterministic sequence of single-site mutations of
//! a surface term — the kind of churn a watch-mode analyzer sees from an
//! editor: a constant tweaked, a variable renamed, a binding inserted or
//! deleted, branch arms swapped. Each step applies **exactly one** edit to
//! the previous step's term, so a differential harness can re-analyze after
//! every step and compare the warm fixpoint against a from-scratch solve.
//!
//! The kinds are chosen to exercise every rung of
//! `cpsdfa_core::incremental`'s warm cascade:
//!
//! | kind | expected rung |
//! |------|---------------|
//! | [`EditKind::ReplaceConst`] | Noop (constants do not steer control flow) |
//! | [`EditKind::RenameVar`] | Noop (the aligner is name-insensitive) |
//! | [`EditKind::ReplaceConstWithVar`] | Retract / Seeded (constraint set changes) |
//! | [`EditKind::InsertLeaf`] | Seeded (entity spaces shift) |
//! | [`EditKind::InsertLambda`] | Seeded (new flow introduced) |
//! | [`EditKind::SwapArms`] | Noop for constant arms; Cold when closures move |
//! | [`EditKind::DeleteBinding`] | Cold when the deleted binding had flow |
//!
//! Determinism: script generation is a pure function of the base term, the
//! kind sequence, and the seed.

use cpsdfa_syntax::build::{lam, let_, num, var};
use cpsdfa_syntax::{Ident, Term, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One kind of single-site program mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// Change one numeric literal to a different numeral.
    ReplaceConst,
    /// Rename one binder (and all its occurrences) to a fresh name.
    RenameVar,
    /// Replace one numeric literal with an occurrence of the free
    /// variable `z` — changes the constraint set without moving any
    /// binder.
    ReplaceConstWithVar,
    /// Insert `(let (eN c) …)` around the whole program — a leaf edit
    /// that shifts every label/variable index but adds no flow.
    InsertLeaf,
    /// Insert `(let (eN (λpN. pN)) …)` around the whole program — a new,
    /// unused procedure.
    InsertLambda,
    /// Swap the two arms of one `if0`.
    SwapArms,
    /// Delete one `let` whose variable is unused in its body (e.g. a
    /// previously inserted binding).
    DeleteBinding,
}

/// All kinds, in a corpus-friendly order: value-level edits first, then
/// structural ones, ending with the deletion that exercises the
/// non-monotone fallback.
pub const ALL_EDIT_KINDS: [EditKind; 7] = [
    EditKind::ReplaceConst,
    EditKind::RenameVar,
    EditKind::ReplaceConstWithVar,
    EditKind::InsertLeaf,
    EditKind::InsertLambda,
    EditKind::SwapArms,
    EditKind::DeleteBinding,
];

/// One applied step of a script: the kind and the term *after* the edit.
#[derive(Debug, Clone)]
pub struct EditStep {
    /// The mutation applied.
    pub kind: EditKind,
    /// The program after the mutation.
    pub term: Term,
}

/// A base term plus the edits applied to it, in order.
#[derive(Debug, Clone)]
pub struct EditScript {
    /// The unedited program.
    pub base: Term,
    /// Each applied edit with its resulting program.
    pub steps: Vec<EditStep>,
}

/// Generates a deterministic edit script: each requested kind is applied
/// (in order) to the previous step's term. Kinds with no applicable site
/// in the current term are skipped, so `steps.len() ≤ kinds.len()`.
pub fn edit_script(base: &Term, kinds: &[EditKind], seed: u64) -> EditScript {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh = FreshNames::over(base);
    let mut cur = base.clone();
    let mut steps = Vec::new();
    for &kind in kinds {
        if let Some(next) = apply_edit(&cur, kind, &mut rng, &mut fresh) {
            cur = next.clone();
            steps.push(EditStep { kind, term: next });
        }
    }
    EditScript {
        base: base.clone(),
        steps,
    }
}

/// Applies one edit of the given kind at a seeded-random applicable site.
/// Returns `None` when the term has no applicable site (e.g. no `if0` to
/// swap, no unused binding to delete).
pub fn apply_edit(
    term: &Term,
    kind: EditKind,
    rng: &mut StdRng,
    fresh: &mut FreshNames,
) -> Option<Term> {
    match kind {
        EditKind::ReplaceConst => {
            let n = count_consts(term);
            if n == 0 {
                return None;
            }
            let target = rng.gen_range(0..n);
            let delta = rng.gen_range(1..5i64);
            let mut t = term.clone();
            let mut k = 0usize;
            edit_values(&mut t, &mut |v| {
                if let Value::Num(c) = v {
                    if k == target {
                        *c += delta;
                    }
                    k += 1;
                }
            });
            Some(t)
        }
        EditKind::ReplaceConstWithVar => {
            // Reuses the conventional free input `z`; a term that *binds*
            // `z` cannot take this edit (a binder may not shadow a free
            // variable).
            if binder_names(term).contains(&Ident::from("z")) {
                return None;
            }
            let n = count_consts(term);
            if n == 0 {
                return None;
            }
            let target = rng.gen_range(0..n);
            let mut t = term.clone();
            let mut k = 0usize;
            edit_values(&mut t, &mut |v| {
                if let Value::Num(_) = v {
                    if k == target {
                        *v = Value::Var(Ident::from("z"));
                    }
                    k += 1;
                }
            });
            Some(t)
        }
        EditKind::RenameVar => {
            let binders: Vec<Ident> = binder_names(term).into_iter().collect();
            if binders.is_empty() {
                return None;
            }
            let old = binders[rng.gen_range(0..binders.len())].clone();
            let new = fresh.next("rv");
            // Binder names are globally unique in a well-formed program
            // (duplicate binders are rejected at indexing), so a global
            // rename of the name is exactly a scope-correct rename.
            let mut t = term.clone();
            rename_ident(&mut t, &old, &new);
            Some(t)
        }
        EditKind::InsertLeaf => {
            let c = rng.gen_range(-3..=3i64);
            Some(let_(fresh.next("e"), num(c), term.clone()))
        }
        EditKind::InsertLambda => {
            let p = fresh.next("p");
            Some(let_(fresh.next("e"), lam(p.clone(), var(p)), term.clone()))
        }
        EditKind::SwapArms => {
            let n = count_if0s(term);
            if n == 0 {
                return None;
            }
            let target = rng.gen_range(0..n);
            let mut t = term.clone();
            let mut k = 0usize;
            swap_nth_if0(&mut t, target, &mut k);
            Some(t)
        }
        EditKind::DeleteBinding => {
            let candidates = unused_bindings(term);
            if candidates.is_empty() {
                return None;
            }
            let target = candidates[rng.gen_range(0..candidates.len())];
            let mut k = 0usize;
            delete_nth_let(term, target, &mut k)
        }
    }
}

/// A fresh-name source that avoids every identifier occurring in the base
/// term (binders, occurrences, and free variables alike).
#[derive(Debug, Clone)]
pub struct FreshNames {
    taken: BTreeSet<String>,
    counter: u32,
}

impl FreshNames {
    /// Collects the identifiers of `term` as the avoid-set.
    pub fn over(term: &Term) -> FreshNames {
        let mut taken = BTreeSet::new();
        collect_idents(term, &mut taken);
        FreshNames { taken, counter: 0 }
    }

    /// A fresh identifier with the given prefix.
    pub fn next(&mut self, prefix: &str) -> Ident {
        loop {
            let name = format!("{prefix}{}", self.counter);
            self.counter += 1;
            if self.taken.insert(name.clone()) {
                return Ident::from(name.as_str());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Term walking helpers
// ---------------------------------------------------------------------------

/// Applies `f` to every `Value` node, outermost first (recursing into λ
/// bodies after `f` has seen the λ).
fn edit_values(t: &mut Term, f: &mut impl FnMut(&mut Value)) {
    match t {
        Term::Value(v) => {
            f(v);
            if let Value::Lam(_, body) = v {
                edit_values(body, f);
            }
        }
        Term::App(a, b) => {
            edit_values(a, f);
            edit_values(b, f);
        }
        Term::Let(_, rhs, body) => {
            edit_values(rhs, f);
            edit_values(body, f);
        }
        Term::If0(c, th, el) => {
            edit_values(c, f);
            edit_values(th, f);
            edit_values(el, f);
        }
        Term::Loop => {}
    }
}

fn count_consts(t: &Term) -> usize {
    let mut n = 0usize;
    let mut t = t.clone();
    edit_values(&mut t, &mut |v| {
        if matches!(v, Value::Num(_)) {
            n += 1;
        }
    });
    n
}

fn collect_idents(t: &Term, out: &mut BTreeSet<String>) {
    match t {
        Term::Value(v) => collect_value_idents(v, out),
        Term::App(a, b) => {
            collect_idents(a, out);
            collect_idents(b, out);
        }
        Term::Let(x, rhs, body) => {
            out.insert(x.as_str().to_string());
            collect_idents(rhs, out);
            collect_idents(body, out);
        }
        Term::If0(c, th, el) => {
            collect_idents(c, out);
            collect_idents(th, out);
            collect_idents(el, out);
        }
        Term::Loop => {}
    }
}

fn collect_value_idents(v: &Value, out: &mut BTreeSet<String>) {
    match v {
        Value::Var(x) => {
            out.insert(x.as_str().to_string());
        }
        Value::Lam(p, body) => {
            out.insert(p.as_str().to_string());
            collect_idents(body, out);
        }
        _ => {}
    }
}

fn binder_names(t: &Term) -> BTreeSet<Ident> {
    fn go(t: &Term, out: &mut BTreeSet<Ident>) {
        match t {
            Term::Value(Value::Lam(p, body)) => {
                out.insert(p.clone());
                go(body, out);
            }
            Term::Value(_) | Term::Loop => {}
            Term::App(a, b) => {
                go(a, out);
                go(b, out);
            }
            Term::Let(x, rhs, body) => {
                out.insert(x.clone());
                go(rhs, out);
                go(body, out);
            }
            Term::If0(c, th, el) => {
                go(c, out);
                go(th, out);
                go(el, out);
            }
        }
    }
    let mut out = BTreeSet::new();
    go(t, &mut out);
    out
}

fn rename_ident(t: &mut Term, old: &Ident, new: &Ident) {
    match t {
        Term::Value(v) => rename_value(v, old, new),
        Term::App(a, b) => {
            rename_ident(a, old, new);
            rename_ident(b, old, new);
        }
        Term::Let(x, rhs, body) => {
            if x == old {
                *x = new.clone();
            }
            rename_ident(rhs, old, new);
            rename_ident(body, old, new);
        }
        Term::If0(c, th, el) => {
            rename_ident(c, old, new);
            rename_ident(th, old, new);
            rename_ident(el, old, new);
        }
        Term::Loop => {}
    }
}

fn rename_value(v: &mut Value, old: &Ident, new: &Ident) {
    match v {
        Value::Var(x) if x == old => *x = new.clone(),
        Value::Lam(p, body) => {
            if p == old {
                *p = new.clone();
            }
            rename_ident(body, old, new);
        }
        _ => {}
    }
}

fn count_if0s(t: &Term) -> usize {
    match t {
        Term::Value(Value::Lam(_, body)) => count_if0s(body),
        Term::Value(_) | Term::Loop => 0,
        Term::App(a, b) => count_if0s(a) + count_if0s(b),
        Term::Let(_, rhs, body) => count_if0s(rhs) + count_if0s(body),
        Term::If0(c, th, el) => 1 + count_if0s(c) + count_if0s(th) + count_if0s(el),
    }
}

fn swap_nth_if0(t: &mut Term, target: usize, k: &mut usize) {
    match t {
        Term::Value(Value::Lam(_, body)) => swap_nth_if0(body, target, k),
        Term::Value(_) | Term::Loop => {}
        Term::App(a, b) => {
            swap_nth_if0(a, target, k);
            swap_nth_if0(b, target, k);
        }
        Term::Let(_, rhs, body) => {
            swap_nth_if0(rhs, target, k);
            swap_nth_if0(body, target, k);
        }
        Term::If0(c, th, el) => {
            if *k == target {
                *k += 1;
                std::mem::swap(th, el);
                return;
            }
            *k += 1;
            swap_nth_if0(c, target, k);
            swap_nth_if0(th, target, k);
            swap_nth_if0(el, target, k);
        }
    }
}

/// Occurrence count of `x` in `t` (binder names are globally unique, so
/// this is exactly the in-scope use count).
fn occurrences(t: &Term, x: &Ident) -> usize {
    match t {
        Term::Value(Value::Var(y)) => usize::from(y == x),
        Term::Value(Value::Lam(_, body)) => occurrences(body, x),
        Term::Value(_) | Term::Loop => 0,
        Term::App(a, b) => occurrences(a, x) + occurrences(b, x),
        Term::Let(_, rhs, body) => occurrences(rhs, x) + occurrences(body, x),
        Term::If0(c, th, el) => occurrences(c, x) + occurrences(th, x) + occurrences(el, x),
    }
}

/// Preorder indices of `let`s whose bound variable is never used.
fn unused_bindings(t: &Term) -> Vec<usize> {
    fn go(t: &Term, k: &mut usize, out: &mut Vec<usize>) {
        match t {
            Term::Value(Value::Lam(_, body)) => go(body, k, out),
            Term::Value(_) | Term::Loop => {}
            Term::App(a, b) => {
                go(a, k, out);
                go(b, k, out);
            }
            Term::Let(x, rhs, body) => {
                if occurrences(body, x) == 0 {
                    out.push(*k);
                }
                *k += 1;
                go(rhs, k, out);
                go(body, k, out);
            }
            Term::If0(c, th, el) => {
                go(c, k, out);
                go(th, k, out);
                go(el, k, out);
            }
        }
    }
    let mut out = Vec::new();
    let mut k = 0usize;
    go(t, &mut k, &mut out);
    out
}

/// Replaces the `target`-th `let` (preorder) with its body.
fn delete_nth_let(t: &Term, target: usize, k: &mut usize) -> Option<Term> {
    match t {
        Term::Value(Value::Lam(p, body)) => {
            delete_nth_let(body, target, k).map(|b| Term::Value(Value::Lam(p.clone(), Box::new(b))))
        }
        Term::Value(_) | Term::Loop => None,
        Term::App(a, b) => {
            if let Some(na) = delete_nth_let(a, target, k) {
                return Some(Term::App(Box::new(na), b.clone()));
            }
            delete_nth_let(b, target, k).map(|nb| Term::App(a.clone(), Box::new(nb)))
        }
        Term::Let(x, rhs, body) => {
            if *k == target {
                *k += 1;
                return Some((**body).clone());
            }
            *k += 1;
            if let Some(nr) = delete_nth_let(rhs, target, k) {
                return Some(Term::Let(x.clone(), Box::new(nr), body.clone()));
            }
            delete_nth_let(body, target, k)
                .map(|nb| Term::Let(x.clone(), rhs.clone(), Box::new(nb)))
        }
        Term::If0(c, th, el) => {
            if let Some(nc) = delete_nth_let(c, target, k) {
                return Some(Term::If0(Box::new(nc), th.clone(), el.clone()));
            }
            if let Some(nt) = delete_nth_let(th, target, k) {
                return Some(Term::If0(c.clone(), Box::new(nt), el.clone()));
            }
            delete_nth_let(el, target, k).map(|ne| Term::If0(c.clone(), th.clone(), Box::new(ne)))
        }
    }
}
