//! The paper's worked examples, verbatim (modulo the encoding of initial
//! abstract stores as `let` bindings — see `DESIGN.md`).
//!
//! Each function returns concrete syntax; pair with
//! [`cpsdfa_anf::AnfProgram::parse`]. The free variable `z` plays the role
//! of the paper's "unknown input" entries (`z ↦ (⊤, ∅)`), which is exactly
//! the analyzers' default seeding for free variables.

/// Theorem 5.1's program Π1 — `(let (a1 (f 1)) (let (a2 (f 2)) a1))` with
/// `f` bound to the identity `(λx.x)`, as in the theorem's initial store
/// `f ↦ (⊥, {(cle x, x)})`.
///
/// *Expected*: the direct analysis proves `a1 = 1`; the syntactic-CPS
/// analysis confuses the two returns of `f` and yields `a1 = ⊤`.
pub const THEOREM_5_1: &str = "(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))";

/// Theorem 5.2, first case — branch correlation:
/// `(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))`.
///
/// *Expected*: the direct analysis merges `a1 ∈ {0,1}` to ⊤ and loses
/// `a2`; both CPS analyses analyze the second conditional once per path
/// and prove `a2 = 3`.
pub const THEOREM_5_2_CASE_1: &str =
    "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))";

/// Theorem 5.2, second case — callee-result correlation. The paper's
/// initial store binds `f` to the two closures `(λd0.0)` and `(λd1.1)`;
/// we bind it with an unknown conditional:
/// `a2 = (if0 a1 5 (if0 (sub1 a1) 5 6))` is `5` on every path.
///
/// *Expected*: direct analysis joins the two call results (`a1 = ⊤`) and
/// loses `a2`; CPS analyses duplicate the continuation per callee and
/// prove `a2 = 5`.
pub const THEOREM_5_2_CASE_2: &str = "(let (f (if0 z (lambda (d0) 0) (lambda (d1) 1))) \
     (let (a1 (f 3)) \
       (let (a2 (if0 a1 5 (let (s (sub1 a1)) (if0 s 5 6)))) a2)))";

/// Shivers' 0CFA false-return example (§6.1, citing [16, p.33]): the same
/// shape as Theorem 5.1 — two calls to one procedure whose returns a CPS
/// analysis merges.
pub const SHIVERS_FALSE_RETURN: &str =
    "(let (id (lambda (x) x)) (let (a (id 10)) (let (b (id 20)) (add1 a))))";

/// §2's normalization example: `(f (let (x 1) (g x)))`.
pub const SECTION_2_NORMALIZATION: &str = "(f (let (x 1) (g x)))";

/// §6.2's loop program: binds a `loop` value and then branches on it — the
/// semantic-CPS analysis must apply the continuation to every natural
/// number.
pub const SECTION_6_2_LOOP: &str = "(let (x (loop)) (let (a (if0 x 1 2)) (add1 a)))";

/// Ω — self-application; exercises the §4.4 loop-detection rule of all
/// three analyzers.
pub const OMEGA: &str = "(let (w (lambda (x) (x x))) (let (r (w w)) r))";

/// All named paper examples with identifiers, for harness iteration.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("theorem-5.1", THEOREM_5_1),
        ("theorem-5.2-case-1", THEOREM_5_2_CASE_1),
        ("theorem-5.2-case-2", THEOREM_5_2_CASE_2),
        ("shivers-false-return", SHIVERS_FALSE_RETURN),
        ("section-2-normalization", SECTION_2_NORMALIZATION),
        ("section-6.2-loop", SECTION_6_2_LOOP),
        ("omega", OMEGA),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_anf::AnfProgram;
    use cpsdfa_cps::CpsProgram;

    #[test]
    fn every_example_parses_and_normalizes() {
        for (name, src) in all() {
            let p = AnfProgram::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.num_vars() > 0, "{name} has no variables");
            // and transforms
            let c = CpsProgram::from_anf(&p);
            assert!(c.num_vars() >= p.num_vars() - p.free_vars().len());
        }
    }

    #[test]
    fn theorem_examples_have_expected_variables() {
        let p = AnfProgram::parse(THEOREM_5_1).unwrap();
        assert!(p.var_named("a1").is_some() && p.var_named("a2").is_some());
        let p = AnfProgram::parse(THEOREM_5_2_CASE_2).unwrap();
        assert!(p.var_named("a1").is_some() && p.var_named("a2").is_some());
        assert_eq!(p.lambda_labels().len(), 2);
    }

    #[test]
    fn loop_example_uses_extension() {
        let p = AnfProgram::parse(SECTION_6_2_LOOP).unwrap();
        assert!(p.root().to_term().uses_loop());
    }
}
