//! Seeded random generation of well-behaved Λ programs.
//!
//! The differential and property experiments (E0, E3, E4) need corpora of
//! programs that (a) never get dynamically stuck and (b) always terminate,
//! so every interpreter/analyzer pair can be compared without filtering.
//! Both properties are guaranteed *by construction*: the generator produces
//! simply-typed terms (`τ ::= num | τ → τ`), and the simply-typed fragment
//! of Λ is strongly normalizing.
//!
//! Determinism: the generator is a pure function of the [`GenConfig`] and
//! the seed, so corpora are reproducible across runs and machines.

use cpsdfa_syntax::build;
use cpsdfa_syntax::{Ident, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Simple types for generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// A number.
    Num,
    /// A function.
    Fun(Rc<Ty>, Rc<Ty>),
}

impl Ty {
    fn fun(a: Ty, b: Ty) -> Ty {
        Ty::Fun(Rc::new(a), Rc::new(b))
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum term depth.
    pub max_depth: usize,
    /// Maximum order of generated function types (1 = first-order
    /// functions over numbers, 2 = functions over those, …).
    pub max_order: usize,
    /// Numeric literals are drawn from `-lit_range..=lit_range`.
    pub lit_range: i64,
    /// Probability (percent) of choosing a compound form over a value when
    /// both are allowed.
    pub compound_bias: u32,
    /// Probability (percent) of emitting a *correlated diamond* —
    /// `(let (a (if0 C n₁ n₂)) (if0 a M M))` — the shape where
    /// continuation duplication gains precision (Theorem 5.2). Without this
    /// bias random programs almost never produce strict Theorem 5.4/5.2
    /// instances.
    pub diamond_bias: u32,
    /// Probability (percent) that a numeric leaf is the free *input*
    /// variable `z` instead of a literal. `0` keeps programs closed (the
    /// default, needed by the differential interpreter tests); nonzero
    /// values introduce the unknowns that make precision differences
    /// between the analyzers possible at all.
    pub free_inputs: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 6,
            max_order: 2,
            lit_range: 3,
            compound_bias: 65,
            diamond_bias: 10,
            free_inputs: 0,
        }
    }
}

/// Generates one closed, well-typed, terminating program of type `num`.
///
/// ```
/// use cpsdfa_workloads::random::{generate, GenConfig};
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_interp::{run_direct, Fuel};
///
/// let t = generate(42, &GenConfig::default());
/// let p = AnfProgram::from_term(&t);
/// // Simply-typed ⇒ runs to a number without errors.
/// assert!(run_direct(&p, &[], Fuel::default())?.value.as_num().is_some());
/// # Ok::<(), cpsdfa_interp::InterpError>(())
/// ```
pub fn generate(seed: u64, config: &GenConfig) -> Term {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        config: config.clone(),
        fresh: 0,
    };
    let mut env = Vec::new();
    g.term(&Ty::Num, &mut env, config.max_depth)
}

/// Generates a corpus of `n` programs from consecutive seeds.
pub fn corpus(base_seed: u64, n: usize, config: &GenConfig) -> Vec<Term> {
    (0..n as u64)
        .map(|i| generate(base_seed + i, config))
        .collect()
}

/// A configuration for *open* programs with unknown inputs and correlated
/// diamonds — the corpus used by the precision experiments (E3/E4). Closed
/// programs are analyzed exactly by every analyzer, so precision
/// differences require unknowns.
pub fn open_config() -> GenConfig {
    GenConfig {
        diamond_bias: 30,
        free_inputs: 35,
        ..GenConfig::default()
    }
}

struct Gen {
    rng: StdRng,
    config: GenConfig,
    fresh: u64,
}

impl Gen {
    fn fresh_var(&mut self, hint: &str) -> Ident {
        self.fresh += 1;
        Ident::new(format!("{hint}{}", self.fresh))
    }

    /// A random type of bounded order (biased toward `num`).
    fn ty(&mut self, max_order: usize) -> Ty {
        if max_order == 0 || self.rng.gen_range(0..100) < 60 {
            Ty::Num
        } else {
            let a = self.ty(max_order - 1);
            let b = self.ty(max_order - 1);
            Ty::fun(a, b)
        }
    }

    fn vars_of<'e>(env: &'e [(Ident, Ty)], ty: &Ty) -> Vec<&'e Ident> {
        env.iter()
            .filter(|(_, t)| t == ty)
            .map(|(x, _)| x)
            .collect()
    }

    /// Generates a term of type `ty` under `env`.
    fn term(&mut self, ty: &Ty, env: &mut Vec<(Ident, Ty)>, depth: usize) -> Term {
        let compound_ok = depth > 0;
        if !compound_ok || self.rng.gen_range(0..100) >= self.config.compound_bias {
            return self.value(ty, env, depth);
        }
        if *ty == Ty::Num && depth >= 2 && self.rng.gen_range(0..100) < self.config.diamond_bias {
            return self.correlated_diamond(env, depth);
        }
        match self.rng.gen_range(0..3) {
            // (let (x N) M)
            0 => {
                let xty = self.ty(self.config.max_order);
                let rhs = self.term(&xty, env, depth - 1);
                let x = self.fresh_var("v");
                env.push((x.clone(), xty));
                let body = self.term(ty, env, depth - 1);
                env.pop();
                build::let_(x, rhs, body)
            }
            // (if0 C M M)
            1 => {
                let c = self.term(&Ty::Num, env, depth - 1);
                let t = self.term(ty, env, depth - 1);
                let e = self.term(ty, env, depth - 1);
                build::if0(c, t, e)
            }
            // (F A) for a random argument type
            _ => {
                let aty = self.ty(self.config.max_order.saturating_sub(1));
                // add1/sub1 are the only primitive num → num functions;
                // prefer them for num → num to keep programs arithmetic.
                if aty == Ty::Num && *ty == Ty::Num && self.rng.gen_bool(0.5) {
                    let prim = if self.rng.gen_bool(0.5) {
                        build::add1()
                    } else {
                        build::sub1()
                    };
                    let arg = self.term(&Ty::Num, env, depth - 1);
                    return build::app(prim, arg);
                }
                let fty = Ty::fun(aty.clone(), ty.clone());
                let f = self.term(&fty, env, depth - 1);
                let a = self.term(&aty, env, depth - 1);
                build::app(f, a)
            }
        }
    }

    /// `(let (a (if0 C n₁ n₂)) (if0 a M₁ M₂))` with distinct constants
    /// `n₁ ≠ n₂` and arms that mention `a` — the Theorem 5.2 shape.
    fn correlated_diamond(&mut self, env: &mut Vec<(Ident, Ty)>, depth: usize) -> Term {
        let c = self.term(&Ty::Num, env, depth - 2);
        let n1 = self
            .rng
            .gen_range(-self.config.lit_range..=self.config.lit_range);
        let mut n2 = self
            .rng
            .gen_range(-self.config.lit_range..=self.config.lit_range);
        if n2 == n1 {
            n2 += 1;
        }
        let a = self.fresh_var("a");
        env.push((a.clone(), Ty::Num));
        let then_ = build::plus_const(build::var(a.clone()), 1);
        let else_ = self.term(&Ty::Num, env, depth - 2);
        env.pop();
        build::let_(
            a.clone(),
            build::if0(c, build::num(n1), build::num(n2)),
            build::if0(build::var(a), then_, else_),
        )
    }

    /// Generates a syntactic value of type `ty`.
    fn value(&mut self, ty: &Ty, env: &mut Vec<(Ident, Ty)>, depth: usize) -> Term {
        // Prefer a variable of the right type when available.
        let candidates = Self::vars_of(env, ty);
        if !candidates.is_empty() && self.rng.gen_bool(0.5) {
            let i = self.rng.gen_range(0..candidates.len());
            return build::var(candidates[i].clone());
        }
        match ty {
            Ty::Num => {
                if self.rng.gen_range(0..100) < self.config.free_inputs {
                    return build::var("z");
                }
                let n = self
                    .rng
                    .gen_range(-self.config.lit_range..=self.config.lit_range);
                build::num(n)
            }
            Ty::Fun(a, b) => {
                if **a == Ty::Num && **b == Ty::Num && self.rng.gen_bool(0.25) {
                    return if self.rng.gen_bool(0.5) {
                        build::add1()
                    } else {
                        build::sub1()
                    };
                }
                let x = self.fresh_var("p");
                env.push((x.clone(), (**a).clone()));
                let body = self.term(b, env, depth.saturating_sub(1));
                env.pop();
                build::lam(x, body)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_anf::AnfProgram;
    use cpsdfa_cps::CpsProgram;
    use cpsdfa_interp::{run_direct, run_semcps, run_syncps, Fuel};
    use cpsdfa_syntax::free::is_closed;

    #[test]
    fn generation_is_deterministic() {
        let c = GenConfig::default();
        assert_eq!(generate(7, &c), generate(7, &c));
        assert_ne!(generate(7, &c), generate(8, &c));
    }

    #[test]
    fn generated_programs_are_closed_by_default() {
        for t in corpus(0, 50, &GenConfig::default()) {
            assert!(is_closed(&t), "open term generated: {t}");
        }
    }

    #[test]
    fn open_config_produces_programs_with_inputs() {
        let open = corpus(0, 50, &open_config());
        assert!(
            open.iter().any(|t| !is_closed(t)),
            "no open programs generated"
        );
        // and they still run with z supplied
        for t in &open {
            let p = AnfProgram::from_term(t);
            let r = run_direct(
                &p,
                &[(cpsdfa_syntax::Ident::new("z"), 1)],
                Fuel::new(200_000),
            );
            assert!(r.is_ok(), "open program stuck: {t}: {r:?}");
        }
    }

    #[test]
    fn generated_programs_run_on_all_three_interpreters() {
        for (i, t) in corpus(100, 60, &GenConfig::default())
            .into_iter()
            .enumerate()
        {
            let p = AnfProgram::from_term(&t);
            let fuel = Fuel::new(200_000);
            let d = run_direct(&p, &[], fuel).unwrap_or_else(|e| panic!("direct #{i}: {e}\n{t}"));
            let s = run_semcps(&p, &[], fuel).unwrap_or_else(|e| panic!("semcps #{i}: {e}\n{t}"));
            let c = CpsProgram::from_anf(&p);
            let m = run_syncps(&c, &[], fuel).unwrap_or_else(|e| panic!("syncps #{i}: {e}\n{t}"));
            // and they agree on numeric answers (Lemmas 3.1, 3.3)
            assert_eq!(d.value.as_num(), s.value.as_num(), "#{i}: {t}");
            assert_eq!(d.value.as_num(), m.value.as_num(), "#{i}: {t}");
        }
    }

    #[test]
    fn corpus_has_varied_sizes() {
        let sizes: Vec<usize> = corpus(0, 30, &GenConfig::default())
            .iter()
            .map(Term::size)
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "all programs identical in size");
    }

    #[test]
    fn deeper_configs_make_bigger_programs() {
        let small = GenConfig {
            max_depth: 3,
            ..GenConfig::default()
        };
        let large = GenConfig {
            max_depth: 9,
            ..GenConfig::default()
        };
        let avg = |cfg: &GenConfig| -> f64 {
            let c = corpus(0, 40, cfg);
            c.iter().map(|t| t.size() as f64).sum::<f64>() / c.len() as f64
        };
        assert!(avg(&large) > avg(&small));
    }
}
