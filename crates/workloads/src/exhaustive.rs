//! Exhaustive small-scope enumeration of Λ terms.
//!
//! Random corpora sample the program space; this module *enumerates all of
//! it* up to a size bound, over a small vocabulary (the constants `0`/`1`,
//! the input `z`, `add1`, and scope-correct variables with canonical
//! names). The small-scope experiment (E13) checks the paper's orderings on
//! every one of these programs — a bounded-exhaustive verification in the
//! spirit of the "small scope hypothesis": analyzer bugs that exist tend to
//! show up on tiny programs.
//!
//! Enumeration is scope-aware (bound variables are drawn from the
//! enclosing binders, named `e0`, `e1`, … by de Bruijn level), so every
//! enumerated term is well-scoped with at most the free variable `z`.

use cpsdfa_syntax::ast::{Term, Value};
use cpsdfa_syntax::Ident;
use std::collections::HashMap;
use std::rc::Rc;

/// Enumerates every term with exactly `1..=max_size` AST nodes over the
/// small vocabulary. Deterministic and duplicate-free.
///
/// Sizes grow quickly: `max_size = 6` yields a few thousand programs,
/// `max_size = 7` tens of thousands. [`count_terms`] is cheap if you only
/// need the census size.
///
/// ```
/// use cpsdfa_workloads::exhaustive::enumerate_terms;
/// let all = enumerate_terms(3);
/// // e.g. `(add1 z)` is among the 3-node programs
/// assert!(all.iter().any(|t| t.to_string() == "(add1 z)"));
/// // every enumerated term is well-scoped (free vars ⊆ {z})
/// for t in &all {
///     for x in cpsdfa_syntax::free::free_vars(t) {
///         assert_eq!(x.as_str(), "z");
///     }
/// }
/// ```
pub fn enumerate_terms(max_size: usize) -> Vec<Term> {
    let mut memo = Memo::default();
    let mut out = Vec::new();
    for n in 1..=max_size {
        out.extend(memo.terms(n, 0).iter().cloned());
    }
    out
}

/// The number of terms [`enumerate_terms`] would return, without
/// materializing them twice.
pub fn count_terms(max_size: usize) -> usize {
    let mut memo = Memo::default();
    (1..=max_size).map(|n| memo.terms(n, 0).len()).sum()
}

fn env_name(level: usize) -> Ident {
    Ident::new(format!("e{level}"))
}

#[derive(Default)]
struct Memo {
    cache: HashMap<(usize, usize), Rc<Vec<Term>>>,
}

impl Memo {
    /// All terms with exactly `size` nodes under `k` enclosing binders.
    fn terms(&mut self, size: usize, k: usize) -> Rc<Vec<Term>> {
        if let Some(hit) = self.cache.get(&(size, k)) {
            return hit.clone();
        }
        let mut out: Vec<Term> = Vec::new();
        if size == 1 {
            out.push(Term::Value(Value::Num(0)));
            out.push(Term::Value(Value::Num(1)));
            out.push(Term::Value(Value::Add1));
            out.push(Term::Value(Value::Var(Ident::new("z"))));
            for lvl in 0..k {
                out.push(Term::Value(Value::Var(env_name(lvl))));
            }
        } else {
            // (λ e_k . body)
            for body in self.terms(size - 1, k + 1).iter() {
                out.push(Term::Value(Value::Lam(env_name(k), Box::new(body.clone()))));
            }
            // (f a)
            for i in 1..size - 1 {
                let fs = self.terms(i, k);
                let args = self.terms(size - 1 - i, k);
                for f in fs.iter() {
                    for a in args.iter() {
                        out.push(Term::App(Box::new(f.clone()), Box::new(a.clone())));
                    }
                }
            }
            // (let (e_k rhs) body)
            for i in 1..size - 1 {
                let rhss = self.terms(i, k);
                let bodies = self.terms(size - 1 - i, k + 1);
                for r in rhss.iter() {
                    for b in bodies.iter() {
                        out.push(Term::Let(
                            env_name(k),
                            Box::new(r.clone()),
                            Box::new(b.clone()),
                        ));
                    }
                }
            }
            // (if0 c t e)
            if size >= 4 {
                for i in 1..size - 2 {
                    for j in 1..size - 1 - i {
                        let cs = self.terms(i, k);
                        let ts = self.terms(j, k);
                        let es = self.terms(size - 1 - i - j, k);
                        for c in cs.iter() {
                            for t in ts.iter() {
                                for e in es.iter() {
                                    out.push(Term::If0(
                                        Box::new(c.clone()),
                                        Box::new(t.clone()),
                                        Box::new(e.clone()),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        let rc = Rc::new(out);
        self.cache.insert((size, k), rc.clone());
        rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_syntax::free::free_vars;
    use std::collections::HashSet;

    #[test]
    fn counts_are_consistent_with_enumeration() {
        for n in 1..=5 {
            assert_eq!(count_terms(n), enumerate_terms(n).len(), "size {n}");
        }
    }

    #[test]
    fn enumeration_is_duplicate_free() {
        let all = enumerate_terms(5);
        let unique: HashSet<String> = all.iter().map(Term::to_string).collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn base_case_contents() {
        let all = enumerate_terms(1);
        let strs: HashSet<String> = all.iter().map(Term::to_string).collect();
        assert_eq!(
            strs,
            HashSet::from(["0".into(), "1".into(), "add1".into(), "z".into()])
        );
    }

    #[test]
    fn all_terms_are_well_scoped() {
        for t in enumerate_terms(5) {
            for x in free_vars(&t) {
                assert_eq!(x.as_str(), "z", "out-of-scope variable in {t}");
            }
        }
    }

    #[test]
    fn sizes_are_respected() {
        for t in enumerate_terms(4) {
            assert!(t.size() <= 4, "{t} exceeds size bound");
        }
        // and every size up to the bound is realized
        let sizes: HashSet<usize> = enumerate_terms(4).iter().map(Term::size).collect();
        assert_eq!(sizes, HashSet::from([1, 2, 3, 4]));
    }

    #[test]
    fn growth_is_steep_but_bounded() {
        let c4 = count_terms(4);
        let c5 = count_terms(5);
        let c6 = count_terms(6);
        assert!(c4 < c5 && c5 < c6);
        assert!(c6 < 1_000_000, "enumeration exploded: {c6}");
    }

    #[test]
    fn interesting_shapes_appear() {
        let all: HashSet<String> = enumerate_terms(6).iter().map(Term::to_string).collect();
        for expected in [
            "(add1 (add1 z))",
            "(let (e0 0) e0)",
            "(if0 z 0 1)",
            "((lambda (e0) e0) 1)",
            "(let (e0 (if0 z 0 1)) e0)",
        ] {
            assert!(all.contains(expected), "missing {expected}");
        }
    }
}
