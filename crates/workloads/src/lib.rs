//! Workloads for the cpsdfa reproduction: the paper's worked
//! [examples](paper), parametric [program families](families) for the cost
//! experiments, a seeded, typed [random program generator](random) for
//! differential and property testing, a bounded-exhaustive
//! [enumerator](exhaustive) for small-scope verification, and a
//! scoped-thread [parallel map](par) for driving the analyzers over whole
//! corpora.
//!
//! ```
//! use cpsdfa_anf::AnfProgram;
//! use cpsdfa_workloads::{families, paper};
//!
//! let pi1 = AnfProgram::parse(paper::THEOREM_5_1)?;
//! assert!(pi1.var_named("a1").is_some());
//!
//! let chain = AnfProgram::from_term(&families::cond_chain(8));
//! assert!(chain.num_vars() > 8);
//! # Ok::<(), cpsdfa_syntax::parse::ParseError>(())
//! ```

pub mod edits;
pub mod exhaustive;
pub mod families;
pub mod paper;
pub mod par;
pub mod random;
