//! Parametric program families for the cost and precision experiments
//! (E5–E10 in `DESIGN.md`).
//!
//! Each generator returns a [`Term`]; normalize with
//! [`cpsdfa_anf::AnfProgram::from_term`]. The families are designed so the
//! *shape* claims of §6.2 are observable:
//!
//! * [`cond_chain`] — `n` sequential unknown conditionals: `2ⁿ` execution
//!   paths. Direct analysis cost grows linearly in `n`; CPS-style analyses
//!   re-analyze the tail per path — exponential.
//! * [`dispatch`] — one call site with `n` possible callees (closure-set
//!   duplication at calls).
//! * [`repeated_calls`] — `n` calls to one procedure: `n` continuations
//!   collect at the procedure's `k`, driving §6.1 false returns.
//! * plus assorted pipelines/towers for interpreter and transform benches.

use cpsdfa_syntax::build::*;
use cpsdfa_syntax::{Ident, Term};

/// `n` sequential conditionals on the free variable `z`, each binding
/// `cᵢ = (if0 z 0 1)`, followed by a use of the last one:
///
/// ```text
/// (let (c1 (if0 z 0 1)) … (let (cn (if0 z 0 1)) (add1 cn)) …)
/// ```
pub fn cond_chain(n: usize) -> Term {
    let body = app(add1(), var(format!("c{n}")));
    (1..=n).rev().fold(body, |acc, i| {
        let_(format!("c{i}"), if0(var("z"), num(0), num(1)), acc)
    })
}

/// A chain of `n` unknown conditionals whose arms *agree* (`7` on both
/// sides); the direct analysis keeps every constant, so precision matches
/// the CPS analyses while cost still differs — isolating the cost effect.
pub fn agreeing_cond_chain(n: usize) -> Term {
    let body = app(add1(), var(format!("c{n}")));
    (1..=n).rev().fold(body, |acc, i| {
        let_(format!("c{i}"), if0(var("z"), num(7), num(7)), acc)
    })
}

/// One call site applying a variable `f` bound (via a tower of unknown
/// conditionals) to one of `n` distinct closures `(λdᵢ. i)`.
pub fn dispatch(n: usize) -> Term {
    assert!(n >= 1, "dispatch requires at least one closure");
    // Build the rhs of f: nested if0s selecting among n lambdas.
    let mut rhs = lam(format!("d{n}"), num((n - 1) as i64));
    for i in (1..n).rev() {
        rhs = if0(var("z"), lam(format!("d{i}"), num((i - 1) as i64)), rhs);
    }
    let_(
        "f",
        rhs,
        let_("r", app(var("f"), num(0)), app(add1(), var("r"))),
    )
}

/// `m` sequential calls to one identity procedure: the §6.1 scenario at
/// scale. With `m ≥ 2` the syntactic-CPS analysis accumulates `m`
/// continuations at the procedure's `k`.
pub fn repeated_calls(m: usize) -> Term {
    assert!(m >= 1, "repeated_calls requires at least one call");
    let mut body: Term = var(format!("a{m}"));
    for i in (1..=m).rev() {
        body = let_(format!("a{i}"), app(var("id"), num(i as i64)), body);
    }
    let_("id", identity("x"), body)
}

/// `n` distinct closures `(λdᵢ. i−1)` all funneled through one identity
/// procedure, then each funneled result applied:
///
/// ```text
/// (let (id (λx. x))
///  (let (f1 (λd1. 0)) … (let (fn (λdn. n−1))
///   (let (a1 (id f1)) … (let (an (id fn))
///    (let (r1 (a1 0)) … (let (rn (an 0)) rn)))))…)
/// ```
///
/// A monovariant analysis merges all `n` closures inside `id`, so every
/// `aᵢ` holds all of `{f1…fn}` and every call `(aᵢ 0)` dispatches to `n`
/// callees; call/return matching keeps `aᵢ = {fᵢ}` exactly. The family is
/// the E21 precision probe for the pushdown rung.
pub fn polyvariant(n: usize) -> Term {
    assert!(n >= 1, "polyvariant requires at least one closure");
    let mut body: Term = var(format!("r{n}"));
    for i in (1..=n).rev() {
        body = let_(format!("r{i}"), app(var(format!("a{i}")), num(0)), body);
    }
    for i in (1..=n).rev() {
        body = let_(format!("a{i}"), app(var("id"), var(format!("f{i}"))), body);
    }
    for i in (1..=n).rev() {
        body = let_(
            format!("f{i}"),
            lam(format!("d{i}"), num((i - 1) as i64)),
            body,
        );
    }
    let_("id", identity("x"), body)
}

/// A pipeline `x₁ = add1 z; x₂ = add1 x₁; …; xₙ` — pure straight-line
/// arithmetic for interpreter/transform throughput baselines.
pub fn adder_pipeline(n: usize) -> Term {
    assert!(n >= 1);
    let mut body: Term = var(format!("x{n}"));
    for i in (2..=n).rev() {
        body = let_(
            format!("x{i}"),
            app(add1(), var(format!("x{}", i - 1))),
            body,
        );
    }
    let_("x1", app(add1(), var("z")), body)
}

/// A tower of `n` nested non-tail calls `(add1 (add1 … (add1 0)))` —
/// maximizes continuation depth in the semantic-CPS interpreter.
pub fn add_tower(n: usize) -> Term {
    (0..n).fold(num(0), |acc, _| app(add1(), acc))
}

/// The Church numeral `n` applied to `add1` and `0` — a classic
/// higher-order interpreter workload: `(λf.λx. fⁿ x) add1 0`.
pub fn church(n: usize) -> Term {
    let mut body: Term = var("x");
    for _ in 0..n {
        body = app(var("f"), body);
    }
    apps(lam("f", lam("x", body)), [add1(), num(0)])
}

/// `cond_chain(n)` ending with a `loop`-bound branch — the E8 program
/// family whose semantic-CPS analysis is non-computable.
pub fn loop_then_branch(n: usize) -> Term {
    let tail = let_(
        "l",
        loop_(),
        let_("b", if0(var("l"), num(1), num(2)), app(add1(), var("b"))),
    );
    (1..=n).rev().fold(tail, |acc, i| {
        let_(format!("c{i}"), if0(var("z"), num(0), num(1)), acc)
    })
}

/// A first-order diamond chain for the MFP/MOP experiment (E9): `n`
/// sequential two-armed conditionals with *distinct* constants, each
/// followed by a unary use.
pub fn diamond_chain(n: usize) -> Term {
    let body = var(format!("u{n}"));
    (1..=n).rev().fold(body, |acc, i| {
        let_(
            format!("d{i}"),
            if0(var("z"), num(0), num(1)),
            let_(format!("u{i}"), app(add1(), var(format!("d{i}"))), acc),
        )
    })
}

/// The Y-combinator specialized to a counting-down recursion: the
/// (untyped) fixpoint `Z` applied to `λrec.λn. (if0 n 0 (rec (sub1 n)))`,
/// applied to `n`. Terminates concretely; exercises the §4.4 cycle cuts of
/// every analyzer (self-application flows a closure into its own parameter).
pub fn y_countdown(n: i64) -> Term {
    // Z = λf.((λx. f (λv. x x v)) (λx. f (λv. x x v)))
    let inner = |x: &str, v: &str| lam(x, app(var("fy"), lam(v, apps(var(x), [var(x), var(v)]))));
    let z = lam("fy", app(inner("xa", "va"), inner("xb", "vb")));
    let step = lam(
        "rec",
        lam(
            "n",
            if0(var("n"), num(0), app(var("rec"), app(sub1(), var("n")))),
        ),
    );
    apps(z, [step, num(n)])
}

/// Mutual recursion via a dispatcher closure: `even?`/`odd?` encoded with a
/// selector argument — a second §4.4 stress shape with two λs flowing
/// through one call site.
pub fn even_odd(n: i64) -> Term {
    // self-passing dispatcher: d = λself.λtag.λn. if0 n tag-dependent …
    // encoded compactly: f = λself.λn. (if0 n 1 (λk. ((self self) (sub1 n))) …)
    // We keep it first-order in the tags: parity via double-step recursion.
    let body = if0(
        var("m"),
        num(1),
        if0(
            app(sub1(), var("m")),
            num(0),
            apps(
                var("self2"),
                [var("self2"), app(sub1(), app(sub1(), var("m")))],
            ),
        ),
    );
    let f = lam("self2", lam("m", body));
    let_("evenp", f, apps(var("evenp"), [var("evenp"), num(n)]))
}

/// The free variables every family may mention, with suggested concrete
/// inputs for differential interpreter runs.
pub fn default_inputs() -> Vec<(Ident, i64)> {
    vec![
        (Ident::new("z"), 0),
        (Ident::new("w"), 1),
        (Ident::new("v"), 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_anf::AnfProgram;
    use cpsdfa_interp::{run_direct, Fuel};
    use cpsdfa_syntax::free::free_vars;

    #[test]
    fn cond_chain_scales_linearly_in_size() {
        let s3 = cond_chain(3).size();
        let s6 = cond_chain(6).size();
        assert!(s6 > s3);
        assert!(s6 < 2 * s3 + 10, "size should be linear in n");
    }

    #[test]
    fn families_normalize_and_run() {
        let inputs = default_inputs();
        for (name, t) in [
            ("cond_chain", cond_chain(4)),
            ("agreeing", agreeing_cond_chain(4)),
            ("dispatch", dispatch(3)),
            ("repeated_calls", repeated_calls(3)),
            ("polyvariant", polyvariant(3)),
            ("adder_pipeline", adder_pipeline(5)),
            ("add_tower", add_tower(5)),
            ("church", church(6)),
            ("diamond_chain", diamond_chain(3)),
        ] {
            let p = AnfProgram::from_term(&t);
            let r =
                run_direct(&p, &inputs, Fuel::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(r.value.as_num().is_some() || name == "dispatch", "{name}");
        }
    }

    #[test]
    fn church_computes_n() {
        for n in [0, 1, 5, 10] {
            let p = AnfProgram::from_term(&church(n));
            let r = run_direct(&p, &[], Fuel::default()).unwrap();
            assert_eq!(r.value.as_num(), Some(n as i64));
        }
    }

    #[test]
    fn dispatch_builds_n_lambdas() {
        for n in [1, 2, 5] {
            let p = AnfProgram::from_term(&dispatch(n));
            assert_eq!(p.lambda_labels().len(), n);
        }
    }

    #[test]
    fn polyvariant_builds_funnel_lambdas_and_computes() {
        for n in [1, 2, 5] {
            let p = AnfProgram::from_term(&polyvariant(n));
            // n funneled closures plus the identity itself.
            assert_eq!(p.lambda_labels().len(), n + 1);
            let r = run_direct(&p, &[], Fuel::default()).unwrap();
            assert_eq!(r.value.as_num(), Some((n - 1) as i64));
        }
    }

    #[test]
    fn families_only_use_known_free_variables() {
        let allowed = ["z", "w", "v"];
        for t in [
            cond_chain(3),
            dispatch(2),
            repeated_calls(2),
            polyvariant(3),
            diamond_chain(2),
            loop_then_branch(2),
        ] {
            for x in free_vars(&t) {
                assert!(allowed.contains(&x.as_str()), "unexpected free var {x}");
            }
        }
    }

    #[test]
    fn loop_family_uses_loop() {
        assert!(loop_then_branch(2).uses_loop());
    }
}
