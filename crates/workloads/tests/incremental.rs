//! Differential acceptance tests for incremental re-analysis
//! (`cpsdfa_core::incremental`): every warm fixpoint must be
//! **bit-identical** to a from-scratch solve of the edited program, on
//! every step of every edit script — and the non-monotone edits must
//! provably fall back to a cold solve rather than return a stale answer.
//!
//! Four clients are differenced on each step: source 0CFA (both the
//! stateless seeded driver and the live [`IncrementalCfa`] retract path),
//! CPS 0CFA, the pushdown rung, and MFP/`Flat` (transport-only). A
//! proptest closes the loop over random programs × random edit scripts.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cfa::{zero_cfa, zero_cfa_cps};
use cpsdfa_core::domain::Flat;
use cpsdfa_core::incremental::{
    pushdown_cfa_warm, solve_mfp_incremental, zero_cfa_cps_warm, zero_cfa_warm, ColdReason,
    IncrementalCfa, Outcome, WarmPath, WarmSolve,
};
use cpsdfa_core::mfp::Cfg;
use cpsdfa_core::pushdown::pushdown_cfa;
use cpsdfa_cps::CpsProgram;
use cpsdfa_syntax::Term;
use cpsdfa_workloads::edits::{apply_edit, edit_script, EditKind, FreshNames, ALL_EDIT_KINDS};
use cpsdfa_workloads::families;
use cpsdfa_workloads::random::{generate, open_config};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Differences every client across one edit `old → new`. Warm answers
/// must equal the cold solution bit for bit; cold falls are always
/// acceptable (the cold path is the from-scratch solver itself).
fn check_edit_step(old: &Term, new: &Term, ctx: &str) {
    let old_p = AnfProgram::from_term(old);
    let new_p = AnfProgram::from_term(new);

    // Source-level 0CFA, stateless seeded driver.
    let prev = zero_cfa(&old_p).expect("cold solve (old)");
    let cold = zero_cfa(&new_p).expect("cold solve (new)");
    match zero_cfa_warm(&old_p, &prev, &new_p).expect("warm driver") {
        WarmSolve::Warm(warm, report) => {
            assert!(
                warm.same_solution(&cold),
                "{ctx}: src warm fixpoint differs from cold ({report:?})"
            );
        }
        WarmSolve::Cold(_) => {}
    }

    // CPS-level 0CFA.
    let old_c = CpsProgram::from_anf(&old_p);
    let new_c = CpsProgram::from_anf(&new_p);
    let prev_c = zero_cfa_cps(&old_c).expect("cold CPS solve (old)");
    let cold_c = zero_cfa_cps(&new_c).expect("cold CPS solve (new)");
    match zero_cfa_cps_warm(&old_c, &prev_c, &new_c).expect("warm CPS driver") {
        WarmSolve::Warm(warm, report) => {
            assert!(
                warm.same_solution(&cold_c),
                "{ctx}: cps warm fixpoint differs from cold ({report:?})"
            );
        }
        WarmSolve::Cold(_) => {}
    }

    // Pushdown rung.
    let prev_pd = pushdown_cfa(&old_c).expect("cold pushdown (old)");
    let cold_pd = pushdown_cfa(&new_c).expect("cold pushdown (new)");
    match pushdown_cfa_warm(&old_c, &prev_pd, &new_c).expect("warm pushdown driver") {
        WarmSolve::Warm(warm, report) => {
            assert!(
                warm.same_solution(&cold_pd),
                "{ctx}: pushdown warm fixpoint differs from cold ({report:?})"
            );
        }
        WarmSolve::Cold(_) => {}
    }

    // MFP over Flat (first-order programs only; transport rung).
    if let (Ok(old_cfg), Ok(new_cfg)) =
        (Cfg::from_first_order(&old_p), Cfg::from_first_order(&new_p))
    {
        let prev_m = old_cfg
            .solve_mfp::<Flat>(old_cfg.initial_env(&old_p))
            .expect("cold MFP (old)");
        let cold_m = new_cfg
            .solve_mfp::<Flat>(new_cfg.initial_env(&new_p))
            .expect("cold MFP (new)");
        if let Some((warm, _)) = solve_mfp_incremental(&old_p, &prev_m, &new_p) {
            assert_eq!(warm, cold_m, "{ctx}: MFP transported summary differs");
        }
    }
}

/// Runs one full script through the live analyzer, checking bit-identity
/// against a cold solve after every step, and returns the per-step
/// reports.
fn run_live(
    base: &Term,
    kinds: &[EditKind],
    seed: u64,
) -> Vec<(EditKind, cpsdfa_core::incremental::WarmReport)> {
    let script = edit_script(base, kinds, seed);
    let mut live = IncrementalCfa::new(AnfProgram::from_term(&script.base)).expect("initial solve");
    let mut out = Vec::new();
    for (i, step) in script.steps.iter().enumerate() {
        let new_p = AnfProgram::from_term(&step.term);
        let cold = zero_cfa(&new_p).expect("cold solve");
        let report = live.update(new_p).expect("live update");
        assert!(
            live.result().same_solution(&cold),
            "live step {i} ({:?}) differs from cold: {report:?}",
            step.kind
        );
        out.push((step.kind, report));
    }
    out
}

fn family_bases() -> Vec<(&'static str, Term)> {
    vec![
        ("dispatch", families::dispatch(24)),
        ("polyvariant", families::polyvariant(16)),
        ("cond_chain", families::cond_chain(12)),
        ("repeated_calls", families::repeated_calls(10)),
        ("adder_pipeline", families::adder_pipeline(12)),
        ("diamond_chain", families::diamond_chain(6)),
        ("church", families::church(6)),
    ]
}

#[test]
fn edit_scripts_are_bit_identical_across_families() {
    // Two rounds of every edit kind, per family, stepped pairwise.
    let kinds: Vec<EditKind> = ALL_EDIT_KINDS
        .iter()
        .chain(ALL_EDIT_KINDS.iter())
        .copied()
        .collect();
    for (name, base) in family_bases() {
        let script = edit_script(&base, &kinds, 0xE22);
        let mut prev = script.base.clone();
        for (i, step) in script.steps.iter().enumerate() {
            check_edit_step(
                &prev,
                &step.term,
                &format!("{name} step {i} {:?}", step.kind),
            );
            prev = step.term.clone();
        }
        assert!(
            !script.steps.is_empty(),
            "{name}: edit script applied no edits"
        );
    }
}

#[test]
fn live_analyzer_tracks_scripts_across_families() {
    let kinds: Vec<EditKind> = ALL_EDIT_KINDS.to_vec();
    for (name, base) in family_bases() {
        let reports = run_live(&base, &kinds, 0x11FE + name.len() as u64);
        assert!(!reports.is_empty(), "{name}: no edits applied");
    }
}

#[test]
fn const_and_rename_edits_are_noops_on_the_live_solver() {
    let base = families::dispatch(24);
    let reports = run_live(&base, &[EditKind::ReplaceConst, EditKind::RenameVar], 7);
    assert_eq!(reports.len(), 2);
    for (kind, report) in reports {
        assert_eq!(
            report.outcome,
            Outcome::Warm(WarmPath::Noop),
            "{kind:?} should be a Noop"
        );
        assert_eq!(report.fired, 0, "{kind:?} fired constraints");
    }
}

#[test]
fn const_to_var_edit_retracts_in_place() {
    // dispatch has the free input `z`, so the rewritten constant keeps the
    // variable and label spaces intact — the retract rung must answer.
    let base = families::dispatch(24);
    let reports = run_live(&base, &[EditKind::ReplaceConstWithVar], 3);
    assert_eq!(reports.len(), 1);
    let (_, report) = reports[0];
    assert_eq!(report.outcome, Outcome::Warm(WarmPath::Retract));
}

#[test]
fn insertions_warm_start_from_the_seed() {
    let base = families::polyvariant(16);
    let cold_fired = {
        let live = IncrementalCfa::new(AnfProgram::from_term(&base)).expect("cold");
        live.last_report().fired
    };
    let reports = run_live(&base, &[EditKind::InsertLeaf, EditKind::InsertLambda], 11);
    assert_eq!(reports.len(), 2);
    for (kind, report) in reports {
        assert!(report.is_warm(), "{kind:?} fell cold: {report:?}");
        assert!(
            report.fired < cold_fired,
            "{kind:?}: warm fired {} ≥ cold {}",
            report.fired,
            cold_fired
        );
    }
}

#[test]
fn deleting_a_flowing_binding_falls_back_cold() {
    // Insert an (unused) λ binding, converge, then delete it: the deleted
    // variable's set holds the closure, so re-using the old fixpoint would
    // over-approximate — the analyzer must prove it and go cold.
    let base = families::dispatch(12);
    let mut rng = StdRng::seed_from_u64(41);
    let mut fresh = FreshNames::over(&base);
    let with_lam = apply_edit(&base, EditKind::InsertLambda, &mut rng, &mut fresh).expect("insert");
    let deleted =
        apply_edit(&with_lam, EditKind::DeleteBinding, &mut rng, &mut fresh).expect("delete");
    assert_eq!(with_lam.lambda_count(), base.lambda_count() + 1);
    assert_eq!(deleted, base, "deleting the inserted binding restores");

    let mut live = IncrementalCfa::new(AnfProgram::from_term(&with_lam)).expect("initial");
    let cold = zero_cfa(&AnfProgram::from_term(&deleted)).expect("cold");
    let report = live
        .update(AnfProgram::from_term(&deleted))
        .expect("update");
    assert_eq!(
        report.outcome,
        Outcome::Cold(ColdReason::NonMonotone),
        "deletion of a flowing binding must be proven non-monotone"
    );
    assert!(live.result().same_solution(&cold));
}

#[test]
fn swapping_lambda_arms_falls_back_cold() {
    // dispatch's if0 arms carry λs: swapping them moves closures between
    // labels, which no transported seed can express.
    let base = families::dispatch(8);
    let mut rng = StdRng::seed_from_u64(5);
    let mut fresh = FreshNames::over(&base);
    let swapped = apply_edit(&base, EditKind::SwapArms, &mut rng, &mut fresh).expect("swap");
    assert_ne!(swapped, base);

    let mut live = IncrementalCfa::new(AnfProgram::from_term(&base)).expect("initial");
    let cold = zero_cfa(&AnfProgram::from_term(&swapped)).expect("cold");
    let report = live
        .update(AnfProgram::from_term(&swapped))
        .expect("update");
    assert!(
        matches!(report.outcome, Outcome::Cold(_)),
        "λ-moving swap must fall cold, got {report:?}"
    );
    assert!(live.result().same_solution(&cold));
}

#[test]
fn mfp_transport_answers_pure_renames_only() {
    let base = families::cond_chain(8);
    let p = AnfProgram::from_term(&base);
    let cfg = Cfg::from_first_order(&p).expect("first-order");
    let prev = cfg
        .solve_mfp::<Flat>(cfg.initial_env(&p))
        .expect("cold MFP");

    // A rename transports.
    let mut rng = StdRng::seed_from_u64(17);
    let mut fresh = FreshNames::over(&base);
    let renamed = apply_edit(&base, EditKind::RenameVar, &mut rng, &mut fresh).expect("rename");
    let rp = AnfProgram::from_term(&renamed);
    let warm = solve_mfp_incremental(&p, &prev, &rp);
    assert!(warm.is_some(), "rename must transport");
    let rcfg = Cfg::from_first_order(&rp).expect("first-order");
    let cold = rcfg
        .solve_mfp::<Flat>(rcfg.initial_env(&rp))
        .expect("cold MFP");
    assert_eq!(warm.unwrap().0, cold);

    // A constant change must NOT transport (Flat is constant-sensitive).
    let changed = apply_edit(&base, EditKind::ReplaceConst, &mut rng, &mut fresh).expect("const");
    let cp = AnfProgram::from_term(&changed);
    assert!(
        solve_mfp_incremental(&p, &prev, &cp).is_none(),
        "constant change must fall cold under Flat"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs × random edit scripts: every warm answer on every
    /// step equals the from-scratch solution.
    #[test]
    fn random_edit_scripts_are_bit_identical(
        prog_seed in 0u64..1u64 << 16,
        script_seed in 0u64..1u64 << 16,
        picks in proptest::collection::vec(0usize..ALL_EDIT_KINDS.len(), 1..5),
    ) {
        let base = generate(prog_seed, &open_config());
        let kinds: Vec<EditKind> = picks.iter().map(|&i| ALL_EDIT_KINDS[i]).collect();
        let script = edit_script(&base, &kinds, script_seed);
        let mut prev = script.base.clone();
        for (i, step) in script.steps.iter().enumerate() {
            check_edit_step(&prev, &step.term, &format!("random step {i} {:?}", step.kind));
            prev = step.term.clone();
        }

        // And the live analyzer over the same script.
        let mut live = IncrementalCfa::new(AnfProgram::from_term(&script.base)).expect("initial");
        for step in &script.steps {
            let new_p = AnfProgram::from_term(&step.term);
            let cold = zero_cfa(&new_p).expect("cold");
            live.update(new_p).expect("update");
            prop_assert!(live.result().same_solution(&cold));
        }
    }
}
