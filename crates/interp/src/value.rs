//! Run-time values of the direct and semantic-CPS interpreters (Figures
//! 1–2) and of the syntactic-CPS interpreter (Figure 3).

use crate::runtime::Env;
use cpsdfa_anf::Anf;
use cpsdfa_cps::{CTerm, VarKey};
use cpsdfa_syntax::{Ident, KIdent, Label};
use std::fmt;

/// A run-time value of the direct / semantic-CPS interpreters:
///
/// ```text
/// Val = Num + Clo      Clo = (Var × Λ × Env) + inc + dec
/// ```
///
/// Closures borrow the program's AST (`'p`), so values are cheap to move
/// around and the program stays the single source of truth.
#[derive(Clone)]
pub enum DVal<'p> {
    /// A number.
    Num(i64),
    /// The successor procedure tag `inc`.
    Inc,
    /// The predecessor procedure tag `dec`.
    Dec,
    /// A user closure `(cl x, M, ρ)`.
    Clo {
        /// Label of the λ that was closed over (the abstract closure id).
        label: Label,
        /// The parameter `x`.
        param: &'p Ident,
        /// The body `M`.
        body: &'p Anf,
        /// The captured environment `ρ`.
        env: Env,
    },
}

impl<'p> DVal<'p> {
    /// The number, if this is one.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            DVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// True for procedures (closures and primitive tags).
    pub fn is_procedure(&self) -> bool {
        !matches!(self, DVal::Num(_))
    }
}

impl fmt::Display for DVal<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DVal::Num(n) => write!(f, "{n}"),
            DVal::Inc => f.write_str("inc"),
            DVal::Dec => f.write_str("dec"),
            DVal::Clo { label, param, .. } => write!(f, "(cl {param}, …)@{label}"),
        }
    }
}

impl fmt::Debug for DVal<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A run-time value of the syntactic-CPS interpreter:
///
/// ```text
/// Val = Num + Clo + Con
/// Clo = (Var × KVar × cps(Λ) × Env) + inck + deck
/// Con = (Var × cps(Λ) × Env) + stop
/// ```
#[derive(Clone)]
pub enum CRVal<'p> {
    /// A number.
    Num(i64),
    /// The CPS successor tag `inck`.
    IncK,
    /// The CPS predecessor tag `deck`.
    DecK,
    /// A user closure `(cl xk, P, ρ)`.
    Clo {
        /// Label of the CPS λ.
        label: Label,
        /// The ordinary parameter `x`.
        param: &'p Ident,
        /// The continuation parameter `k`.
        k: &'p KIdent,
        /// The body `P`.
        body: &'p CTerm,
        /// The captured environment.
        env: Env<VarKey>,
    },
    /// A reified continuation `(co x, P, ρ)`.
    Co {
        /// Label of the continuation λ.
        label: Label,
        /// The variable receiving the return value.
        var: &'p Ident,
        /// The rest of the program `P`.
        body: &'p CTerm,
        /// The captured environment.
        env: Env<VarKey>,
    },
    /// The initial continuation `stop`.
    Stop,
}

impl CRVal<'_> {
    /// The number, if this is one.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            CRVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// True for continuations (`co` or `stop`).
    pub fn is_continuation(&self) -> bool {
        matches!(self, CRVal::Co { .. } | CRVal::Stop)
    }
}

impl fmt::Display for CRVal<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CRVal::Num(n) => write!(f, "{n}"),
            CRVal::IncK => f.write_str("inck"),
            CRVal::DecK => f.write_str("deck"),
            CRVal::Clo {
                label, param, k, ..
            } => write!(f, "(cl {param} {k}, …)@{label}"),
            CRVal::Co { label, var, .. } => write!(f, "(co {var}, …)@{label}"),
            CRVal::Stop => f.write_str("stop"),
        }
    }
}

impl fmt::Debug for CRVal<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nums_expose_their_value() {
        assert_eq!(DVal::Num(5).as_num(), Some(5));
        assert_eq!(DVal::Inc.as_num(), None);
        assert_eq!(CRVal::Num(-2).as_num(), Some(-2));
        assert_eq!(CRVal::Stop.as_num(), None);
    }

    #[test]
    fn procedure_and_continuation_predicates() {
        assert!(DVal::Inc.is_procedure());
        assert!(!DVal::Num(0).is_procedure());
        assert!(CRVal::Stop.is_continuation());
        assert!(!CRVal::IncK.is_continuation());
    }

    #[test]
    fn displays_are_nonempty() {
        for v in [DVal::Num(1), DVal::Inc, DVal::Dec] {
            assert!(!v.to_string().is_empty());
        }
        for v in [CRVal::Num(1), CRVal::IncK, CRVal::DecK, CRVal::Stop] {
            assert!(!v.to_string().is_empty());
        }
    }
}
