//! The syntactic-CPS interpreter `M_c` of Figure 3.
//!
//! Evaluates programs of cps(Λ). The salient feature of the CPS
//! representation shows up directly in the machine: continuations are
//! ordinary run-time values `(co x, P, ρ)` stored in the store and looked
//! up through continuation variables — there is no control stack at all.
//!
//! Lemma 3.3 relates this machine to the semantic-CPS interpreter through
//! the function δ (see [`crate::delta`]).

use crate::runtime::{Env, Fuel, InterpError, Store};
use crate::value::CRVal;
use cpsdfa_cps::{CTerm, CTermKind, CVal, CValKind, ContLam, CpsProgram, VarKey};
use cpsdfa_syntax::Ident;

/// The answer of the syntactic-CPS interpreter.
#[derive(Debug, Clone)]
pub struct SynCpsAnswer<'p> {
    /// The value handed to `stop`.
    pub value: CRVal<'p>,
    /// The final store (contains extra continuation entries relative to the
    /// direct interpreters — Lemma 3.3).
    pub store: Store<CRVal<'p>, VarKey>,
    /// Transitions consumed.
    pub steps: u64,
}

/// Runs the syntactic-CPS interpreter `M_c` on a CPS program.
///
/// The initial environment binds the program's top continuation variable
/// `k₀` to a fresh location holding `stop` (Lemma 3.3), and `inputs`
/// seed free user variables with numbers.
///
/// # Errors
///
/// As for [`crate::run_direct`]; additionally a continuation applied where a
/// procedure is expected (or vice versa) reports
/// [`InterpError::NotAProcedure`].
///
/// ```
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_cps::CpsProgram;
/// use cpsdfa_interp::{run_syncps, Fuel};
/// let p = AnfProgram::parse("(let (f (lambda (x) (add1 x))) (f 41))").unwrap();
/// let c = CpsProgram::from_anf(&p);
/// let a = run_syncps(&c, &[], Fuel::default())?;
/// assert_eq!(a.value.as_num(), Some(42));
/// # Ok::<(), cpsdfa_interp::InterpError>(())
/// ```
pub fn run_syncps<'p>(
    prog: &'p CpsProgram,
    inputs: &[(Ident, i64)],
    fuel: Fuel,
) -> Result<SynCpsAnswer<'p>, InterpError> {
    let mut store: Store<CRVal<'p>, VarKey> = Store::new();
    let mut env: Env<VarKey> = Env::empty();
    for (x, n) in inputs {
        let key = VarKey::User(x.clone());
        let loc = store.alloc(key.clone(), CRVal::Num(*n));
        env = env.extend(key, loc);
    }
    // ρ[k₀ := new(k₀)], s[new(k₀) := stop]
    let k0 = VarKey::Kont(prog.top_k().clone());
    let loc = store.alloc(k0.clone(), CRVal::Stop);
    env = env.extend(k0, loc);

    let mut m = Machine { fuel, store };
    let mut control = Control::Eval(prog.root(), env);
    loop {
        m.fuel.tick()?;
        control = match control {
            Control::Eval(p, env) => match m.step(p, env)? {
                Step::Continue(c) => c,
                Step::Done(v) => {
                    return Ok(SynCpsAnswer {
                        value: v,
                        store: m.store,
                        steps: m.fuel.used(),
                    })
                }
            },
            Control::ApplyProc { f, arg, kont } => match m.apply_proc(f, arg, kont)? {
                Step::Continue(c) => c,
                Step::Done(v) => {
                    return Ok(SynCpsAnswer {
                        value: v,
                        store: m.store,
                        steps: m.fuel.used(),
                    })
                }
            },
            Control::ApplyCont { kont, value } => match m.apply_cont(kont, value)? {
                Step::Continue(c) => c,
                Step::Done(v) => {
                    return Ok(SynCpsAnswer {
                        value: v,
                        store: m.store,
                        steps: m.fuel.used(),
                    })
                }
            },
        };
    }
}

enum Control<'p> {
    /// `(P, ρ, s) ⊢Mc A`
    Eval(&'p CTerm, Env<VarKey>),
    /// `(u₁, u₂, κ, s) ⊢appc A`
    ApplyProc {
        f: CRVal<'p>,
        arg: CRVal<'p>,
        kont: CRVal<'p>,
    },
    /// `(κ, (u, s)) ⊢apprc A`
    ApplyCont { kont: CRVal<'p>, value: CRVal<'p> },
}

enum Step<'p> {
    Continue(Control<'p>),
    Done(CRVal<'p>),
}

struct Machine<'p> {
    fuel: Fuel,
    store: Store<CRVal<'p>, VarKey>,
}

impl<'p> Machine<'p> {
    /// `φ_c : cps(Λ)(W) × Env × Sto → Val`.
    fn phi(&self, w: &'p CVal, env: &Env<VarKey>) -> Result<CRVal<'p>, InterpError> {
        match &w.kind {
            CValKind::Num(n) => Ok(CRVal::Num(*n)),
            CValKind::Var(x) => match env.lookup(&VarKey::User(x.clone())) {
                Some(loc) => Ok(self.store.get(loc).clone()),
                None => Err(InterpError::UnboundVariable(x.to_string())),
            },
            CValKind::Add1K => Ok(CRVal::IncK),
            CValKind::Sub1K => Ok(CRVal::DecK),
            CValKind::Lam { param, k, body } => Ok(CRVal::Clo {
                label: w.label,
                param,
                k,
                body,
                env: env.clone(),
            }),
        }
    }

    fn reify(&self, cont: &'p ContLam, env: &Env<VarKey>) -> CRVal<'p> {
        CRVal::Co {
            label: cont.label,
            var: &cont.var,
            body: &cont.body,
            env: env.clone(),
        }
    }

    fn step(&mut self, p: &'p CTerm, env: Env<VarKey>) -> Result<Step<'p>, InterpError> {
        match &p.kind {
            // (k W): κ = s(ρ(k)); return φc(W) to κ.
            CTermKind::Ret(k, w) => {
                let key = VarKey::Kont(k.clone());
                let kont = match env.lookup(&key) {
                    Some(loc) => self.store.get(loc).clone(),
                    None => return Err(InterpError::UnboundVariable(k.to_string())),
                };
                let value = self.phi(w, &env)?;
                Ok(Step::Continue(Control::ApplyCont { kont, value }))
            }
            CTermKind::Let { var, val, body } => {
                let u = self.phi(val, &env)?;
                let key = VarKey::User(var.clone());
                let loc = self.store.alloc(key.clone(), u);
                Ok(Step::Continue(Control::Eval(body, env.extend(key, loc))))
            }
            CTermKind::Call { f, arg, cont } => {
                let u1 = self.phi(f, &env)?;
                let u2 = self.phi(arg, &env)?;
                let kont = self.reify(cont, &env);
                Ok(Step::Continue(Control::ApplyProc {
                    f: u1,
                    arg: u2,
                    kont,
                }))
            }
            // (let (k λx.P) (if0 W P₁ P₂))
            CTermKind::LetK {
                k,
                cont,
                test,
                then_,
                else_,
            } => {
                let kval = self.reify(cont, &env);
                let key = VarKey::Kont(k.clone());
                let loc = self.store.alloc(key.clone(), kval);
                let env = env.extend(key, loc);
                let u0 = self.phi(test, &env)?;
                let branch = if u0.as_num() == Some(0) { then_ } else { else_ };
                Ok(Step::Continue(Control::Eval(branch, env)))
            }
            CTermKind::Loop { .. } => Err(InterpError::Diverged),
        }
    }

    /// `appc`.
    fn apply_proc(
        &mut self,
        f: CRVal<'p>,
        arg: CRVal<'p>,
        kont: CRVal<'p>,
    ) -> Result<Step<'p>, InterpError> {
        self.fuel.tick()?;
        match f {
            CRVal::IncK => match arg {
                CRVal::Num(n) => Ok(Step::Continue(Control::ApplyCont {
                    kont,
                    value: CRVal::Num(n + 1),
                })),
                other => Err(InterpError::NotANumber(other.to_string())),
            },
            CRVal::DecK => match arg {
                CRVal::Num(n) => Ok(Step::Continue(Control::ApplyCont {
                    kont,
                    value: CRVal::Num(n - 1),
                })),
                other => Err(InterpError::NotANumber(other.to_string())),
            },
            CRVal::Clo {
                param,
                k,
                body,
                env,
                ..
            } => {
                let pkey = VarKey::User(param.clone());
                let ploc = self.store.alloc(pkey.clone(), arg);
                let kkey = VarKey::Kont(k.clone());
                let kloc = self.store.alloc(kkey.clone(), kont);
                let env = env.extend(pkey, ploc).extend(kkey, kloc);
                Ok(Step::Continue(Control::Eval(body, env)))
            }
            other => Err(InterpError::NotAProcedure(other.to_string())),
        }
    }

    /// `apprc`.
    fn apply_cont(&mut self, kont: CRVal<'p>, value: CRVal<'p>) -> Result<Step<'p>, InterpError> {
        self.fuel.tick()?;
        match kont {
            CRVal::Stop => Ok(Step::Done(value)),
            CRVal::Co { var, body, env, .. } => {
                let key = VarKey::User(var.clone());
                let loc = self.store.alloc(key.clone(), value);
                Ok(Step::Continue(Control::Eval(body, env.extend(key, loc))))
            }
            other => Err(InterpError::NotAProcedure(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_anf::AnfProgram;

    fn run(src: &str) -> Result<Option<i64>, InterpError> {
        let p = AnfProgram::parse(src).unwrap();
        let c = CpsProgram::from_anf(&p);
        run_syncps(&c, &[], Fuel::default()).map(|a| a.value.as_num())
    }

    #[test]
    fn arithmetic_through_cps() {
        assert_eq!(run("(add1 1)"), Ok(Some(2)));
        assert_eq!(run("(sub1 (add1 0))"), Ok(Some(0)));
    }

    #[test]
    fn calls_thread_the_continuation() {
        assert_eq!(
            run("(let (f (lambda (x) (add1 x))) (f (f 40)))"),
            Ok(Some(42))
        );
    }

    #[test]
    fn conditionals_use_named_join_continuation() {
        assert_eq!(run("(if0 0 10 20)"), Ok(Some(10)));
        assert_eq!(run("(if0 7 10 20)"), Ok(Some(20)));
        assert_eq!(run("(let (a (if0 0 1 2)) (add1 a))"), Ok(Some(2)));
    }

    #[test]
    fn theorem_51_program_evaluates() {
        assert_eq!(
            run("(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))"),
            Ok(Some(1))
        );
    }

    #[test]
    fn store_contains_continuation_entries() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f 1))").unwrap();
        let c = CpsProgram::from_anf(&p);
        let a = run_syncps(&c, &[], Fuel::default()).unwrap();
        let konts = a
            .store
            .iter()
            .filter(|(k, _)| matches!(k, VarKey::Kont(_)))
            .count();
        assert!(konts >= 2, "expected k0 and the λ's k, found {konts}");
    }

    #[test]
    fn inputs_seed_free_variables() {
        let p = AnfProgram::parse("(add1 z)").unwrap();
        let c = CpsProgram::from_anf(&p);
        let a = run_syncps(&c, &[(Ident::new("z"), 9)], Fuel::default()).unwrap();
        assert_eq!(a.value.as_num(), Some(10));
    }

    #[test]
    fn omega_exhausts_fuel() {
        let p = AnfProgram::parse("(let (w (lambda (x) (x x))) (w w))").unwrap();
        let c = CpsProgram::from_anf(&p);
        assert!(matches!(
            run_syncps(&c, &[], Fuel::new(5_000)),
            Err(InterpError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn loop_diverges() {
        let p = AnfProgram::parse("(let (x (loop)) x)").unwrap();
        let c = CpsProgram::from_anf(&p);
        assert_eq!(
            run_syncps(&c, &[], Fuel::default()).unwrap_err(),
            InterpError::Diverged
        );
    }

    #[test]
    fn dynamic_errors_surface() {
        assert!(matches!(run("(1 2)"), Err(InterpError::NotAProcedure(_))));
        assert!(matches!(
            run("(add1 (lambda (x) x))"),
            Err(InterpError::NotANumber(_))
        ));
    }
}
