//! The semantic-CPS interpreter `C` of Figure 2.
//!
//! The continuation is the reified control state of the evaluator: a list of
//! frames `(Eᵢ, ρᵢ)` where each `Eᵢ = (let (xᵢ [ ]) Mᵢ)` (§3.1). The machine
//! is tail-recursive, so it runs as a flat loop with three kinds of
//! transitions mirroring the paper's `C`, `appk`, and `appr` relations.
//!
//! Lemma 3.1 — `C` computes the same answers as the direct interpreter `M`
//! — is checked by unit tests here and by differential property tests in the
//! workspace test-suite.

use crate::runtime::{Env, Fuel, InterpError, Store};
use crate::value::DVal;
use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, AnfProgram, Bind};
use cpsdfa_syntax::{Ident, Label};

/// One continuation frame `((let (x [ ]) M), ρ)`.
#[derive(Clone)]
pub struct Frame<'p> {
    /// Label of the frame-creating `let` (identifies the abstract frame).
    pub label: Label,
    /// The variable `x` awaiting the value.
    pub var: &'p Ident,
    /// The rest of the computation `M`.
    pub body: &'p Anf,
    /// The saved environment `ρ`.
    pub env: Env,
}

impl std::fmt::Debug for Frame<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(let ({} []) …)@{}", self.var, self.label)
    }
}

/// The answer of the semantic-CPS interpreter, with step and continuation
/// depth statistics.
#[derive(Debug, Clone)]
pub struct SemCpsAnswer<'p> {
    /// The result value.
    pub value: DVal<'p>,
    /// The final store.
    pub store: Store<DVal<'p>>,
    /// Transitions consumed.
    pub steps: u64,
    /// The deepest control stack observed (frames).
    pub max_kont_depth: usize,
}

enum Control<'p> {
    /// `(M, ρ, κ, s) ⊢C A`
    Eval(&'p Anf, Env),
    /// `(u₁, u₂, κ, s) ⊢appk A`
    Apply(DVal<'p>, DVal<'p>),
    /// `(κ, (u, s)) ⊢appr A`
    Return(DVal<'p>),
}

/// Runs the semantic-CPS interpreter `C` on a program. Arguments and errors
/// are as for [`crate::run_direct`]; by Lemma 3.1 the two interpreters
/// produce identical answers.
///
/// # Errors
///
/// See [`crate::run_direct`].
///
/// ```
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_interp::{run_semcps, Fuel};
/// let p = AnfProgram::parse("(let (f (lambda (x) (add1 x))) (f 41))").unwrap();
/// let a = run_semcps(&p, &[], Fuel::default())?;
/// assert_eq!(a.value.as_num(), Some(42));
/// # Ok::<(), cpsdfa_interp::InterpError>(())
/// ```
pub fn run_semcps<'p>(
    prog: &'p AnfProgram,
    inputs: &[(Ident, i64)],
    fuel: Fuel,
) -> Result<SemCpsAnswer<'p>, InterpError> {
    let mut store: Store<DVal<'p>> = Store::new();
    let mut env = Env::empty();
    for (x, n) in inputs {
        let loc = store.alloc(x.clone(), DVal::Num(*n));
        env = env.extend(x.clone(), loc);
    }

    let mut fuel = fuel;
    // κ = nil initially.
    let mut kont: Vec<Frame<'p>> = Vec::new();
    let mut max_depth = 0usize;
    let mut control = Control::Eval(prog.root(), env);

    loop {
        fuel.tick()?;
        max_depth = max_depth.max(kont.len());
        control = match control {
            Control::Eval(m, env) => match &m.kind {
                AnfKind::Value(v) => Control::Return(phi(v, &env, &store)?),
                AnfKind::Let { var, bind, body } => match bind {
                    Bind::Value(v) => {
                        let u = phi(v, &env, &store)?;
                        let loc = store.alloc(var.clone(), u);
                        Control::Eval(body, env.extend(var.clone(), loc))
                    }
                    Bind::App(vf, va) => {
                        let u1 = phi(vf, &env, &store)?;
                        let u2 = phi(va, &env, &store)?;
                        kont.push(Frame {
                            label: m.label,
                            var,
                            body,
                            env,
                        });
                        Control::Apply(u1, u2)
                    }
                    Bind::If0(vc, then_, else_) => {
                        let u0 = phi(vc, &env, &store)?;
                        kont.push(Frame {
                            label: m.label,
                            var,
                            body,
                            env: env.clone(),
                        });
                        if u0.as_num() == Some(0) {
                            Control::Eval(then_, env)
                        } else {
                            Control::Eval(else_, env)
                        }
                    }
                    Bind::Loop => return Err(InterpError::Diverged),
                },
            },
            Control::Apply(u1, u2) => match u1 {
                DVal::Inc => match u2 {
                    DVal::Num(n) => Control::Return(DVal::Num(n + 1)),
                    other => return Err(InterpError::NotANumber(other.to_string())),
                },
                DVal::Dec => match u2 {
                    DVal::Num(n) => Control::Return(DVal::Num(n - 1)),
                    other => return Err(InterpError::NotANumber(other.to_string())),
                },
                DVal::Clo {
                    param, body, env, ..
                } => {
                    let loc = store.alloc(param.clone(), u2);
                    Control::Eval(body, env.extend(param.clone(), loc))
                }
                DVal::Num(n) => return Err(InterpError::NotAProcedure(n.to_string())),
            },
            Control::Return(u) => match kont.pop() {
                None => {
                    // (nil, A) ⊢appr A
                    return Ok(SemCpsAnswer {
                        value: u,
                        store,
                        steps: fuel.used(),
                        max_kont_depth: max_depth,
                    });
                }
                Some(frame) => {
                    let loc = store.alloc(frame.var.clone(), u);
                    Control::Eval(frame.body, frame.env.extend(frame.var.clone(), loc))
                }
            },
        };
    }
}

/// `φ`, shared with Figure 1 but needing access to this machine's store.
fn phi<'p>(v: &'p AVal, env: &Env, store: &Store<DVal<'p>>) -> Result<DVal<'p>, InterpError> {
    match &v.kind {
        AValKind::Num(n) => Ok(DVal::Num(*n)),
        AValKind::Var(x) => match env.lookup(x) {
            Some(loc) => Ok(store.get(loc).clone()),
            None => Err(InterpError::UnboundVariable(x.to_string())),
        },
        AValKind::Add1 => Ok(DVal::Inc),
        AValKind::Sub1 => Ok(DVal::Dec),
        AValKind::Lam(x, body) => Ok(DVal::Clo {
            label: v.label,
            param: x,
            body,
            env: env.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::run_direct;

    fn both(src: &str) -> (Option<i64>, Option<i64>) {
        let p = AnfProgram::parse(src).unwrap();
        let d = run_direct(&p, &[], Fuel::default()).unwrap();
        let c = run_semcps(&p, &[], Fuel::default()).unwrap();
        (d.value.as_num(), c.value.as_num())
    }

    #[test]
    fn lemma_31_on_samples() {
        for src in [
            "42",
            "(add1 (sub1 5))",
            "(let (f (lambda (x) (add1 x))) (f (f 0)))",
            "(if0 0 1 2)",
            "(if0 3 1 2)",
            "(let (f (lambda (x) (if0 x 10 20))) (let (a (f 0)) (let (b (f 1)) (add1 b))))",
            "((lambda (f) (f 5)) (lambda (y) (add1 y)))",
        ] {
            let (d, c) = both(src);
            assert_eq!(d, c, "direct and semantic-CPS disagree on {src}");
        }
    }

    #[test]
    fn continuation_depth_tracks_nesting() {
        let p = AnfProgram::parse("(add1 (add1 (add1 0)))").unwrap();
        let a = run_semcps(&p, &[], Fuel::default()).unwrap();
        assert_eq!(a.value.as_num(), Some(3));
        assert!(a.max_kont_depth >= 1);
    }

    #[test]
    fn omega_exhausts_fuel_without_overflowing() {
        // Ω loops forever; the machine is iterative, so it burns fuel
        // instead of overflowing the Rust call stack.
        let p = AnfProgram::parse("(let (w (lambda (x) (x x))) (w w))").unwrap();
        let r = run_semcps(&p, &[], Fuel::new(10_000));
        match r {
            Err(InterpError::OutOfFuel { .. }) => {}
            other => panic!("expected fuel exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn loop_diverges() {
        let p = AnfProgram::parse("(let (x (loop)) x)").unwrap();
        assert_eq!(
            run_semcps(&p, &[], Fuel::default()).unwrap_err(),
            InterpError::Diverged
        );
    }

    #[test]
    fn errors_match_direct_interpreter() {
        for src in ["(1 2)", "(add1 (lambda (x) x))", "(add1 z)"] {
            let p = AnfProgram::parse(src).unwrap();
            let d = run_direct(&p, &[], Fuel::default()).unwrap_err();
            let c = run_semcps(&p, &[], Fuel::default()).unwrap_err();
            assert_eq!(d, c, "error mismatch on {src}");
        }
    }

    #[test]
    fn stores_match_direct_interpreter() {
        let src = "(let (f (lambda (x) (add1 x))) (let (a (f 1)) (let (b (f 10)) b)))";
        let p = AnfProgram::parse(src).unwrap();
        let d = run_direct(&p, &[], Fuel::default()).unwrap();
        let c = run_semcps(&p, &[], Fuel::default()).unwrap();
        let dump = |s: &Store<DVal>| {
            let mut v: Vec<String> = s.iter().map(|(x, u)| format!("{x}={u}")).collect();
            v.sort();
            v
        };
        assert_eq!(dump(&d.store), dump(&c.store));
    }
}
