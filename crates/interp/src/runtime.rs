//! Shared runtime machinery for the three concrete interpreters:
//! locations, environments, stores, fuel, and errors.
//!
//! Following Figure 1, an *environment* is a finite table mapping variables
//! to locations and a *store* maps locations to run-time values. The
//! function `new` allocates a fresh location per binding ("the bound
//! variable of a procedure or a block is related to different locations, one
//! for each invocation"), and the variable is recoverable from the location
//! (`new⁻¹`), which we model by storing the variable alongside the value.

use cpsdfa_syntax::Ident;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// A store location.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub usize);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A persistent environment `ρ : Var ⇀ Loc`, generic in the variable type
/// so the syntactic-CPS machine can key it by both namespaces.
///
/// Closures capture environments, so extension must not disturb other
/// holders: the environment is a persistent linked list with O(1) extension
/// and sharing.
#[derive(Clone)]
pub struct Env<K = Ident> {
    node: Option<Rc<EnvNode<K>>>,
}

impl<K> Default for Env<K> {
    fn default() -> Self {
        Env { node: None }
    }
}

struct EnvNode<K> {
    var: K,
    loc: Loc,
    rest: Option<Rc<EnvNode<K>>>,
}

impl<K: Clone + PartialEq> Env<K> {
    /// The empty environment.
    pub fn empty() -> Env<K> {
        Env::default()
    }

    /// `ρ[x := ℓ]` — extends without mutating `self`'s other holders.
    #[must_use]
    pub fn extend(&self, var: K, loc: Loc) -> Env<K> {
        Env {
            node: Some(Rc::new(EnvNode {
                var,
                loc,
                rest: self.node.clone(),
            })),
        }
    }

    /// `ρ(x)` — innermost binding wins.
    pub fn lookup(&self, var: &K) -> Option<Loc> {
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            if &n.var == var {
                return Some(n.loc);
            }
            cur = n.rest.as_deref();
        }
        None
    }

    /// Number of bindings (including shadowed ones).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.node.as_deref();
        while let Some(e) = cur {
            n += 1;
            cur = e.rest.as_deref();
        }
        n
    }

    /// True if no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.node.is_none()
    }
}

impl<K: fmt::Display> fmt::Debug for Env<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Env[")?;
        let mut cur = self.node.as_deref();
        let mut first = true;
        while let Some(n) = cur {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}↦{}", n.var, n.loc)?;
            first = false;
            cur = n.rest.as_deref();
        }
        write!(f, "]")
    }
}

/// A store `s : Loc ⇀ Val`, with `new⁻¹` information: each location records
/// the variable it was allocated for.
#[derive(Debug, Clone)]
pub struct Store<V, K = Ident> {
    cells: Vec<(K, V)>,
}

impl<V, K> Store<V, K> {
    /// The empty store.
    pub fn new() -> Store<V, K> {
        Store { cells: Vec::new() }
    }

    /// `new(x, s)`: allocates a fresh location holding `v`, tagged with the
    /// variable `x` so that `x = new⁻¹(ℓ)`.
    pub fn alloc(&mut self, var: K, v: V) -> Loc {
        self.cells.push((var, v));
        Loc(self.cells.len() - 1)
    }

    /// `s(ℓ)`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` was not allocated in this store.
    pub fn get(&self, loc: Loc) -> &V {
        &self.cells[loc.0].1
    }

    /// `new⁻¹(ℓ)` — the variable the location was allocated for.
    ///
    /// # Panics
    ///
    /// Panics if `loc` was not allocated in this store.
    pub fn var_of(&self, loc: Loc) -> &K {
        &self.cells[loc.0].0
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.cells.iter().map(|(x, v)| (x, v))
    }

    /// Mutable access to a cell's value (used by set-style updates).
    ///
    /// # Panics
    ///
    /// Panics if `loc` was not allocated in this store.
    pub fn get_mut(&mut self, loc: Loc) -> &mut V {
        &mut self.cells[loc.0].1
    }
}

impl<V, K> Default for Store<V, K> {
    fn default() -> Self {
        Store::new()
    }
}

/// An evaluation budget. Each interpreter transition consumes one unit;
/// exhausting the budget aborts evaluation with
/// [`InterpError::OutOfFuel`], making differential testing of possibly
/// divergent programs total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    remaining: u64,
    initial: u64,
}

impl Fuel {
    /// A budget of `steps` transitions.
    pub fn new(steps: u64) -> Fuel {
        Fuel {
            remaining: steps,
            initial: steps,
        }
    }

    /// Consumes one unit.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::OutOfFuel`] when the budget is exhausted.
    pub fn tick(&mut self) -> Result<(), InterpError> {
        if self.remaining == 0 {
            return Err(InterpError::OutOfFuel {
                budget: self.initial,
            });
        }
        self.remaining -= 1;
        Ok(())
    }

    /// Steps consumed so far.
    pub fn used(&self) -> u64 {
        self.initial - self.remaining
    }

    /// Steps still available.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The budget this fuel counter started with.
    pub fn initial(&self) -> u64 {
        self.initial
    }
}

impl Default for Fuel {
    /// A generous default budget (10⁶ transitions).
    fn default() -> Self {
        Fuel::new(1_000_000)
    }
}

/// Errors produced by the concrete interpreters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The fuel budget was exhausted (possibly a divergent program).
    OutOfFuel {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A variable had no binding at lookup time.
    UnboundVariable(String),
    /// A non-procedure value appeared in operator position.
    NotAProcedure(String),
    /// `add1`/`sub1` was applied to a non-number.
    NotANumber(String),
    /// The `loop` construct was evaluated; its concrete semantics diverges
    /// (`x := 0; while true x := x + 1`).
    Diverged,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfFuel { budget } => {
                write!(f, "evaluation exceeded the fuel budget of {budget} steps")
            }
            InterpError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            InterpError::NotAProcedure(v) => write!(f, "cannot apply non-procedure {v}"),
            InterpError::NotANumber(v) => write!(f, "primitive applied to non-number {v}"),
            InterpError::Diverged => f.write_str("program diverges (loop construct)"),
        }
    }
}

impl Error for InterpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_innermost_binding_wins() {
        let e = Env::empty()
            .extend(Ident::new("x"), Loc(0))
            .extend(Ident::new("x"), Loc(1));
        assert_eq!(e.lookup(&Ident::new("x")), Some(Loc(1)));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn env_extension_is_persistent() {
        let base = Env::empty().extend(Ident::new("x"), Loc(0));
        let child = base.extend(Ident::new("y"), Loc(1));
        assert_eq!(base.lookup(&Ident::new("y")), None);
        assert_eq!(child.lookup(&Ident::new("y")), Some(Loc(1)));
        assert_eq!(child.lookup(&Ident::new("x")), Some(Loc(0)));
    }

    #[test]
    fn store_allocates_fresh_locations_and_recovers_vars() {
        let mut s: Store<i64> = Store::new();
        let l0 = s.alloc(Ident::new("x"), 10);
        let l1 = s.alloc(Ident::new("x"), 20);
        assert_ne!(l0, l1);
        assert_eq!(*s.get(l0), 10);
        assert_eq!(*s.get(l1), 20);
        assert_eq!(s.var_of(l1).as_str(), "x");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fuel_runs_out_exactly() {
        let mut f = Fuel::new(2);
        assert!(f.tick().is_ok());
        assert!(f.tick().is_ok());
        assert_eq!(f.tick(), Err(InterpError::OutOfFuel { budget: 2 }));
        assert_eq!(f.used(), 2);
    }

    #[test]
    fn errors_display_meaningfully() {
        let msgs = [
            InterpError::OutOfFuel { budget: 5 }.to_string(),
            InterpError::UnboundVariable("x".into()).to_string(),
            InterpError::NotAProcedure("3".into()).to_string(),
            InterpError::NotANumber("(lambda (x) x)".into()).to_string(),
            InterpError::Diverged.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn env_debug_is_nonempty() {
        let e = Env::empty().extend(Ident::new("x"), Loc(0));
        assert!(format!("{e:?}").contains("x↦@0"));
        assert!(!format!("{:?}", Env::<Ident>::empty()).is_empty());
    }
}
