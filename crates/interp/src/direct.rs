//! The direct (store) interpreter `M` of Figure 1.
//!
//! A big-step evaluator over the restricted subset: environments map
//! variables to locations, stores map locations to values, and every `let`
//! (and every procedure application) allocates a fresh location for its
//! bound variable.

use crate::runtime::{Env, Fuel, InterpError, Store};
use crate::value::DVal;
use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, AnfProgram, Bind};
use cpsdfa_syntax::Ident;

/// The answer of the direct interpreter: a value and the final store
/// (Figure 1: `Ans = Val × Sto`), plus the number of transitions consumed.
#[derive(Debug, Clone)]
pub struct DirectAnswer<'p> {
    /// The result value.
    pub value: DVal<'p>,
    /// The final store.
    pub store: Store<DVal<'p>>,
    /// Transitions consumed (for cost experiments).
    pub steps: u64,
}

/// Runs the direct interpreter `M` on a program.
///
/// `inputs` supplies numbers for free variables; a free variable without an
/// input is reported as unbound when (and only when) it is actually used.
///
/// # Errors
///
/// Returns an [`InterpError`] on unbound variables, application of
/// non-procedures, `add1`/`sub1` of non-numbers, divergence via `loop`, or
/// fuel exhaustion.
///
/// ```
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_interp::{run_direct, Fuel};
/// let p = AnfProgram::parse("(let (f (lambda (x) (add1 x))) (f 41))").unwrap();
/// let a = run_direct(&p, &[], Fuel::default())?;
/// assert_eq!(a.value.as_num(), Some(42));
/// # Ok::<(), cpsdfa_interp::InterpError>(())
/// ```
pub fn run_direct<'p>(
    prog: &'p AnfProgram,
    inputs: &[(Ident, i64)],
    fuel: Fuel,
) -> Result<DirectAnswer<'p>, InterpError> {
    let mut m = Machine {
        fuel,
        store: Store::new(),
    };
    let mut env = Env::empty();
    for (x, n) in inputs {
        let loc = m.store.alloc(x.clone(), DVal::Num(*n));
        env = env.extend(x.clone(), loc);
    }
    let value = m.eval(prog.root(), &env)?;
    Ok(DirectAnswer {
        value,
        store: m.store,
        steps: m.fuel.used(),
    })
}

struct Machine<'p> {
    fuel: Fuel,
    store: Store<DVal<'p>>,
}

impl<'p> Machine<'p> {
    /// `φ : Λ(V) × Env × Sto → Val`.
    fn phi(&self, v: &'p AVal, env: &Env) -> Result<DVal<'p>, InterpError> {
        match &v.kind {
            AValKind::Num(n) => Ok(DVal::Num(*n)),
            AValKind::Var(x) => match env.lookup(x) {
                Some(loc) => Ok(self.store.get(loc).clone()),
                None => Err(InterpError::UnboundVariable(x.to_string())),
            },
            AValKind::Add1 => Ok(DVal::Inc),
            AValKind::Sub1 => Ok(DVal::Dec),
            AValKind::Lam(x, body) => Ok(DVal::Clo {
                label: v.label,
                param: x,
                body,
                env: env.clone(),
            }),
        }
    }

    /// The relation `(M, ρ, s) ⊢M A`.
    fn eval(&mut self, m: &'p Anf, env: &Env) -> Result<DVal<'p>, InterpError> {
        self.fuel.tick()?;
        match &m.kind {
            AnfKind::Value(v) => self.phi(v, env),
            AnfKind::Let { var, bind, body } => {
                let u = match bind {
                    Bind::Value(v) => self.phi(v, env)?,
                    Bind::App(vf, va) => {
                        let u1 = self.phi(vf, env)?;
                        let u2 = self.phi(va, env)?;
                        self.app(u1, u2)?
                    }
                    Bind::If0(vc, then_, else_) => {
                        let u0 = self.phi(vc, env)?;
                        // i = 1 if u0 = 0, i = 2 otherwise (procedures are
                        // "otherwise").
                        if u0.as_num() == Some(0) {
                            self.eval(then_, env)?
                        } else {
                            self.eval(else_, env)?
                        }
                    }
                    Bind::Loop => return Err(InterpError::Diverged),
                };
                let loc = self.store.alloc(var.clone(), u);
                let env = env.extend(var.clone(), loc);
                self.eval(body, &env)
            }
        }
    }

    /// The relation `app : Val × Val × Sto → Ans`.
    fn app(&mut self, u1: DVal<'p>, u2: DVal<'p>) -> Result<DVal<'p>, InterpError> {
        self.fuel.tick()?;
        match u1 {
            DVal::Inc => match u2 {
                DVal::Num(n) => Ok(DVal::Num(n + 1)),
                other => Err(InterpError::NotANumber(other.to_string())),
            },
            DVal::Dec => match u2 {
                DVal::Num(n) => Ok(DVal::Num(n - 1)),
                other => Err(InterpError::NotANumber(other.to_string())),
            },
            DVal::Clo {
                param, body, env, ..
            } => {
                let loc = self.store.alloc(param.clone(), u2);
                let env = env.extend(param.clone(), loc);
                self.eval(body, &env)
            }
            DVal::Num(n) => Err(InterpError::NotAProcedure(n.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Result<i64, InterpError> {
        let p = AnfProgram::parse(src).unwrap();
        run_direct(&p, &[], Fuel::default()).map(|a| a.value.as_num().expect("numeric result"))
    }

    fn run_with(src: &str, inputs: &[(&str, i64)]) -> Result<i64, InterpError> {
        let p = AnfProgram::parse(src).unwrap();
        let inputs: Vec<_> = inputs.iter().map(|(x, n)| (Ident::new(x), *n)).collect();
        run_direct(&p, &inputs, Fuel::default()).map(|a| a.value.as_num().expect("numeric"))
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("(add1 1)"), Ok(2));
        assert_eq!(run("(sub1 0)"), Ok(-1));
        assert_eq!(run("(add1 (sub1 7))"), Ok(7));
    }

    #[test]
    fn lets_and_applications() {
        assert_eq!(run("(let (x 1) (add1 x))"), Ok(2));
        assert_eq!(run("((lambda (x) (add1 x)) 41)"), Ok(42));
        assert_eq!(run("(let (f (lambda (x) x)) (f (f 9)))"), Ok(9));
    }

    #[test]
    fn conditionals_branch_on_zero() {
        assert_eq!(run("(if0 0 10 20)"), Ok(10));
        assert_eq!(run("(if0 1 10 20)"), Ok(20));
        assert_eq!(run("(if0 -1 10 20)"), Ok(20));
        // procedures are non-zero
        assert_eq!(run("(if0 (lambda (x) x) 10 20)"), Ok(20));
    }

    #[test]
    fn higher_order_and_shadowed_locations() {
        // each invocation gets a fresh location for the parameter
        assert_eq!(
            run("(let (f (lambda (x) (add1 x))) (let (a (f 1)) (let (b (f 10)) (add1 b))))"),
            Ok(12)
        );
    }

    #[test]
    fn closures_capture_their_environment() {
        assert_eq!(
            run("(let (y 10) (let (f (lambda (x) (add1 y))) (let (y2 99) (f 0))))"),
            Ok(11)
        );
    }

    #[test]
    fn inputs_seed_free_variables() {
        assert_eq!(run_with("(add1 z)", &[("z", 4)]), Ok(5));
        assert!(matches!(
            run_with("(add1 z)", &[]),
            Err(InterpError::UnboundVariable(_))
        ));
    }

    #[test]
    fn dynamic_errors_are_reported() {
        assert!(matches!(run("(1 2)"), Err(InterpError::NotAProcedure(_))));
        assert!(matches!(
            run("(add1 (lambda (x) x))"),
            Err(InterpError::NotANumber(_))
        ));
    }

    #[test]
    fn loop_diverges() {
        assert_eq!(run("(loop)"), Err(InterpError::Diverged));
    }

    #[test]
    fn omega_exhausts_fuel() {
        let p = AnfProgram::parse("(let (w (lambda (x) (x x))) (w w))").unwrap();
        let r = run_direct(&p, &[], Fuel::new(1_000));
        assert!(matches!(r, Err(InterpError::OutOfFuel { .. })));
    }

    #[test]
    fn store_records_every_binding() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a (f 1)) (let (b (f 2)) b)))")
            .unwrap();
        let a = run_direct(&p, &[], Fuel::default()).unwrap();
        // x is allocated twice, once per invocation
        let xs = a
            .store
            .iter()
            .filter(|(x, _)| x.as_str() == "x")
            .filter_map(|(_, v)| v.as_num())
            .collect::<Vec<_>>();
        assert_eq!(xs, [1, 2]);
    }

    #[test]
    fn lambda_result_is_a_closure() {
        let p = AnfProgram::parse("(lambda (x) x)").unwrap();
        let a = run_direct(&p, &[], Fuel::default()).unwrap();
        assert!(a.value.is_procedure());
        assert!(a.steps > 0);
    }
}
