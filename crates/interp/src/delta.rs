//! The function δ of §3.3, relating direct run-time values to their CPS
//! counterparts:
//!
//! ```text
//! δ(n) = n      δ(inc) = inck      δ(dec) = deck
//! δ((cl x, M, ρ)) = (cl xk, F_k[M], ρ)
//! ```
//!
//! extended pointwise to stores and component-wise to answers. Lemma 3.3
//! states that the syntactic-CPS interpreter computes δ of the direct
//! answer, with the CPS store containing *additional* entries for
//! continuations. These predicates make the lemma executable.

use crate::runtime::Store;
use crate::value::{CRVal, DVal};
use cpsdfa_cps::{LabelMap, VarKey};
use std::collections::BTreeMap;

/// `δ(d) = c`? Closures are compared through the transform's λ
/// correspondence; continuation values can never be δ-images.
pub fn value_delta_eq(d: &DVal<'_>, c: &CRVal<'_>, map: &LabelMap) -> bool {
    match (d, c) {
        (DVal::Num(a), CRVal::Num(b)) => a == b,
        (DVal::Inc, CRVal::IncK) => true,
        (DVal::Dec, CRVal::DecK) => true,
        (DVal::Clo { label, .. }, CRVal::Clo { label: cl, .. }) => map.lam.get(label) == Some(cl),
        _ => false,
    }
}

/// A store entry shape for multiset comparison: the variable's base name and
/// the δ-image of its value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Shape {
    Num(i64),
    Inc,
    Dec,
    Clo(u32),
}

fn direct_shape(v: &DVal<'_>, map: &LabelMap) -> Option<Shape> {
    Some(match v {
        DVal::Num(n) => Shape::Num(*n),
        DVal::Inc => Shape::Inc,
        DVal::Dec => Shape::Dec,
        DVal::Clo { label, .. } => Shape::Clo(map.lam.get(label)?.index()),
    })
}

fn cps_shape(v: &CRVal<'_>) -> Option<Shape> {
    Some(match v {
        CRVal::Num(n) => Shape::Num(*n),
        CRVal::IncK => Shape::Inc,
        CRVal::DecK => Shape::Dec,
        CRVal::Clo { label, .. } => Shape::Clo(label.index()),
        CRVal::Co { .. } | CRVal::Stop => return None,
    })
}

/// Lemma 3.3's store relation: the CPS store restricted to *user* variables
/// must be exactly δ of the direct store (as a multiset of
/// `(variable, value)` bindings — locations are allocation-order artifacts).
/// The continuation entries the CPS store additionally contains are ignored.
pub fn stores_delta_related(
    direct: &Store<DVal<'_>>,
    cps: &Store<CRVal<'_>, VarKey>,
    map: &LabelMap,
) -> bool {
    let mut want: BTreeMap<(String, Shape), isize> = BTreeMap::new();
    for (x, v) in direct.iter() {
        match direct_shape(v, map) {
            Some(s) => *want.entry((x.to_string(), s)).or_default() += 1,
            None => return false, // a closure with no CPS image
        }
    }
    for (key, v) in cps.iter() {
        let VarKey::User(x) = key else { continue };
        let Some(s) = cps_shape(v) else {
            // A continuation value bound to a user variable would break δ;
            // the machine never produces one.
            return false;
        };
        *want.entry((x.to_string(), s)).or_default() -= 1;
    }
    want.values().all(|&n| n == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_direct, run_syncps, Fuel};
    use cpsdfa_anf::AnfProgram;
    use cpsdfa_cps::CpsProgram;

    fn check(src: &str) {
        let p = AnfProgram::parse(src).unwrap();
        let c = CpsProgram::from_anf(&p);
        let da = run_direct(&p, &[], Fuel::default()).unwrap();
        let ca = run_syncps(&c, &[], Fuel::default()).unwrap();
        assert!(
            value_delta_eq(&da.value, &ca.value, c.label_map()),
            "answers of {src} not δ-related: {} vs {}",
            da.value,
            ca.value
        );
        assert!(
            stores_delta_related(&da.store, &ca.store, c.label_map()),
            "stores of {src} not δ-related"
        );
    }

    #[test]
    fn lemma_33_on_samples() {
        for src in [
            "42",
            "(add1 1)",
            "(let (f (lambda (x) (add1 x))) (f (f 40)))",
            "(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))",
            "(if0 0 1 2)",
            "(let (a (if0 1 (add1 0) (sub1 0))) (add1 a))",
            "(lambda (x) x)",
            "(let (g (lambda (h) (h 3))) (g (lambda (y) (add1 y))))",
        ] {
            check(src);
        }
    }

    #[test]
    fn delta_rejects_mismatched_values() {
        let map = LabelMap::default();
        assert!(!value_delta_eq(&DVal::Num(1), &CRVal::Num(2), &map));
        assert!(!value_delta_eq(&DVal::Inc, &CRVal::DecK, &map));
        assert!(!value_delta_eq(&DVal::Num(0), &CRVal::Stop, &map));
        assert!(value_delta_eq(&DVal::Dec, &CRVal::DecK, &map));
    }
}
