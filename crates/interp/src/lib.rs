//! The three concrete interpreters of Sabry & Felleisen (PLDI 1994), §2–3:
//!
//! * [`run_direct`] — the direct (store) interpreter `M` of **Figure 1**;
//! * [`run_semcps`] — the semantic-CPS interpreter `C` of **Figure 2**,
//!   which reifies the evaluator's control state as a list of frames;
//! * [`run_syncps`] — the syntactic-CPS interpreter `M_c` of **Figure 3**,
//!   a specialized direct interpreter for CPS programs whose run-time values
//!   include reified continuations;
//!
//! plus the [δ relation](delta) of §3.3 connecting them (Lemmas 3.1 and
//! 3.3), and a [reference evaluator](mod@reference) for the full language used
//! to validate A-normalization.
//!
//! All interpreters are fuel-limited and return structured
//! [errors](runtime::InterpError), so differential testing over random
//! programs is total.
//!
//! ```
//! use cpsdfa_anf::AnfProgram;
//! use cpsdfa_cps::CpsProgram;
//! use cpsdfa_interp::{delta, run_direct, run_semcps, run_syncps, Fuel};
//!
//! let p = AnfProgram::parse("(let (f (lambda (x) (add1 x))) (f 41))").unwrap();
//! let c = CpsProgram::from_anf(&p);
//! let d = run_direct(&p, &[], Fuel::default())?;
//! let s = run_semcps(&p, &[], Fuel::default())?;
//! let m = run_syncps(&c, &[], Fuel::default())?;
//! assert_eq!(d.value.as_num(), Some(42));            // Figure 1
//! assert_eq!(s.value.as_num(), Some(42));            // Lemma 3.1
//! assert!(delta::value_delta_eq(&d.value, &m.value, c.label_map())); // Lemma 3.3
//! # Ok::<(), cpsdfa_interp::InterpError>(())
//! ```

pub mod delta;
pub mod direct;
pub mod reference;
pub mod runtime;
pub mod semcps;
pub mod syncps;
pub mod value;

pub use delta::{stores_delta_related, value_delta_eq};
pub use direct::{run_direct, DirectAnswer};
pub use reference::{run_reference, RVal};
pub use runtime::{Env, Fuel, InterpError, Loc, Store};
pub use semcps::{run_semcps, Frame, SemCpsAnswer};
pub use syncps::{run_syncps, SynCpsAnswer};
pub use value::{CRVal, DVal};
