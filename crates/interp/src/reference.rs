//! A reference big-step evaluator for the *full* language Λ (before
//! A-normalization).
//!
//! The paper's interpreters work on the restricted subset; this evaluator
//! exists only to check that A-normalization preserves the informal
//! semantics of §2 (footnote 2 claims the normalization is transparent to
//! the interpreters). It is deliberately simple: environments map variables
//! directly to values, no store.

use crate::runtime::{Fuel, InterpError};
use cpsdfa_syntax::ast::{Term, Value};
use cpsdfa_syntax::Ident;
use std::fmt;
use std::rc::Rc;

/// A value of the reference evaluator.
#[derive(Clone)]
pub enum RVal {
    /// A number.
    Num(i64),
    /// The successor primitive.
    Inc,
    /// The predecessor primitive.
    Dec,
    /// A closure over the full language.
    Clo {
        /// The parameter.
        param: Ident,
        /// The body (shared, since closures are copied freely).
        body: Rc<Term>,
        /// The captured environment.
        env: REnv,
    },
}

impl RVal {
    /// The number, if this is one.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            RVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// True for procedures.
    pub fn is_procedure(&self) -> bool {
        !matches!(self, RVal::Num(_))
    }
}

impl fmt::Display for RVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RVal::Num(n) => write!(f, "{n}"),
            RVal::Inc => f.write_str("inc"),
            RVal::Dec => f.write_str("dec"),
            RVal::Clo { param, .. } => write!(f, "(cl {param}, …)"),
        }
    }
}

impl fmt::Debug for RVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A persistent environment mapping variables to values.
#[derive(Clone, Default)]
pub struct REnv {
    node: Option<Rc<RNode>>,
}

struct RNode {
    var: Ident,
    val: RVal,
    rest: Option<Rc<RNode>>,
}

impl REnv {
    fn extend(&self, var: Ident, val: RVal) -> REnv {
        REnv {
            node: Some(Rc::new(RNode {
                var,
                val,
                rest: self.node.clone(),
            })),
        }
    }

    fn lookup(&self, var: &Ident) -> Option<&RVal> {
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            if &n.var == var {
                return Some(&n.val);
            }
            cur = n.rest.as_deref();
        }
        None
    }
}

/// Evaluates a full-Λ term with the informal semantics of §2.
///
/// # Errors
///
/// As for [`crate::run_direct`].
///
/// ```
/// use cpsdfa_interp::{run_reference, Fuel};
/// use cpsdfa_syntax::parse::parse_term;
/// let t = parse_term("((lambda (x) (add1 x)) 41)").unwrap();
/// assert_eq!(run_reference(&t, &[], Fuel::default())?.as_num(), Some(42));
/// # Ok::<(), cpsdfa_interp::InterpError>(())
/// ```
pub fn run_reference(
    term: &Term,
    inputs: &[(Ident, i64)],
    mut fuel: Fuel,
) -> Result<RVal, InterpError> {
    let mut env = REnv::default();
    for (x, n) in inputs {
        env = env.extend(x.clone(), RVal::Num(*n));
    }
    eval(term, &env, &mut fuel)
}

fn eval(term: &Term, env: &REnv, fuel: &mut Fuel) -> Result<RVal, InterpError> {
    fuel.tick()?;
    match term {
        Term::Value(v) => eval_value(v, env),
        Term::App(f, a) => {
            let fv = eval(f, env, fuel)?;
            let av = eval(a, env, fuel)?;
            apply(fv, av, fuel)
        }
        Term::Let(x, rhs, body) => {
            let rv = eval(rhs, env, fuel)?;
            eval(body, &env.extend(x.clone(), rv), fuel)
        }
        Term::If0(c, t, e) => {
            let cv = eval(c, env, fuel)?;
            if cv.as_num() == Some(0) {
                eval(t, env, fuel)
            } else {
                eval(e, env, fuel)
            }
        }
        Term::Loop => Err(InterpError::Diverged),
    }
}

fn eval_value(v: &Value, env: &REnv) -> Result<RVal, InterpError> {
    match v {
        Value::Num(n) => Ok(RVal::Num(*n)),
        Value::Var(x) => env
            .lookup(x)
            .cloned()
            .ok_or_else(|| InterpError::UnboundVariable(x.to_string())),
        Value::Add1 => Ok(RVal::Inc),
        Value::Sub1 => Ok(RVal::Dec),
        Value::Lam(x, body) => Ok(RVal::Clo {
            param: x.clone(),
            body: Rc::new((**body).clone()),
            env: env.clone(),
        }),
    }
}

fn apply(f: RVal, a: RVal, fuel: &mut Fuel) -> Result<RVal, InterpError> {
    match f {
        RVal::Inc => match a {
            RVal::Num(n) => Ok(RVal::Num(n + 1)),
            other => Err(InterpError::NotANumber(other.to_string())),
        },
        RVal::Dec => match a {
            RVal::Num(n) => Ok(RVal::Num(n - 1)),
            other => Err(InterpError::NotANumber(other.to_string())),
        },
        RVal::Clo { param, body, env } => eval(&body, &env.extend(param, a), fuel),
        RVal::Num(n) => Err(InterpError::NotAProcedure(n.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsdfa_syntax::parse::parse_term;

    fn run(src: &str) -> Result<Option<i64>, InterpError> {
        run_reference(&parse_term(src).unwrap(), &[], Fuel::default()).map(|v| v.as_num())
    }

    #[test]
    fn basic_evaluation() {
        assert_eq!(run("(add1 (sub1 5))"), Ok(Some(5)));
        assert_eq!(run("(let (x 3) (if0 x 1 (add1 x)))"), Ok(Some(4)));
        assert_eq!(run("((lambda (f) (f (f 1))) add1)"), Ok(Some(3)));
    }

    #[test]
    fn full_language_features_anf_lacks() {
        // operands can be arbitrary terms
        assert_eq!(run("((if0 0 add1 sub1) 10)"), Ok(Some(11)));
        assert_eq!(run("(add1 (let (x 1) (add1 x)))"), Ok(Some(3)));
    }

    #[test]
    fn shadowing_respects_lexical_scope() {
        assert_eq!(
            run("(let (x 1) (let (f (lambda (y) x)) (let (x 2) (f 0))))"),
            Ok(Some(1))
        );
    }

    #[test]
    fn errors_and_divergence() {
        assert!(matches!(run("(0 1)"), Err(InterpError::NotAProcedure(_))));
        assert_eq!(run("(loop)"), Err(InterpError::Diverged));
        let omega = parse_term("((lambda (x) (x x)) (lambda (x) (x x)))").unwrap();
        assert!(matches!(
            run_reference(&omega, &[], Fuel::new(500)),
            Err(InterpError::OutOfFuel { .. })
        ));
    }
}
