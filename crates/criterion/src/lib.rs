//! A minimal, dependency-free, offline stand-in for the subset of the
//! `criterion` 0.5 API this workspace uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time,
//! throughput, bench_with_input, bench_function, finish}`, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; the workspace points the `criterion` dependency at this path
//! crate instead. Reporting is text-only (median ns/iter over the collected
//! samples, printed to stdout); there are no plots, no statistics beyond
//! median, and no baseline persistence. `--bench`-style CLI filters narrow
//! which benchmarks run, matching `cargo bench -- <filter>` usage. Two more
//! real-criterion flags are honoured for CI smoke runs: `--test` executes
//! each benchmark routine exactly once with no warm-up or timing, and
//! `--sample-size N` overrides every group's sample count.

use std::fmt;
use std::time::{Duration, Instant};

/// The benchmark manager: owns defaults and the parsed CLI options.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size_override: Option<usize>,
    trace_path: Option<String>,
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

/// The options `parse_cli` extracts from the benchmark binary's arguments.
#[derive(Debug, Default, PartialEq, Eq)]
struct CliOptions {
    filter: Option<String>,
    test_mode: bool,
    sample_size: Option<usize>,
    trace_path: Option<String>,
}

/// Parses the subset of criterion's CLI this stub honours: flags are
/// skipped (cargo passes `--bench`), `--test`, `--sample-size N` (or
/// `--sample-size=N`), and `--trace PATH` (or `--trace=PATH`, this
/// workspace's extension for emitting JSONL trace events) are recognized,
/// and the first free argument is a substring filter. `--trace`'s path is
/// consumed by the flag, never mistaken for the filter.
fn parse_cli<I: Iterator<Item = String>>(mut args: I) -> CliOptions {
    let mut opts = CliOptions::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => opts.test_mode = true,
            "--sample-size" => opts.sample_size = args.next().and_then(|v| v.parse().ok()),
            "--trace" => opts.trace_path = args.next(),
            _ if a.starts_with("--sample-size=") => {
                opts.sample_size = a["--sample-size=".len()..].parse().ok();
            }
            _ if a.starts_with("--trace=") => {
                opts.trace_path = Some(a["--trace=".len()..].to_owned());
            }
            _ if a.starts_with('-') => {}
            _ => {
                if opts.filter.is_none() {
                    opts.filter = Some(a);
                }
            }
        }
    }
    opts
}

impl Default for Criterion {
    fn default() -> Self {
        let opts = parse_cli(std::env::args().skip(1));
        Criterion {
            filter: opts.filter,
            test_mode: opts.test_mode,
            sample_size_override: opts.sample_size,
            trace_path: opts.trace_path,
            default_sample_size: 100,
            default_warm_up: Duration::from_millis(500),
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// The path given with `--trace`, if any: benchmark binaries that
    /// support structured tracing write per-benchmark JSONL events there.
    pub fn trace_path(&self) -> Option<&str> {
        self.trace_path.as_deref()
    }

    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            test_mode: self.test_mode,
            sample_size_override: self.sample_size_override,
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Identifies one benchmark within a group: `function-name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units-of-work declaration, folded into the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    test_mode: bool,
    sample_size_override: Option<usize>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    // Ties the group's lifetime to `&mut Criterion` like the real API, so
    // groups cannot outlive the manager.
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// How long to run the routine before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target total time spent collecting timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares units of work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filt) = &self.filter {
            if !full.contains(filt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size_override.unwrap_or(self.sample_size),
            median_ns: 0.0,
        };
        f(&mut b, input);
        if self.test_mode {
            println!("Testing {full} ... ok");
        } else {
            report(&full, b.median_ns, self.throughput);
        }
        self
    }

    /// Runs one benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (a no-op here; report lines were already printed).
    pub fn finish(&mut self) {}
}

fn report(full: &str, median_ns: f64, throughput: Option<Throughput>) {
    let time = human_time(median_ns);
    match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            let per_sec = n as f64 / (median_ns * 1e-9);
            println!("{full:<48} time: [{time}]  thrpt: [{per_sec:.3e} elem/s]");
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            let per_sec = n as f64 / (median_ns * 1e-9);
            println!("{full:<48} time: [{time}]  thrpt: [{per_sec:.3e} B/s]");
        }
        _ => println!("{full:<48} time: [{time}]"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times a closure: warm-up, then `sample_size` samples inside the
/// measurement budget; the median per-iteration time is reported. In
/// `--test` mode the closure runs exactly once, untimed.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measures `f`, keeping its output alive so the optimizer cannot
    /// delete the work (callers additionally use `std::hint::black_box`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up: run until the warm-up budget elapses, counting runs to
        // size the measured batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Size batches so all samples fit the measurement budget.
        let budget_ns = self.measurement.as_nanos() as f64;
        let batch =
            ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)).floor() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// The benchmark binary's `main`: runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual(filter: Option<&str>, test_mode: bool) -> Criterion {
        Criterion {
            filter: filter.map(str::to_owned),
            test_mode,
            sample_size_override: None,
            trace_path: None,
            default_sample_size: 5,
            default_warm_up: Duration::from_millis(5),
            default_measurement: Duration::from_millis(20),
        }
    }

    #[test]
    fn bencher_times_a_cheap_closure() {
        let mut c = manual(None, false);
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 1), &7u64, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = manual(Some("nomatch"), false);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 0), &(), |b, ()| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran, "filter failed to skip");
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = manual(None, true);
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("f", 0), |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 1, "--test must run the routine once, untimed");
    }

    #[test]
    fn cli_parsing_recognizes_test_sample_size_and_filter() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(
            parse_cli(args(&["--bench", "--test", "0cfa"]).into_iter()),
            CliOptions {
                filter: Some("0cfa".into()),
                test_mode: true,
                ..CliOptions::default()
            }
        );
        assert_eq!(
            parse_cli(args(&["--sample-size", "10"]).into_iter()),
            CliOptions {
                sample_size: Some(10),
                ..CliOptions::default()
            }
        );
        assert_eq!(
            parse_cli(args(&["--sample-size=25", "mfp"]).into_iter()),
            CliOptions {
                filter: Some("mfp".into()),
                sample_size: Some(25),
                ..CliOptions::default()
            }
        );
        assert_eq!(parse_cli(args(&[]).into_iter()), CliOptions::default());
    }

    #[test]
    fn cli_parsing_consumes_the_trace_path_without_eating_the_filter() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(
            parse_cli(args(&["--trace", "out.jsonl", "solver"]).into_iter()),
            CliOptions {
                filter: Some("solver".into()),
                trace_path: Some("out.jsonl".into()),
                ..CliOptions::default()
            }
        );
        assert_eq!(
            parse_cli(args(&["--test", "--trace=t.jsonl"]).into_iter()),
            CliOptions {
                test_mode: true,
                trace_path: Some("t.jsonl".into()),
                ..CliOptions::default()
            }
        );
    }

    #[test]
    fn sample_size_override_beats_group_settings() {
        let mut c = manual(None, false);
        c.sample_size_override = Some(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        let mut observed = 0usize;
        group.bench_function(BenchmarkId::new("f", 0), |b| {
            observed = b.sample_size;
            b.iter(|| 1);
        });
        assert_eq!(observed, 3);
    }
}
