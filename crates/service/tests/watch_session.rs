//! Watch-mode session tests: requests sharing a `session` id form an edit
//! stream, and the daemon warm-starts each step from the session's
//! previous fixpoint. The acceptance bar is the same as the incremental
//! differential suite's — a warm answer must be bit-identical (same
//! answer digest) to a from-scratch solve of the edited program — plus
//! the service-level facts: warm serves are reported as `warm`, cold
//! fallbacks still answer, and the stats line counts them.

use cpsdfa_service::proto::{Response, Served, Status};
use cpsdfa_service::{AnalysisService, ServiceConfig};
use cpsdfa_syntax::build::{let_, num};
use cpsdfa_workloads::families;

/// One worker: batches execute in request order, so the session's edit
/// stream is seen in order and miss-then-warm expectations are
/// deterministic.
fn small_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        capacity_charges: u64::MAX / 2,
        ..ServiceConfig::default()
    }
}

fn request(id: u64, analysis: &str, program: &str) -> String {
    format!(r#"{{"id": {id}, "analysis": "{analysis}", "program": "{program}"}}"#)
}

fn session_request(id: u64, session: u64, analysis: &str, program: &str) -> String {
    format!(
        r#"{{"id": {id}, "session": {session}, "analysis": "{analysis}", "program": "{program}"}}"#
    )
}

fn ok_fields(resp: &Response) -> (&Served, u64, u64) {
    match &resp.status {
        Status::Ok {
            cache,
            answer_digest,
            charged,
            ..
        } => (cache, *answer_digest, *charged),
        other => panic!("expected ok response, got {other:?} (id {})", resp.id),
    }
}

/// The digest a fresh (session-less) service produces for `program`.
fn cold_digest(analysis: &str, program: &str) -> u64 {
    let service = AnalysisService::new(small_config());
    let line = request(99, analysis, program);
    let outcomes = service.run_batch(&[&line]);
    let (cache, digest, _) = ok_fields(&outcomes[0].response);
    assert_eq!(*cache, Served::Miss, "fresh service must solve cold");
    digest
}

#[test]
fn insert_edit_answers_warm_and_bit_identical_for_every_cfa_kind() {
    for analysis in ["cfa.src", "cfa.cps", "cfa.pushdown"] {
        let base = families::dispatch(8);
        let edited = let_("extra", num(7), base.clone());
        let service = AnalysisService::new(small_config());
        let lines = [
            session_request(1, 42, analysis, &base.to_string()),
            session_request(2, 42, analysis, &edited.to_string()),
        ];
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let outcomes = service.run_batch(&refs);
        let (open_cache, _, _) = ok_fields(&outcomes[0].response);
        let (edit_cache, edit_digest, _) = ok_fields(&outcomes[1].response);
        assert_eq!(*open_cache, Served::Miss, "{analysis}: session opens cold");
        assert_eq!(
            *edit_cache,
            Served::Warm,
            "{analysis}: an inserted leaf binding must warm-start"
        );
        assert_eq!(
            edit_digest,
            cold_digest(analysis, &edited.to_string()),
            "{analysis}: warm answer must be bit-identical to from-scratch"
        );
    }
}

#[test]
fn rename_edit_transports_mfp_for_free() {
    let base = families::cond_chain(6).to_string();
    let renamed = base.replace("c3", "w3");
    assert_ne!(base, renamed, "the rename must actually change the text");
    let service = AnalysisService::new(small_config());
    let lines = [
        session_request(1, 7, "mfp.flat", &base),
        session_request(2, 7, "mfp.flat", &renamed),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    let (_, _, _) = ok_fields(&outcomes[0].response);
    let (cache, digest, charged) = ok_fields(&outcomes[1].response);
    assert_eq!(*cache, Served::Warm, "a pure rename transports the summary");
    assert_eq!(charged, 0, "transport fires no constraints");
    assert_eq!(digest, cold_digest("mfp.flat", &renamed));
}

#[test]
fn misaligned_edit_falls_back_to_the_governed_ladder() {
    // Replacing the program wholesale is not an edit the aligner can
    // bridge: the session must still answer — cold, via the ladder.
    let base = families::dispatch(8).to_string();
    let replaced = families::cond_chain(6).to_string();
    let service = AnalysisService::new(small_config());
    let lines = [
        session_request(1, 3, "cfa.src", &base),
        session_request(2, 3, "cfa.src", &replaced),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    let (cache, digest, _) = ok_fields(&outcomes[1].response);
    assert_eq!(*cache, Served::Miss, "unalignable edits solve cold");
    assert_eq!(digest, cold_digest("cfa.src", &replaced));
}

#[test]
fn sessions_chain_warm_across_successive_edits() {
    // Three stacked inserts: every step after the first warm-starts from
    // the *previous step's* fixpoint, not from the session opener.
    let base = families::polyvariant(8);
    let step1 = let_("e1", num(1), base.clone());
    let step2 = let_("e2", num(2), step1.clone());
    let step3 = let_("e3", num(3), step2.clone());
    let service = AnalysisService::new(small_config());
    let lines = [
        session_request(1, 5, "cfa.cps", &base.to_string()),
        session_request(2, 5, "cfa.cps", &step1.to_string()),
        session_request(3, 5, "cfa.cps", &step2.to_string()),
        session_request(4, 5, "cfa.cps", &step3.to_string()),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    for (outcome, (expect, program)) in outcomes.iter().zip([
        (Served::Miss, base.to_string()),
        (Served::Warm, step1.to_string()),
        (Served::Warm, step2.to_string()),
        (Served::Warm, step3.to_string()),
    ]) {
        let (cache, digest, _) = ok_fields(&outcome.response);
        assert_eq!(*cache, expect, "id {}", outcome.response.id);
        assert_eq!(digest, cold_digest("cfa.cps", &program));
    }
    let stats = service.stats_json();
    assert!(
        stats.contains("\"served_warm\": 3"),
        "stats must count the three warm serves: {stats}"
    );
}

#[test]
fn sessionless_requests_never_touch_the_warm_path() {
    // The same two programs without a session id: the edit is a plain
    // cache miss (different digest), solved by the ladder.
    let base = families::dispatch(6);
    let edited = let_("extra", num(7), base.clone());
    let service = AnalysisService::new(small_config());
    let lines = [
        request(1, "cfa.src", &base.to_string()),
        request(2, "cfa.src", &edited.to_string()),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    let (second, _, _) = ok_fields(&outcomes[1].response);
    assert_eq!(*second, Served::Miss);
    assert!(
        service.stats_json().contains("\"served_warm\": 0"),
        "no session id, no warm serves"
    );
}

#[test]
fn warm_answers_commit_so_a_repeat_request_hits() {
    // After a warm serve, the edited program's fixpoint is resident under
    // its content address: a later session-less request for the same
    // program is an ordinary cache hit.
    let base = families::dispatch(8);
    let edited = let_("extra", num(7), base.clone());
    let service = AnalysisService::new(small_config());
    let lines = [
        session_request(1, 11, "cfa.src", &base.to_string()),
        session_request(2, 11, "cfa.src", &edited.to_string()),
        request(3, "cfa.src", &edited.to_string()),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    let (warm, warm_digest, _) = ok_fields(&outcomes[1].response);
    let (hit, hit_digest, _) = ok_fields(&outcomes[2].response);
    assert_eq!(*warm, Served::Warm);
    assert_eq!(*hit, Served::Hit, "warm commits under the full key");
    assert_eq!(hit_digest, warm_digest);
}
