//! `cpsdfad` flag-handling tests, driven over the real binary.

use std::process::{Command, Stdio};

fn cpsdfad() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpsdfad"))
}

#[test]
fn unknown_flags_print_usage_and_exit_nonzero() {
    for bad in ["--bogus", "-x", "--sessions"] {
        let out = cpsdfad()
            .arg(bad)
            .stdin(Stdio::null())
            .output()
            .expect("spawn cpsdfad");
        assert!(
            !out.status.success(),
            "{bad}: unknown flags must exit nonzero"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag") && stderr.contains(bad),
            "{bad}: stderr must name the offending flag: {stderr}"
        );
        assert!(
            stderr.contains("--workers") && stderr.contains("--trace"),
            "{bad}: stderr must include the usage text: {stderr}"
        );
    }
}

#[test]
fn flags_missing_their_value_exit_nonzero() {
    let out = cpsdfad()
        .arg("--workers")
        .stdin(Stdio::null())
        .output()
        .expect("spawn cpsdfad");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--workers needs a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = cpsdfad()
            .arg(flag)
            .stdin(Stdio::null())
            .output()
            .expect("spawn cpsdfad");
        assert!(out.status.success(), "{flag} exits zero");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("analysis daemon") && stdout.contains("--no-cache"),
            "{flag}: stdout must carry the usage text: {stdout}"
        );
    }
}

#[test]
fn empty_stdin_serves_and_exits_zero() {
    let out = cpsdfad()
        .stdin(Stdio::null())
        .output()
        .expect("spawn cpsdfad");
    assert!(out.status.success(), "EOF on stdin is a clean shutdown");
}
