//! `cpsdfad` flag-handling tests, driven over the real binary.

use std::process::{Command, Stdio};

fn cpsdfad() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpsdfad"))
}

#[test]
fn unknown_flags_print_usage_and_exit_nonzero() {
    for bad in ["--bogus", "-x", "--sessions"] {
        let out = cpsdfad()
            .arg(bad)
            .stdin(Stdio::null())
            .output()
            .expect("spawn cpsdfad");
        assert!(
            !out.status.success(),
            "{bad}: unknown flags must exit nonzero"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag") && stderr.contains(bad),
            "{bad}: stderr must name the offending flag: {stderr}"
        );
        assert!(
            stderr.contains("--workers") && stderr.contains("--trace"),
            "{bad}: stderr must include the usage text: {stderr}"
        );
    }
}

#[test]
fn flags_missing_their_value_exit_nonzero() {
    let out = cpsdfad()
        .arg("--workers")
        .stdin(Stdio::null())
        .output()
        .expect("spawn cpsdfad");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--workers needs a value"),
        "stderr: {stderr}"
    );
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h"] {
        let out = cpsdfad()
            .arg(flag)
            .stdin(Stdio::null())
            .output()
            .expect("spawn cpsdfad");
        assert!(out.status.success(), "{flag} exits zero");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("analysis daemon") && stdout.contains("--no-cache"),
            "{flag}: stdout must carry the usage text: {stdout}"
        );
    }
}

#[test]
fn empty_stdin_serves_and_exits_zero() {
    let out = cpsdfad()
        .stdin(Stdio::null())
        .output()
        .expect("spawn cpsdfad");
    assert!(out.status.success(), "EOF on stdin is a clean shutdown");
}

#[test]
fn non_numeric_certify_and_ttl_values_exit_nonzero() {
    for (flag, value) in [("--certify", "always"), ("--session-ttl-ms", "10s")] {
        let out = cpsdfad()
            .args([flag, value])
            .stdin(Stdio::null())
            .output()
            .expect("spawn cpsdfad");
        assert!(!out.status.success(), "{flag} {value} must exit nonzero");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(flag), "stderr names the flag: {stderr}");
    }
}

#[test]
fn persist_certify_and_ttl_flags_drive_a_crash_safe_daemon() {
    use std::io::Write;
    let dir = std::env::temp_dir().join(format!("cpsdfad-cli-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = |input: &str| -> String {
        let mut child = cpsdfad()
            .args(["--persist-dir", dir.to_str().unwrap()])
            .args([
                "--certify",
                "1",
                "--session-ttl-ms",
                "60000",
                "--workers",
                "1",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn cpsdfad");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().expect("cpsdfad exits");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    // First run: solve one program (spilling it), then ask for health.
    let req = r#"{"id": 1, "analysis": "cfa.cps", "program": "(let (f (lambda (x) x)) (f 1))"}"#;
    let first = run(&format!("{req}\n{{\"cmd\": \"shutdown\"}}\n"));
    assert!(first.contains("\"cache\": \"miss\""), "{first}");

    // Second run over the same directory: the recovered entry serves as a
    // hit, and health reports the recovery.
    let second = run(&format!("{req}\n{{\"cmd\": \"shutdown\"}}\n"));
    assert!(second.contains("\"cache\": \"hit\""), "{second}");
    let health = run("{\"cmd\": \"health\"}\n{\"cmd\": \"shutdown\"}\n");
    assert!(health.contains("\"status\": \"health\""), "{health}");
    assert!(health.contains("\"persist\": true"), "{health}");
    assert!(health.contains("\"recovered_entries\": 1"), "{health}");
    let _ = std::fs::remove_dir_all(&dir);
}
