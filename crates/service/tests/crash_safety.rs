//! Crash-safety and certification e2e tests: the daemon's persisted cache
//! survives a restart (warm hit-rate nonzero), every class of injected
//! persistence fault is detected and healed during recovery, a poisoned
//! entry that passes every checksum is still caught (and recomputed) by
//! serve-path certification, watch sessions journal across restarts and
//! expire on the TTL, and the `health` control line reports the recovery.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cache::{ArenaDigests, CacheKey, CachedAnswer, CachedFixpoint, SendCfa};
use cpsdfa_core::faultinject::{PersistFault, PersistFaultPlan};
use cpsdfa_core::govern::DegradationReport;
use cpsdfa_core::{cfa, PersistDir, SolverMode};
use cpsdfa_service::proto::{Response, Served, Status};
use cpsdfa_service::{AnalysisService, ServiceConfig};
use cpsdfa_syntax::arena::TermArena;
use cpsdfa_workloads::families;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A fresh per-test scratch directory under the system temp dir.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cpsdfa-crash-{}-{tag}-{:x}",
        std::process::id(),
        std::ptr::from_ref(&tag) as usize
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Single worker so batches execute in request order.
fn config(dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        capacity_charges: u64::MAX / 2,
        persist_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    }
}

fn request(id: u64, analysis: &str, program: &str) -> String {
    format!(r#"{{"id": {id}, "analysis": "{analysis}", "program": "{program}"}}"#)
}

fn session_request(id: u64, session: u64, analysis: &str, program: &str) -> String {
    format!(
        r#"{{"id": {id}, "session": {session}, "analysis": "{analysis}", "program": "{program}"}}"#
    )
}

fn ok_fields(resp: &Response) -> (&Served, u64) {
    match &resp.status {
        Status::Ok {
            cache,
            answer_digest,
            ..
        } => (cache, *answer_digest),
        other => panic!("expected ok response, got {other:?} (id {})", resp.id),
    }
}

/// The digest a fresh in-memory service produces for `program` — the
/// ground truth every persisted/certified answer must match.
fn cold_digest(analysis: &str, program: &str) -> u64 {
    let service = AnalysisService::new(ServiceConfig {
        workers: 1,
        capacity_charges: u64::MAX / 2,
        ..ServiceConfig::default()
    });
    let line = request(999, analysis, program);
    let outcomes = service.run_batch(&[&line]);
    ok_fields(&outcomes[0].response).1
}

#[test]
fn restart_recovers_the_persisted_cache_and_serves_hits() {
    let dir = tmpdir("restart");
    let programs: Vec<String> = (4..8).map(|n| families::dispatch(n).to_string()).collect();

    // Cold generation: every request is a miss that spills to disk.
    {
        let service = AnalysisService::new(config(&dir));
        for (i, p) in programs.iter().enumerate() {
            let line = request(i as u64, "cfa.cps", p);
            let outcomes = service.run_batch(&[&line]);
            assert_eq!(*ok_fields(&outcomes[0].response).0, Served::Miss);
        }
    }

    // Restart: the recovered cache serves the same programs as hits, and
    // the answers are bit-identical to the pre-restart solves.
    let service = AnalysisService::new(config(&dir));
    let rec = service.recovery().expect("persist dir recovered");
    assert_eq!(rec.recovered, programs.len() as u64, "{rec:?}");
    assert_eq!(rec.dropped(), 0, "{rec:?}");
    assert!(rec.certified > 0, "recovery certifies a sample: {rec:?}");
    for (i, p) in programs.iter().enumerate() {
        let line = request(100 + i as u64, "cfa.cps", p);
        let outcomes = service.run_batch(&[&line]);
        let (cache, digest) = ok_fields(&outcomes[0].response);
        assert_eq!(
            *cache,
            Served::Hit,
            "recovered entry serves without solving"
        );
        assert_eq!(
            digest,
            cold_digest("cfa.cps", p),
            "recovered answer is bit-identical"
        );
    }
    let stats = service.cache_stats();
    assert_eq!(stats.persist_recovered, programs.len() as u64);
    assert_eq!(stats.hits, programs.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_daemon_warm_starts_journaled_watch_sessions() {
    let dir = tmpdir("journal");
    let base = families::dispatch(8);
    let edited = cpsdfa_syntax::build::let_("fresh", cpsdfa_syntax::build::num(7), base.clone());

    {
        let service = AnalysisService::new(config(&dir));
        let line = session_request(1, 42, "cfa.cps", &base.to_string());
        let outcomes = service.run_batch(&[&line]);
        assert_eq!(*ok_fields(&outcomes[0].response).0, Served::Miss);
    }

    // Restart. The edited program was never solved, so a plain request
    // would miss — but the journaled session ancestor makes it warm.
    let service = AnalysisService::new(config(&dir));
    let rec = service.recovery().expect("persist dir recovered");
    assert_eq!(rec.sessions, 1, "session journal recovered: {rec:?}");
    let line = session_request(2, 42, "cfa.cps", &edited.to_string());
    let outcomes = service.run_batch(&[&line]);
    let (cache, digest) = ok_fields(&outcomes[0].response);
    assert_eq!(
        *cache,
        Served::Warm,
        "journaled ancestor warm-starts the edit"
    );
    assert_eq!(digest, cold_digest("cfa.cps", &edited.to_string()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_injected_persistence_fault_is_detected_and_healed_across_restart() {
    for fault in PersistFault::ALL {
        let dir = tmpdir(fault.as_str());
        let programs: Vec<String> = (4..7).map(|n| families::dispatch(n).to_string()).collect();
        {
            let mut cfg = config(&dir);
            // Arm the fault on the second disk commit.
            cfg.persist_faults = Some(Arc::new(PersistFaultPlan::new(fault, 2)));
            let service = AnalysisService::new(cfg);
            for (i, p) in programs.iter().enumerate() {
                let line = request(i as u64, "cfa.src", p);
                let outcomes = service.run_batch(&[&line]);
                // The fault damages the spill, never the served answer.
                let (_, digest) = ok_fields(&outcomes[0].response);
                assert_eq!(digest, cold_digest("cfa.src", p), "{fault:?}");
            }
            assert!(
                service
                    .config()
                    .persist_faults
                    .as_ref()
                    .unwrap()
                    .has_fired(),
                "{fault:?} plan armed but never fired"
            );
        }

        // Restart: recovery must detect the damaged entry (in the counter
        // matching the fault's failure mode), drop it, and re-admit the
        // rest. The dropped program re-solves to the right answer.
        let service = AnalysisService::new(config(&dir));
        let rec = *service.recovery().expect("persist dir recovered");
        match fault {
            PersistFault::KillBeforeRename => {
                assert_eq!(rec.interrupted, 1, "{fault:?}: {rec:?}");
                assert_eq!(rec.dropped(), 0, "{fault:?}: {rec:?}");
            }
            PersistFault::TruncateTail | PersistFault::BitFlip => {
                assert_eq!(rec.corrupt, 1, "{fault:?}: {rec:?}");
            }
            PersistFault::StaleKey => {
                assert_eq!(rec.stale, 1, "{fault:?}: {rec:?}");
            }
        }
        assert_eq!(
            rec.recovered,
            programs.len() as u64 - 1,
            "{fault:?}: all undamaged entries recovered: {rec:?}"
        );
        for (i, p) in programs.iter().enumerate() {
            let line = request(100 + i as u64, "cfa.src", p);
            let outcomes = service.run_batch(&[&line]);
            let (_, digest) = ok_fields(&outcomes[0].response);
            assert_eq!(
                digest,
                cold_digest("cfa.src", p),
                "{fault:?}: healed answer"
            );
        }
        // A second restart sees a clean directory: the damage was deleted.
        let service = AnalysisService::new(config(&dir));
        let rec = service.recovery().expect("persist dir recovered");
        assert_eq!(
            rec.corrupt + rec.stale + rec.interrupted,
            0,
            "{fault:?}: {rec:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn certify_on_hit_evicts_a_poisoned_entry_and_recomputes() {
    let dir = tmpdir("poison");
    let good = families::dispatch(5).to_string();
    let other = families::dispatch(9).to_string();

    // Forge an entry that defeats every syntactic check: keyed and sourced
    // as `good`, so framing, checksum, and the recovery re-digest all
    // pass — but carrying `other`'s fixpoint. Only semantic certification
    // can catch it.
    {
        let persist = PersistDir::open(&dir).unwrap();
        let mut arena = TermArena::new();
        let mut digests = ArenaDigests::new();
        let root = arena.parse(&good).unwrap();
        let digest = digests.term_digest(&arena, root);
        let key = CacheKey::full(cpsdfa_core::AnalysisKind::CfaSrc, SolverMode::Seq, digest);
        let wrong = cfa::zero_cfa(&AnfProgram::parse(&other).unwrap()).unwrap();
        let fixpoint = CachedFixpoint::new(
            CachedAnswer::CfaSrc(SendCfa::from_result(&wrong)),
            DegradationReport::default(),
        );
        assert!(persist.store(&key, &good, &fixpoint, None).unwrap());
    }

    // Recover without certification (checksum + digest only): the poison
    // is admitted — exactly the gap serve-path certification closes.
    let mut cfg = config(&dir);
    cfg.recover_certify = 0;
    cfg.certify_sample = 1;
    let service = AnalysisService::new(cfg);
    assert_eq!(service.recovery().unwrap().recovered, 1);

    // The hit is sampled, refuted, evicted from memory and disk, and the
    // request falls through to a fresh solve — the client still gets the
    // right answer.
    let line = request(1, "cfa.src", &good);
    let outcomes = service.run_batch(&[&line]);
    let (cache, digest) = ok_fields(&outcomes[0].response);
    assert_eq!(*cache, Served::Miss, "poisoned hit is never served");
    assert_eq!(digest, cold_digest("cfa.src", &good));
    let stats = service.cache_stats();
    assert_eq!(stats.certify_fail, 1);
    assert!(stats.persist_evicted_bytes > 0, "disk copy evicted too");

    // The healed entry replaced the poison on disk: a restart with full
    // certification recovers one clean entry.
    let mut cfg = config(&dir);
    cfg.recover_certify = usize::MAX;
    let service = AnalysisService::new(cfg);
    let rec = service.recovery().unwrap();
    assert_eq!((rec.recovered, rec.dropped()), (1, 0), "{rec:?}");
    let line = request(2, "cfa.src", &good);
    let outcomes = service.run_batch(&[&line]);
    assert_eq!(*ok_fields(&outcomes[0].response).0, Served::Hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn certified_hits_and_warm_answers_count_certify_ok() {
    let dir = tmpdir("certok");
    let mut cfg = config(&dir);
    cfg.certify_sample = 1;
    let service = AnalysisService::new(cfg);
    let p = families::dispatch(6).to_string();
    let lines: Vec<String> = vec![
        request(1, "cfa.cps", &p),
        request(2, "cfa.cps", &p),
        request(3, "cfa.cps", &p),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    assert_eq!(*ok_fields(&outcomes[1].response).0, Served::Hit);
    assert_eq!(*ok_fields(&outcomes[2].response).0, Served::Hit);
    let stats = service.cache_stats();
    assert_eq!(stats.certify_ok, 2, "both hits certified");
    assert_eq!(stats.certify_fail, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_watch_sessions_expire_on_the_ttl() {
    let mut cfg = ServiceConfig {
        workers: 1,
        capacity_charges: u64::MAX / 2,
        ..ServiceConfig::default()
    };
    cfg.session_ttl = Some(Duration::from_millis(20));
    let service = AnalysisService::new(cfg);
    let base = families::dispatch(8);
    let edited = cpsdfa_syntax::build::let_("fresh", cpsdfa_syntax::build::num(7), base.clone());

    let line = session_request(1, 7, "cfa.cps", &base.to_string());
    service.run_batch(&[&line]);
    std::thread::sleep(Duration::from_millis(60));

    // The ancestor expired, so the edit cannot warm-start — it solves.
    let line = session_request(2, 7, "cfa.cps", &edited.to_string());
    let outcomes = service.run_batch(&[&line]);
    assert_eq!(*ok_fields(&outcomes[0].response).0, Served::Miss);
    assert!(
        service.cache_stats().session_ttl_evictions >= 1,
        "eviction counted: {:?}",
        service.cache_stats()
    );
}

#[test]
fn health_and_stats_control_lines_report_recovery_and_certification() {
    let dir = tmpdir("health");
    {
        let service = AnalysisService::new(config(&dir));
        let line = request(1, "mfp.flat", "(let (a 1) (add1 a))");
        service.run_batch(&[&line]);
    }
    let mut cfg = config(&dir);
    cfg.certify_sample = 1;
    let service = AnalysisService::new(cfg);
    // Complete the request before issuing control lines: the feeder
    // answers `cmd` lines immediately, racing any in-flight request.
    let line = request(2, "mfp.flat", "(let (a 1) (add1 a))");
    service.run_batch(&[&line]);
    let input = "{\"cmd\": \"health\"}\n{\"cmd\": \"stats\"}\n{\"cmd\": \"shutdown\"}\n".to_owned();
    let mut output = Vec::new();
    service
        .serve(input.as_bytes(), &mut output, None)
        .expect("serve loop completes");
    let text = String::from_utf8(output).unwrap();
    let health = text
        .lines()
        .find(|l| l.contains("\"status\": \"health\""))
        .expect("health line answered in-stream");
    assert!(health.contains("\"persist\": true"), "{health}");
    assert!(health.contains("\"recovered_entries\": 1"), "{health}");
    assert!(health.contains("\"workers\": "), "{health}");
    assert!(health.contains("\"queue_depth\": "), "{health}");
    let stats = text
        .lines()
        .find(|l| l.contains("\"status\": \"stats\""))
        .expect("stats line answered in-stream");
    assert!(stats.contains("\"certify_ok\": 1"), "{stats}");
    assert!(stats.contains("\"certify_fail\": 0"), "{stats}");
    assert!(stats.contains("\"persist_recovered\": 1"), "{stats}");
    assert!(stats.contains("\"persist_corrupt\": 0"), "{stats}");
    assert!(stats.contains("\"persist_evicted_bytes\": 0"), "{stats}");
    let _ = std::fs::remove_dir_all(&dir);
}
