//! End-to-end acceptance tests for the analysis service: warm-path
//! bit-identity, admission-control rejections, the degraded-rung caching
//! policy, and the full `serve` loop over in-memory streams.

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cache::CachedAnswer;
use cpsdfa_core::cfa::{zero_cfa_cps_instrumented, zero_cfa_instrumented};
use cpsdfa_core::trace::AggSink;
use cpsdfa_cps::CpsProgram;
use cpsdfa_service::proto::{Response, Served, Status};
use cpsdfa_service::{AnalysisService, ServiceConfig};
use cpsdfa_workloads::families;

/// One worker: batches execute in request order, so miss-then-hit
/// expectations are deterministic. (The serve-loop test runs a real
/// concurrent pool and asserts scheduling-independent facts instead.)
fn small_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        // One worker means deep backlogs; don't let the capacity rung
        // interfere with tests that aren't about it.
        capacity_charges: u64::MAX / 2,
        ..ServiceConfig::default()
    }
}

fn request(id: u64, analysis: &str, program: &str) -> String {
    format!(r#"{{"id": {id}, "analysis": "{analysis}", "program": "{program}"}}"#)
}

fn ok_fields(resp: &Response) -> (&Served, &'static str, bool, u64) {
    match &resp.status {
        Status::Ok {
            cache,
            rung,
            degraded,
            answer_digest,
            ..
        } => (cache, rung, *degraded, *answer_digest),
        other => panic!("expected ok response, got {other:?} (id {})", resp.id),
    }
}

#[test]
fn warm_repeat_hits_bit_identically_for_all_three_analyses() {
    let service = AnalysisService::new(small_config());
    let higher_order = families::dispatch(16).to_string();
    let first_order = families::diamond_chain(4).to_string();
    let lines: Vec<String> = vec![
        request(10, "cfa.src", &higher_order),
        request(11, "cfa.cps", &higher_order),
        request(12, "mfp.flat", &first_order),
        request(20, "cfa.src", &higher_order),
        request(21, "cfa.cps", &higher_order),
        request(22, "mfp.flat", &first_order),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    assert_eq!(outcomes.len(), 6);
    for (cold, warm) in [(0usize, 3usize), (1, 4), (2, 5)] {
        let (cold_cache, cold_rung, cold_degraded, cold_digest) =
            ok_fields(&outcomes[cold].response);
        let (warm_cache, warm_rung, warm_degraded, warm_digest) =
            ok_fields(&outcomes[warm].response);
        assert_eq!(*cold_cache, Served::Miss, "first sighting solves");
        assert_eq!(*warm_cache, Served::Hit, "repeat must hit");
        assert!(!cold_degraded && !warm_degraded);
        assert_eq!(cold_rung, warm_rung);
        assert_eq!(cold_digest, warm_digest, "hit must be bit-identical");
        // Not just the digest: the whole committed answer mirrors compare
        // equal.
        let a = outcomes[cold].fixpoint.as_ref().expect("answered");
        let b = outcomes[warm].fixpoint.as_ref().expect("answered");
        assert_eq!(a.answer, b.answer);
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.inserts, 3);
}

#[test]
fn cache_off_solves_fresh_but_stays_bit_identical() {
    let on = AnalysisService::new(small_config());
    let off = AnalysisService::new(ServiceConfig {
        cache_enabled: false,
        ..small_config()
    });
    let program = families::cond_chain(12).to_string();
    let lines = [
        request(1, "cfa.cps", &program),
        request(2, "cfa.cps", &program),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let on_out = on.run_batch(&refs);
    let off_out = off.run_batch(&refs);
    let (_, _, _, d_on) = ok_fields(&on_out[1].response);
    let (cache_off, _, _, d_off) = ok_fields(&off_out[1].response);
    assert_eq!(*cache_off, Served::Off);
    assert_eq!(d_on, d_off, "cache on/off answers must be bit-identical");
    assert_eq!(
        on_out[1].fixpoint.as_ref().unwrap().answer,
        off_out[1].fixpoint.as_ref().unwrap().answer
    );
    assert_eq!(off.cache_stats().inserts, 0, "cache off commits nothing");
}

#[test]
fn queue_depth_rung_rejects_before_queuing() {
    let service = AnalysisService::new(ServiceConfig {
        max_queue: 0,
        ..small_config()
    });
    let program = families::cond_chain(4).to_string();
    let line = request(1, "cfa.src", &program);
    let outcomes = service.run_batch(&[&line]);
    match &outcomes[0].response.status {
        Status::Rejected { reason } => assert_eq!(*reason, "queue-full"),
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    assert!(outcomes[0].fixpoint.is_none());
}

#[test]
fn budget_reservation_rung_rejects_over_capacity() {
    let service = AnalysisService::new(ServiceConfig {
        capacity_charges: 10, // far below any worst case
        ..small_config()
    });
    let program = families::cond_chain(4).to_string();
    let line = request(7, "cfa.cps", &program);
    let outcomes = service.run_batch(&[&line]);
    match &outcomes[0].response.status {
        Status::Rejected { reason } => assert_eq!(*reason, "over-capacity"),
        other => panic!("expected over-capacity rejection, got {other:?}"),
    }
    // A request with an explicit whole-request cap that fits is admitted.
    let line = format!(
        r#"{{"id": 8, "analysis": "cfa.cps", "program": "{program}", "request_budget": 9}}"#
    );
    let outcomes = service.run_batch(&[&line]);
    match &outcomes[0].response.status {
        // cond_chain(4) may or may not fit 9 charges — either an answer or
        // an analysis failure is fine; what matters is it was ADMITTED.
        Status::Ok { .. } | Status::Error { .. } => {}
        other => panic!("capped request must pass admission, got {other:?}"),
    }
}

#[test]
fn degraded_answers_commit_under_their_rung_and_never_shadow() {
    let p = AnfProgram::from_term(&families::repeated_calls(64));
    let program = families::repeated_calls(64).to_string();
    let cps = CpsProgram::from_anf(&p);
    let (_, cps_stats) = zero_cfa_cps_instrumented(&cps).expect("CPS 0CFA completes");
    let (_, src_stats) = zero_cfa_instrumented(&p).expect("source 0CFA completes");
    assert!(
        src_stats.fired < cps_stats.fired,
        "premise: src rung cheaper"
    );

    let service = AnalysisService::new(small_config());
    // Request 1: budget exactly the source rung's cost — the CPS rung
    // trips, the ladder answers (degraded) at cfa.src.
    let starved = format!(
        r#"{{"id": 1, "analysis": "cfa.cps", "program": "{program}", "budget": {}}}"#,
        src_stats.fired
    );
    // Request 2: same program, default budget — must NOT be served the
    // degraded entry.
    let full = request(2, "cfa.cps", &program);
    let outcomes = service.run_batch(&[&starved]);
    let (cache, rung, degraded, _) = ok_fields(&outcomes[0].response);
    assert_eq!(*cache, Served::Miss);
    assert!(degraded, "the CPS rung cannot fit this budget");
    assert_eq!(rung, "cfa.src");

    let outcomes = service.run_batch(&[&full]);
    let (cache, rung, degraded, _) = ok_fields(&outcomes[0].response);
    assert_eq!(
        *cache,
        Served::Miss,
        "a degraded commit must never shadow a full-precision lookup"
    );
    assert!(!degraded);
    assert_eq!(rung, "cfa.cps");

    // And the repeat of the *full* answer now hits at full precision.
    let outcomes = service.run_batch(&[&full]);
    let (cache, rung, _, _) = ok_fields(&outcomes[0].response);
    assert_eq!(*cache, Served::Hit);
    assert_eq!(rung, "cfa.cps");
}

#[test]
fn non_first_order_mfp_requests_error_cleanly() {
    let service = AnalysisService::new(small_config());
    let line = request(3, "mfp.flat", &families::dispatch(8).to_string());
    let outcomes = service.run_batch(&[&line]);
    match &outcomes[0].response.status {
        Status::Error { reason, .. } => assert_eq!(*reason, "not-first-order"),
        other => panic!("expected not-first-order error, got {other:?}"),
    }
}

#[test]
fn batch_traces_carry_request_spans_and_cache_counters() {
    let service = AnalysisService::new(small_config());
    let program = families::cond_chain(8).to_string();
    let lines = [
        request(1, "cfa.src", &program),
        request(2, "cfa.src", &program),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let mut agg = AggSink::new();
    service.run_batch_traced(&refs, &mut agg);
    assert_eq!(agg.counter_value("cache.hit"), 1);
    assert_eq!(agg.counter_value("cache.miss"), 1);
    assert_eq!(agg.counter_value("service.hit"), 1);
    assert_eq!(agg.counter_value("service.solve"), 1);
    assert!(agg.span_agg("service.req.1").is_some());
    assert!(agg.span_agg("service.req.2").is_some());
    assert!(
        agg.counter_value("cfa.src.fired") > 0,
        "the solver's own counters stream through the request trace"
    );
}

#[test]
fn serve_loop_round_trips_requests_stats_and_shutdown() {
    let service = AnalysisService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let program = families::cond_chain(8).to_string();
    let input = format!(
        "{}\n{}\n{{\"cmd\": \"stats\"}}\n{{\"cmd\": \"shutdown\"}}\n",
        request(1, "cfa.cps", &program),
        request(2, "cfa.cps", &program),
    );
    let mut output: Vec<u8> = Vec::new();
    service
        .serve(input.as_bytes(), &mut output, None)
        .expect("serve loop completes");
    let text = String::from_utf8(output).expect("utf8 responses");
    let mut ok = 0;
    let mut saw_stats = false;
    for line in text.lines() {
        if line.contains("\"status\": \"stats\"") {
            saw_stats = true;
            continue;
        }
        let resp = Response::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        match resp.status {
            Status::Ok { .. } => ok += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(ok, 2, "both requests answered before shutdown");
    assert!(saw_stats, "stats control line answered in-stream");
    // One of the two identical requests hit (the serve loop is
    // concurrent, so which one depends on scheduling; with a shared
    // cache at least one must miss and at most one can hit — and after
    // both, the entry is resident).
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, 2);
    assert!(stats.entries >= 1);
}

#[test]
fn serve_loop_surfaces_input_errors_instead_of_wedging() {
    let service = AnalysisService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let program = families::cond_chain(8).to_string();
    // A valid request line followed by an invalid-UTF-8 byte:
    // `BufRead::lines` yields `Err(InvalidData)` for the second line. The
    // feeder must still close the queue so the workers exit and the error
    // comes back — a regression here shows up as this test hanging.
    let mut input: Vec<u8> = request(1, "cfa.cps", &program).into_bytes();
    input.push(b'\n');
    input.extend_from_slice(&[0xFF, 0xFE, b'\n']);
    let mut output: Vec<u8> = Vec::new();
    let err = service
        .serve(&input[..], &mut output, None)
        .expect_err("invalid UTF-8 on stdin is an error, not a wedge");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // The request admitted before the failure was still drained.
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, 1);
}

#[test]
fn malformed_lines_get_error_responses_not_crashes() {
    let service = AnalysisService::new(small_config());
    let lines = [
        "not json at all",
        r#"{"id": 5, "analysis": "cfa.cps"}"#,
        r#"{"id": 6, "analysis": "cfa.cps", "program": "(((("}"#,
    ];
    let outcomes = service.run_batch(&lines);
    match &outcomes[0].response.status {
        Status::Error { reason, .. } => assert_eq!(*reason, "parse-error"),
        other => panic!("expected parse-error, got {other:?}"),
    }
    match &outcomes[1].response.status {
        Status::Error { reason, .. } => {
            assert_eq!(*reason, "bad-request");
            assert_eq!(outcomes[1].response.id, 5);
        }
        other => panic!("expected bad-request, got {other:?}"),
    }
    match &outcomes[2].response.status {
        Status::Error { reason, .. } => assert_eq!(*reason, "parse-error"),
        other => panic!("expected program parse-error, got {other:?}"),
    }
}

#[test]
fn pushdown_requests_answer_warm_hit_and_report_zero_false_returns() {
    let service = AnalysisService::new(small_config());
    let program = families::polyvariant(4).to_string();
    let lines = [
        request(30, "cfa.pushdown", &program),
        request(31, "cfa.cps", &program),
        request(32, "cfa.pushdown", &program),
    ];
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let outcomes = service.run_batch(&refs);
    let (cold_cache, cold_rung, cold_degraded, cold_digest) = ok_fields(&outcomes[0].response);
    assert_eq!(*cold_cache, Served::Miss);
    assert_eq!(cold_rung, "cfa.pushdown");
    assert!(!cold_degraded, "full budget must answer at the top rung");
    let (warm_cache, warm_rung, _, warm_digest) = ok_fields(&outcomes[2].response);
    assert_eq!(*warm_cache, Served::Hit, "repeat pushdown request must hit");
    assert_eq!(warm_rung, "cfa.pushdown");
    assert_eq!(cold_digest, warm_digest, "hit must be bit-identical");
    // The pushdown and 0CFA answers live under distinct keys: the 0CFA
    // request in between neither hits nor shadows the pushdown entry.
    let (cps_cache, cps_rung, _, _) = ok_fields(&outcomes[1].response);
    assert_eq!(*cps_cache, Served::Miss);
    assert_eq!(cps_rung, "cfa.cps");
    // The committed answer is the pushdown representation, and on the
    // polyvariant family it has no spurious return edges (the 0CFA rung
    // on the same program does).
    match &outcomes[0].fixpoint.as_ref().expect("answered").answer {
        CachedAnswer::CfaPushdown(sp) => {
            assert_eq!(sp.to_result().false_return_edges(), 0);
        }
        other => panic!("expected a pushdown answer, got {other:?}"),
    }
    match &outcomes[1].fixpoint.as_ref().expect("answered").answer {
        CachedAnswer::CfaCps(sc) => {
            assert!(sc.to_result().false_return_edges() > 0);
        }
        other => panic!("expected a cps answer, got {other:?}"),
    }
}

#[test]
fn unknown_analysis_gets_structured_error_naming_every_kind() {
    let service = AnalysisService::new(small_config());
    let line = r#"{"id": 41, "analysis": "cfa.magic", "program": "(add1 1)"}"#;
    let outcomes = service.run_batch(&[line]);
    match &outcomes[0].response.status {
        Status::Error { reason, detail } => {
            assert_eq!(*reason, "bad-request");
            assert!(detail.contains("unknown analysis"), "{detail}");
            for kind in ["cfa.src", "cfa.cps", "cfa.pushdown", "mfp.flat"] {
                assert!(detail.contains(kind), "{kind} missing from {detail}");
            }
        }
        other => panic!("expected bad-request, got {other:?}"),
    }
    assert_eq!(outcomes[0].response.id, 41);
    assert!(outcomes[0].fixpoint.is_none());
}
