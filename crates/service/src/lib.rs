//! Analysis-as-a-service: a long-running daemon serving the fixpoint
//! analyses (`cfa.src`, `cfa.cps`, `cfa.pushdown`, `mfp.flat`) over a
//! JSONL protocol, fronted by the
//! content-addressed [`FixpointCache`] and a two-rung admission
//! controller.
//!
//! The offline build environment has no async runtime, so the daemon is
//! plain threads: the caller's thread reads requests, a scoped pool of
//! [`worker_count`]-sized workers (each owning its own hash-consing
//! [`TermArena`] + digest memo) drains a bounded queue, and responses
//! stream back as they complete, correlated by `id`.
//!
//! # Admission control
//!
//! A request passes two *rejection rungs* before it may queue — the cheap
//! outer extension of the per-request
//! [`DegradationLadder`](cpsdfa_core::govern::DegradationLadder):
//!
//! 1. **queue-depth** — if the queue already holds
//!    [`max_queue`](ServiceConfig::max_queue) pending requests, reject
//!    with `queue-full` instead of growing the backlog.
//! 2. **budget reservation** — every admitted request reserves its
//!    worst-case charge count
//!    ([`GovernPolicy::worst_case_charges`](cpsdfa_core::govern::GovernPolicy::worst_case_charges):
//!    the whole-request cap when the client set one, else per-rung budget
//!    × rung count) against
//!    [`capacity_charges`](ServiceConfig::capacity_charges); if the
//!    reservation does not fit, reject with `over-capacity` *before* any
//!    rung burns budget. Reservations release on completion.
//!
//! Only past both rungs does a request reach the degradation rungs proper
//! (engine retry, representation fallback) that PR 5/6 built.
//!
//! # Caching
//!
//! Warm hits are served without touching the solver: the request's
//! program is parsed into the worker's arena (hash-consing makes repeats
//! cheap), digested (memoized per node id), and looked up under the
//! full-precision [`CacheKey`]. Fresh answers commit under the rung that
//! produced them, so degraded answers can never shadow full-precision
//! ones. See `DESIGN.md` §11 for the soundness argument.
//!
//! # Example
//!
//! ```
//! use cpsdfa_service::{AnalysisService, ServiceConfig};
//! use cpsdfa_service::proto::{Served, Status};
//!
//! let service = AnalysisService::new(ServiceConfig::default());
//! let batch = [
//!     r#"{"id": 1, "analysis": "cfa.cps", "program": "(let (f (lambda (x) x)) (f 1))"}"#,
//!     r#"{"id": 2, "analysis": "cfa.cps", "program": "(let (f (lambda (x) x)) (f 1))"}"#,
//! ];
//! let outcomes = service.run_batch(&batch);
//! // Same program twice: the second request is a cache hit with the
//! // bit-identical answer digest.
//! let (a, b) = (&outcomes[0].response, &outcomes[1].response);
//! match (&a.status, &b.status) {
//!     (
//!         Status::Ok { cache: Served::Miss, answer_digest: d1, .. },
//!         Status::Ok { cache: Served::Hit, answer_digest: d2, .. },
//!     ) => assert_eq!(d1, d2),
//!     other => panic!("expected miss then hit, got {other:?}"),
//! }
//! ```

pub mod json;
pub mod proto;

use cpsdfa_anf::AnfProgram;
use cpsdfa_core::cache::{
    AnalysisKind, Ancestor, ArenaDigests, CacheKey, CacheStats, CachedAnswer, CachedFixpoint,
    FixpointCache, PersistDir, RecoveryReport, SendCfa, SendCpsCfa, SendPushdown,
};
use cpsdfa_core::certify::certify_answer;
use cpsdfa_core::domain::Flat;
use cpsdfa_core::faultinject::PersistFaultPlan;
use cpsdfa_core::govern::{
    governed_pushdown_cfa, governed_zero_cfa_cps, CfaAnswer, DegradationLadder, DegradationReport,
    GovernPolicy, RungAttempt,
};
use cpsdfa_core::incremental::{self, WarmReport, WarmSolve};
use cpsdfa_core::mfp::Cfg;
use cpsdfa_core::trace::TraceSink;
use cpsdfa_core::{cfa, worker_count, AggSink, AnalysisBudget, JsonlSink, RunGuard, SolverMode};
use cpsdfa_cps::CpsProgram;
use cpsdfa_syntax::arena::TermArena;
use proto::{BadRequest, Request, Response, Served, Status};
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration. [`Default`] gives a single-machine profile:
/// [`worker_count`] workers, a 64 MiB cache, a 256-deep queue, and
/// capacity for `workers × default budget` concurrent worst-case charges.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// [`FixpointCache`] eviction ceiling in (estimated) payload bytes.
    pub cache_bytes: u64,
    /// Queue-depth rejection rung: pending requests beyond this are
    /// refused with `queue-full`.
    pub max_queue: usize,
    /// Budget-reservation rejection rung: total outstanding worst-case
    /// charges the service will accept before refusing with
    /// `over-capacity`.
    pub capacity_charges: u64,
    /// Per-rung goal budget for requests that do not set one.
    pub default_budget: u64,
    /// Wall-clock allowance (ms) for requests that do not set one
    /// (`None` = no deadline).
    pub default_deadline_ms: Option<u64>,
    /// Master cache switch — `false` turns every request into a fresh
    /// solve (the differential baseline E20 compares against).
    pub cache_enabled: bool,
    /// Crash-safe spill directory for the cache (`None` = in-memory only).
    /// On startup the directory is scanned, checksums verified, a sample
    /// certified, and every valid entry re-admitted — see
    /// [`AnalysisService::recovery`].
    pub persist_dir: Option<PathBuf>,
    /// Serve-path certification sampling: every `N`th cache hit or warm
    /// answer is independently re-checked by [`certify_answer`] before it
    /// is served (0 = off, 1 = certify everything). A refuted answer is
    /// evicted from memory *and* disk and recomputed from scratch — never
    /// served.
    pub certify_sample: u64,
    /// How many recovered entries startup recovery pushes through full
    /// certification (checksums and key re-digests are always verified).
    pub recover_certify: usize,
    /// Idle deadline for watch-session ancestors: a session untouched for
    /// this long is dropped from the warm-start side table (`None` = only
    /// the LRU capacity evicts).
    pub session_ttl: Option<Duration>,
    /// Chaos-harness hook: an armed plan injects one persistence fault
    /// (kill-before-rename, truncation, bit flip, stale key) into the
    /// `N`th disk commit. Production leaves this `None`.
    pub persist_faults: Option<Arc<PersistFaultPlan>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = worker_count();
        let default_budget = AnalysisBudget::default().max_goals();
        ServiceConfig {
            workers,
            cache_bytes: 64 << 20,
            max_queue: 256,
            // Room for every worker to run a worst-case three-rung ladder
            // plus as much again waiting in the queue.
            capacity_charges: default_budget
                .saturating_mul(3)
                .saturating_mul(2 * workers as u64),
            default_budget,
            default_deadline_ms: None,
            cache_enabled: true,
            persist_dir: None,
            certify_sample: 0,
            recover_certify: 8,
            session_ttl: Some(Duration::from_secs(600)),
            persist_faults: None,
        }
    }
}

/// Cumulative service counters (all monotone; readable while serving).
#[derive(Debug, Default)]
struct ServiceCounters {
    accepted: AtomicU64,
    rejected_queue: AtomicU64,
    rejected_budget: AtomicU64,
    served_hit: AtomicU64,
    served_warm: AtomicU64,
    served_solve: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
}

/// One completed request of a batch run: the response plus (when the
/// request was answered) the committed fixpoint, so in-process callers —
/// tests, E20 — can compare whole answers, not just digests.
#[derive(Debug)]
pub struct Outcome {
    /// The response, exactly as [`serve`](AnalysisService::serve) would
    /// have written it.
    pub response: Response,
    /// The answered fixpoint (a cache handle on hits, the fresh commit on
    /// misses); `None` on rejections and errors.
    pub fixpoint: Option<std::sync::Arc<CachedFixpoint>>,
}

/// The service: one [`FixpointCache`] + admission state shared by every
/// request, however it arrives ([`run_batch`](AnalysisService::run_batch)
/// or the [`serve`](AnalysisService::serve) loop).
pub struct AnalysisService {
    config: ServiceConfig,
    cache: Mutex<FixpointCache>,
    /// The crash-safe spill directory, when configured and openable.
    persist: Option<PersistDir>,
    /// What startup recovery found in [`persist`](Self::persist).
    recovery: Option<RecoveryReport>,
    /// Monotone sequence behind the every-Nth certify sampler.
    certify_seq: AtomicU64,
    /// Outstanding reserved worst-case charges (admission rung 2).
    reserved: AtomicU64,
    counters: ServiceCounters,
}

/// Per-worker reusable state: the hash-consing arena and its digest memo.
/// Workers never share arenas — digests are structural, so keys agree
/// across workers without sharing.
struct WorkerCtx {
    arena: TermArena,
    digests: ArenaDigests,
}

impl WorkerCtx {
    fn new() -> Self {
        WorkerCtx {
            arena: TermArena::new(),
            digests: ArenaDigests::new(),
        }
    }
}

/// A queued, admitted request (its reservation is already counted).
struct Job {
    slot: usize,
    request: Request,
    reservation: u64,
    enqueued: Instant,
}

/// The bounded queue the reader feeds and workers drain.
struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>, // (pending, closed)
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn depth(&self) -> usize {
        self.jobs.lock().expect("queue poisoned").0.len()
    }

    fn push(&self, job: Job) {
        self.jobs.lock().expect("queue poisoned").0.push_back(job);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.jobs.lock().expect("queue poisoned").1 = true;
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<Job> {
        let mut guard = self.jobs.lock().expect("queue poisoned");
        loop {
            if let Some(job) = guard.0.pop_front() {
                return Some(job);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("queue poisoned");
        }
    }
}

impl AnalysisService {
    /// A fresh service. When [`persist_dir`](ServiceConfig::persist_dir)
    /// is set, the spill directory is recovered into the cache before the
    /// first request: checksums verified, keys re-digested, a sample
    /// certified, everything invalid deleted. An unopenable directory
    /// degrades to in-memory-only service rather than refusing to start.
    pub fn new(config: ServiceConfig) -> Self {
        let mut cache = FixpointCache::new(config.cache_bytes);
        cache.set_session_ttl(config.session_ttl);
        let mut persist = None;
        let mut recovery = None;
        if let Some(dir) = &config.persist_dir {
            match PersistDir::open(dir) {
                Ok(p) => {
                    let report = p.recover(&mut cache, config.recover_certify);
                    cache.note_recovery(&report);
                    persist = Some(p);
                    recovery = Some(report);
                }
                Err(e) => {
                    eprintln!(
                        "cpsdfa-service: cannot open persist dir {}: {e} (running in-memory)",
                        dir.display()
                    );
                }
            }
        }
        AnalysisService {
            cache: Mutex::new(cache),
            persist,
            recovery,
            certify_seq: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            counters: ServiceCounters::default(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// What startup recovery found, when a persist directory is configured
    /// and was openable.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Whether the every-Nth sampler elects this answer for certification.
    fn should_certify(&self) -> bool {
        let n = self.config.certify_sample;
        n > 0 && (self.certify_seq.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(n)
    }

    /// Spills a committed fixpoint, poking the chaos plan (if armed) for a
    /// fault to inject. I/O errors degrade to in-memory-only for this
    /// entry; recovery semantics make a missing spill merely a cold start.
    fn spill(&self, key: &CacheKey, source: &str, fixpoint: &CachedFixpoint) {
        if let Some(persist) = &self.persist {
            let fault = self.config.persist_faults.as_ref().and_then(|p| p.poke());
            let _ = persist.store(key, source, fixpoint, fault);
        }
    }

    /// A snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache poisoned").stats()
    }

    /// How many rungs `kind`'s canonical ladder has under `mode` —
    /// what the admission reservation multiplies an unbounded request's
    /// per-rung budget by.
    fn ladder_rungs(kind: AnalysisKind, mode: SolverMode) -> u64 {
        let base = match kind {
            AnalysisKind::CfaPushdown => 3, // cfa.pushdown → cfa.cps → cfa.src
            AnalysisKind::CfaCps => 2,      // cfa.cps → cfa.src
            AnalysisKind::CfaSrc | AnalysisKind::MfpFlat => 1,
        };
        base + u64::from(matches!(mode, SolverMode::Par(_))) // engine-retry rung
    }

    /// Builds the per-request governance policy.
    fn policy_for(&self, req: &Request) -> GovernPolicy {
        let mut policy = GovernPolicy::new()
            .with_budget(AnalysisBudget::new(req.budget))
            .with_solver_mode(req.mode);
        if let Some(cap) = req.request_budget {
            policy = policy.with_request_budget(cap);
        }
        if let Some(ms) = req.deadline_ms {
            policy = policy.with_deadline(Duration::from_millis(ms));
        }
        policy
    }

    /// Admission rungs 1–2. On success, returns the reservation (already
    /// counted into [`reserved`](Self::reserved) — release it after the
    /// request completes). On rejection, returns the refusal reason.
    fn admit(&self, req: &Request, queue_depth: usize) -> Result<u64, &'static str> {
        if queue_depth >= self.config.max_queue {
            self.counters.rejected_queue.fetch_add(1, Ordering::Relaxed);
            return Err("queue-full");
        }
        let rungs = Self::ladder_rungs(req.kind, req.mode);
        let want = self.policy_for(req).worst_case_charges(rungs);
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            if current.saturating_add(want) > self.config.capacity_charges {
                self.counters
                    .rejected_budget
                    .fetch_add(1, Ordering::Relaxed);
                return Err("over-capacity");
            }
            match self.reserved.compare_exchange_weak(
                current,
                current + want,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(want)
    }

    fn release(&self, reservation: u64) {
        self.reserved.fetch_sub(reservation, Ordering::Relaxed);
    }

    /// Serves one admitted request: cache probe, then (on a miss) the
    /// governed ladder. Emits the request's trace into `sink` and returns
    /// the response plus the answered fixpoint.
    fn handle(
        &self,
        req: &Request,
        ctx: &mut WorkerCtx,
        sink: &mut impl TraceSink,
    ) -> (Response, Option<std::sync::Arc<CachedFixpoint>>) {
        let start = Instant::now();
        let finish = |status: Status| Response {
            id: req.id,
            latency_us: start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            status,
        };

        // Parse into the worker's hash-consing arena. A repeated program
        // re-resolves to the same node ids, so the digest below is a memo
        // hit — the whole warm path does no per-node work.
        let root = match ctx.arena.parse(&req.program) {
            Ok(root) => root,
            Err(e) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                return (
                    finish(Status::Error {
                        reason: "parse-error",
                        detail: e.to_string(),
                    }),
                    None,
                );
            }
        };
        let digest = ctx.digests.term_digest(&ctx.arena, root);
        let full_key = CacheKey::full(req.kind, req.mode, digest);

        if self.config.cache_enabled {
            let cached = self.cache.lock().expect("cache poisoned").lookup(&full_key);
            if let Some(hit) = cached {
                // Sampled certification: re-derive the constraint system
                // independently of the solver and check the cached answer
                // against it. A refuted entry — recovered corruption the
                // checksums could not see, an alignment bug, a shard merge
                // error — is evicted from memory *and* disk, then the
                // request falls through to a from-scratch solve below.
                // Wrong answers are detected and healed, never served.
                let refuted = self.should_certify() && {
                    let term = ctx.arena.to_term(root);
                    let prog = AnfProgram::from_term(&term);
                    match certify_answer(&prog, &hit.answer) {
                        Ok(_) => {
                            self.cache.lock().expect("cache poisoned").note_certify_ok();
                            sink.counter("service.certify.ok", 1);
                            false
                        }
                        Err(refutation) => {
                            let disk = self.persist.as_ref().map_or(0, |p| p.remove(&full_key));
                            let mut cache = self.cache.lock().expect("cache poisoned");
                            cache.remove(&full_key);
                            cache.note_certify_fail(disk);
                            drop(cache);
                            sink.counter("service.certify.fail", 1);
                            sink.counter(
                                &format!("service.certify.refuted.{}", refutation.tag()),
                                1,
                            );
                            true
                        }
                    }
                };
                if !refuted {
                    self.counters.served_hit.fetch_add(1, Ordering::Relaxed);
                    sink.counter("service.hit", 1);
                    if let Some(session) = req.session {
                        self.note_session(session, req, digest, &hit);
                    }
                    let resp = finish(Status::Ok {
                        cache: Served::Hit,
                        rung: full_key.rung,
                        degraded: false,
                        answer_digest: hit.answer_digest,
                        iterations: hit.answer.iterations(),
                        charged: 0,
                    });
                    return (resp, Some(hit));
                }
            }
        }

        // Miss (or cache off): lower out of the arena and run the ladder.
        let term = ctx.arena.to_term(root);
        let prog = AnfProgram::from_term(&term);

        // Watch mode: before paying for the ladder, try to warm-start from
        // the session's previous fixpoint — only the edit delta re-solves.
        // Any ineligible edit (non-monotone, misaligned, over budget)
        // falls through to the governed ladder below: warm starting is an
        // optimization, never a gate.
        'warm: {
            if !self.config.cache_enabled {
                break 'warm;
            }
            let Some(session) = req.session else {
                break 'warm;
            };
            let Some((answer, warm, charged)) = self.session_warm(req, session, &prog, sink) else {
                break 'warm;
            };
            // Certify-on-warm: a sampled warm answer is re-checked against
            // an independently derived constraint system before it is
            // served. A refutation means the remembered ancestor is
            // untrustworthy — evict the session (memory and journal) and
            // fall through to the cold ladder below.
            if self.should_certify() {
                if let Err(refutation) = certify_answer(&prog, &answer) {
                    let mut cache = self.cache.lock().expect("cache poisoned");
                    cache.evict_session(session);
                    cache.note_certify_fail(0);
                    drop(cache);
                    if let Some(persist) = &self.persist {
                        persist.remove_session(session);
                    }
                    sink.counter("service.certify.fail", 1);
                    sink.counter(&format!("service.certify.refuted.{}", refutation.tag()), 1);
                    break 'warm;
                }
                self.cache.lock().expect("cache poisoned").note_certify_ok();
                sink.counter("service.certify.ok", 1);
            }
            self.counters.served_warm.fetch_add(1, Ordering::Relaxed);
            sink.counter("service.warm", 1);
            sink.counter("service.warm.fired", warm.fired);
            let report = DegradationReport {
                attempts: vec![RungAttempt {
                    rung: "warm",
                    error: None,
                    charged,
                }],
                resource: None,
                residual_budget: req.budget.saturating_sub(charged),
                elapsed_ns: start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            };
            let fixpoint = std::sync::Arc::new(CachedFixpoint::new(answer, report));
            // The warm answer is bit-identical to a cold solve (the
            // incremental cascade's tested invariant), so it commits under
            // the very key a fresh solve of the edited program would have
            // used — and spills to disk under it, so a restarted daemon
            // recovers it.
            self.cache
                .lock()
                .expect("cache poisoned")
                .insert(full_key, (*fixpoint).clone());
            self.spill(&full_key, &req.program, &fixpoint);
            self.note_session(session, req, digest, &fixpoint);
            let resp = finish(Status::Ok {
                cache: Served::Warm,
                rung: full_key.rung,
                degraded: false,
                answer_digest: fixpoint.answer_digest,
                iterations: fixpoint.answer.iterations(),
                charged,
            });
            return (resp, Some(fixpoint));
        }

        let policy = self.policy_for(req);
        // Whatever rung of the CFA ladder answered, cache the answer in
        // its own representation so a degraded-rung probe gets back
        // exactly what was computed.
        let pack_cfa = |answer: CfaAnswer| match answer {
            CfaAnswer::Pushdown(r) => CachedAnswer::CfaPushdown(SendPushdown::from_result(&r)),
            CfaAnswer::Cps(r) => CachedAnswer::CfaCps(SendCpsCfa::from_result(&r)),
            CfaAnswer::Direct(r) => CachedAnswer::CfaSrc(SendCfa::from_result(&r)),
        };
        let governed =
            match req.kind {
                AnalysisKind::CfaPushdown => governed_pushdown_cfa(&prog, &policy, sink)
                    .map(|g| (pack_cfa(g.value), g.report)),
                AnalysisKind::CfaCps => governed_zero_cfa_cps(&prog, &policy, sink)
                    .map(|g| (pack_cfa(g.value), g.report)),
                AnalysisKind::CfaSrc => {
                    let guard = policy.guard();
                    let mode = policy.solver_mode();
                    let mut ladder = DegradationLadder::new().rung(
                        "cfa.src",
                        |g: &RunGuard, mut sink: &mut dyn TraceSink| {
                            Ok(cfa::zero_cfa_guarded_mode(&prog, mode, g, &mut sink)?.0)
                        },
                    );
                    if matches!(mode, SolverMode::Par(_)) {
                        ladder = ladder.rung(
                            "cfa.src.seq",
                            |g: &RunGuard, mut sink: &mut dyn TraceSink| {
                                Ok(cfa::zero_cfa_guarded(&prog, g, &mut sink)?.0)
                            },
                        );
                    }
                    ladder.run(&guard, sink).map(|g| {
                        (
                            CachedAnswer::CfaSrc(SendCfa::from_result(&g.value)),
                            g.report,
                        )
                    })
                }
                AnalysisKind::MfpFlat => {
                    let cfg = match Cfg::from_first_order(&prog) {
                        Ok(cfg) => cfg,
                        Err(e) => {
                            self.counters.failed.fetch_add(1, Ordering::Relaxed);
                            return (
                                finish(Status::Error {
                                    reason: "not-first-order",
                                    detail: e.to_string(),
                                }),
                                None,
                            );
                        }
                    };
                    let init = cfg.initial_env::<Flat>(&prog);
                    let guard = policy.guard();
                    let mode = policy.solver_mode();
                    let mut ladder = DegradationLadder::new().rung(
                        "mfp.flat",
                        |g: &RunGuard, mut sink: &mut dyn TraceSink| {
                            Ok(cfg
                                .solve_mfp_guarded_mode::<Flat>(init.clone(), mode, g, &mut sink)?
                                .0)
                        },
                    );
                    if matches!(mode, SolverMode::Par(_)) {
                        ladder = ladder.rung(
                            "mfp.flat.seq",
                            |g: &RunGuard, mut sink: &mut dyn TraceSink| {
                                Ok(cfg
                                    .solve_mfp_guarded_mode::<Flat>(
                                        init.clone(),
                                        SolverMode::Seq,
                                        g,
                                        &mut sink,
                                    )?
                                    .0)
                            },
                        );
                    }
                    ladder
                        .run(&guard, sink)
                        .map(|g| (CachedAnswer::MfpFlat(g.value), g.report))
                }
            };

        let (answer, report) = match governed {
            Ok(pair) => pair,
            Err(e) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                sink.counter("service.failed", 1);
                return (
                    finish(Status::Error {
                        reason: "analysis-failed",
                        detail: e.to_string(),
                    }),
                    None,
                );
            }
        };

        self.counters.served_solve.fetch_add(1, Ordering::Relaxed);
        sink.counter("service.solve", 1);
        let degraded = report.degraded();
        if degraded {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let rung = report.answered_by().unwrap_or(req.kind.full_rung());
        let charged: u64 = report.attempts.iter().map(|a| a.charged).sum();
        let fixpoint = std::sync::Arc::new(CachedFixpoint::new(answer, report));
        if self.config.cache_enabled {
            // Commit under the rung that actually answered: an undegraded
            // answer lands on the full-precision key future lookups probe;
            // a degraded answer lands on its own rung key, reachable only
            // by an explicit degraded probe — never by a fresh request.
            let commit_key = CacheKey::for_rung(req.kind, req.mode, digest, rung);
            self.cache
                .lock()
                .expect("cache poisoned")
                .insert(commit_key, (*fixpoint).clone());
            self.spill(&commit_key, &req.program, &fixpoint);
            if let Some(session) = req.session {
                self.note_session(session, req, digest, &fixpoint);
            }
        }
        let resp = finish(Status::Ok {
            cache: if self.config.cache_enabled {
                Served::Miss
            } else {
                Served::Off
            },
            rung,
            degraded,
            answer_digest: fixpoint.answer_digest,
            iterations: fixpoint.answer.iterations(),
            charged,
        });
        (resp, Some(fixpoint))
    }

    /// Remembers `fixpoint` as `session`'s latest answer, so the session's
    /// next request can warm-start from it.
    fn note_session(
        &self,
        session: u64,
        req: &Request,
        digest: u128,
        fixpoint: &std::sync::Arc<CachedFixpoint>,
    ) {
        let ancestor = Ancestor {
            kind: fixpoint.answer.kind(),
            digest,
            source: req.program.clone(),
            fixpoint: std::sync::Arc::clone(fixpoint),
        };
        // Journal the session's latest committed fixpoint so a restarted
        // daemon warm-starts the watch stream instead of going cold.
        if let Some(persist) = &self.persist {
            let fault = self.config.persist_faults.as_ref().and_then(|p| p.poke());
            let _ = persist.store_session(session, &ancestor, fault);
        }
        self.cache
            .lock()
            .expect("cache poisoned")
            .note_ancestor(session, ancestor);
    }

    /// Attempts the watch-mode warm start: the session's remembered
    /// fixpoint becomes the seed and only the edit delta re-solves. Every
    /// rung of the incremental cascade is differentially tested
    /// bit-identical to a from-scratch solve, so a `Some` answer is
    /// exactly what the ladder would have produced — minus the work.
    /// `None` means "not warm-eligible; run the ladder".
    fn session_warm(
        &self,
        req: &Request,
        session: u64,
        prog: &AnfProgram,
        sink: &mut impl TraceSink,
    ) -> Option<(CachedAnswer, WarmReport, u64)> {
        let anc = self
            .cache
            .lock()
            .expect("cache poisoned")
            .ancestor(session)?;
        // A degraded ancestor answered on a coarser rung; warm-starting
        // from it would silently propagate the degradation. Require the
        // remembered answer to be the requested analysis at full rung.
        if anc.kind != req.kind || anc.fixpoint.answer.kind() != req.kind {
            return None;
        }
        let old = AnfProgram::parse(&anc.source).ok()?;
        let guard = self.policy_for(req).guard();
        let warm = match &anc.fixpoint.answer {
            CachedAnswer::CfaSrc(prev) => {
                match incremental::zero_cfa_incremental(&old, &prev.to_result(), prog, &guard, sink)
                {
                    Ok(WarmSolve::Warm(result, report)) => {
                        Some((CachedAnswer::CfaSrc(SendCfa::from_result(&result)), report))
                    }
                    _ => None,
                }
            }
            CachedAnswer::CfaCps(prev) => {
                let old_cps = CpsProgram::from_anf(&old);
                let new_cps = CpsProgram::from_anf(prog);
                match incremental::zero_cfa_cps_incremental(
                    &old_cps,
                    &prev.to_result(),
                    &new_cps,
                    &guard,
                    sink,
                ) {
                    Ok(WarmSolve::Warm(result, report)) => Some((
                        CachedAnswer::CfaCps(SendCpsCfa::from_result(&result)),
                        report,
                    )),
                    _ => None,
                }
            }
            CachedAnswer::CfaPushdown(prev) => {
                let old_cps = CpsProgram::from_anf(&old);
                let new_cps = CpsProgram::from_anf(prog);
                match incremental::pushdown_cfa_incremental(
                    &old_cps,
                    &prev.to_result(),
                    &new_cps,
                    &guard,
                    sink,
                ) {
                    Ok(WarmSolve::Warm(result, report)) => Some((
                        CachedAnswer::CfaPushdown(SendPushdown::from_result(&result)),
                        report,
                    )),
                    _ => None,
                }
            }
            CachedAnswer::MfpFlat(prev) => incremental::solve_mfp_incremental(&old, prev, prog)
                .map(|(summary, report)| (CachedAnswer::MfpFlat(summary), report)),
        };
        warm.map(|(answer, report)| (answer, report, guard.total_spent()))
    }

    /// Runs a batch of request lines through the worker pool and returns
    /// the outcomes *in request order* (admission rejections and parse
    /// errors included). This is the in-process entry point the tests and
    /// the E20 benchmark drive; [`serve`](AnalysisService::serve) is the
    /// same machinery fed from a stream.
    pub fn run_batch(&self, lines: &[&str]) -> Vec<Outcome> {
        self.run_batch_traced(lines, &mut cpsdfa_core::NoopSink)
    }

    /// [`run_batch`](AnalysisService::run_batch), streaming per-request
    /// traces and the end-of-batch `cache.*` flush into `trace`.
    pub fn run_batch_traced(
        &self,
        lines: &[&str],
        trace: &mut (impl TraceSink + Send),
    ) -> Vec<Outcome> {
        let queue = Queue::new();
        let slots: Vec<Mutex<Option<Outcome>>> = lines.iter().map(|_| Mutex::new(None)).collect();
        let trace_shared = Mutex::new(trace);
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| {
                    let mut ctx = WorkerCtx::new();
                    while let Some(job) = queue.pop() {
                        let outcome = self.run_job(&job, &mut ctx, &trace_shared);
                        *slots[job.slot].lock().expect("slot poisoned") = Some(outcome);
                        self.release(job.reservation);
                    }
                });
            }
            // Feed in order; workers drain concurrently, so the
            // queue-depth rung sees the true backlog.
            for (slot, line) in lines.iter().enumerate() {
                match Request::parse(
                    line,
                    self.config.default_budget,
                    self.config.default_deadline_ms,
                    self.config.workers,
                ) {
                    Ok(request) => match self.admit(&request, queue.depth()) {
                        Ok(reservation) => queue.push(Job {
                            slot,
                            request,
                            reservation,
                            enqueued: Instant::now(),
                        }),
                        Err(reason) => {
                            *slots[slot].lock().expect("slot poisoned") = Some(Outcome {
                                response: Response {
                                    id: request.id,
                                    latency_us: 0,
                                    status: Status::Rejected { reason },
                                },
                                fixpoint: None,
                            });
                        }
                    },
                    Err(bad) => {
                        *slots[slot].lock().expect("slot poisoned") = Some(Outcome {
                            response: bad_request_response(&bad),
                            fixpoint: None,
                        });
                    }
                }
            }
            queue.close();
        });
        let outcomes: Vec<Outcome> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot poisoned")
                    .expect("every slot is filled by a worker or the feeder")
            })
            .collect();
        let stats = self.cache_stats();
        stats.emit_into(&mut *trace_shared.lock().expect("trace poisoned"), "cache");
        outcomes
    }

    /// Runs one admitted job, wrapping its trace in a `service.req` span
    /// in the shared sink. Each request aggregates into a private
    /// [`AggSink`] first, so process-cumulative counters are never
    /// double-counted into the stream.
    fn run_job<S: TraceSink>(&self, job: &Job, ctx: &mut WorkerCtx, trace: &Mutex<S>) -> Outcome {
        let mut agg = AggSink::new();
        agg.gauge(
            "service.queue_wait_us",
            job.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64,
        );
        let (response, fixpoint) = self.handle(&job.request, ctx, &mut agg);
        let mut guard = trace.lock().expect("trace poisoned");
        let sink = &mut *guard;
        if sink.enabled() {
            let span = format!("service.req.{}", job.request.id);
            sink.span_start(&span);
            agg.replay_into(sink);
            sink.time_ns("service.req.latency", response.latency_us * 1000);
            sink.span_end(&span);
        }
        Outcome { response, fixpoint }
    }

    /// The daemon loop: JSONL requests from `input`, JSONL responses to
    /// `output` (as they complete — order is by completion, correlate by
    /// `id`), per-request traces to `trace`. Returns when `input` ends or
    /// a `{"cmd": "shutdown"}` line arrives; pending admitted requests
    /// are drained first.
    pub fn serve(
        &self,
        input: impl BufRead,
        output: impl Write + Send,
        trace: Option<JsonlSink<Box<dyn Write + Send>>>,
    ) -> io::Result<()> {
        let queue = Queue::new();
        let out = Mutex::new(output);
        let trace_shared = Mutex::new(match trace {
            Some(sink) => TraceOut::Jsonl(sink),
            None => TraceOut::Off,
        });
        let write_line = |line: &str| -> io::Result<()> {
            let mut w = out.lock().expect("writer poisoned");
            writeln!(w, "{line}")?;
            w.flush()
        };
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| {
                    let mut ctx = WorkerCtx::new();
                    while let Some(job) = queue.pop() {
                        let outcome = self.run_job(&job, &mut ctx, &trace_shared);
                        self.release(job.reservation);
                        let _ = write_line(&outcome.response.to_json());
                    }
                });
            }
            // The feeder runs inside a closure so that `queue.close()` is
            // reached on EVERY exit path, error or not. A `?` that escaped
            // the scope directly would leave the workers parked forever in
            // `Queue::pop` and `thread::scope` would never return — one
            // invalid-UTF-8 byte on stdin would wedge the daemon instead of
            // surfacing the error.
            let fed = (|| -> io::Result<()> {
                for line in input.lines() {
                    let line = line?;
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if let Some(cmd) = control_command(line) {
                        match cmd.as_str() {
                            "shutdown" => break,
                            "stats" => {
                                write_line(&self.stats_json())?;
                                continue;
                            }
                            "health" => {
                                write_line(&self.health_json(queue.depth()))?;
                                continue;
                            }
                            other => {
                                write_line(&format!(
                                    "{{\"status\": \"error\", \"reason\": \"bad-request\", \
                                     \"detail\": \"unknown cmd {}\"}}",
                                    json::escape(other)
                                ))?;
                                continue;
                            }
                        }
                    }
                    match Request::parse(
                        line,
                        self.config.default_budget,
                        self.config.default_deadline_ms,
                        self.config.workers,
                    ) {
                        Ok(request) => match self.admit(&request, queue.depth()) {
                            Ok(reservation) => queue.push(Job {
                                slot: 0,
                                request,
                                reservation,
                                enqueued: Instant::now(),
                            }),
                            Err(reason) => write_line(
                                &Response {
                                    id: request.id,
                                    latency_us: 0,
                                    status: Status::Rejected { reason },
                                }
                                .to_json(),
                            )?,
                        },
                        Err(bad) => write_line(&bad_request_response(&bad).to_json())?,
                    }
                }
                Ok(())
            })();
            // Unconditional: workers drain whatever was admitted before the
            // failure, then exit, then the feeder's error (if any)
            // propagates.
            queue.close();
            fed
        })?;
        // Final flush: cumulative cache counters into the trace stream.
        if let TraceOut::Jsonl(sink) = &mut *trace_shared.lock().expect("trace poisoned") {
            self.cache_stats().emit_into(sink, "cache");
        }
        Ok(())
    }

    /// The `{"cmd": "stats"}` response line.
    pub fn stats_json(&self) -> String {
        let cache = self.cache_stats();
        let c = &self.counters;
        format!(
            "{{\"status\": \"stats\", \"accepted\": {}, \"rejected_queue\": {}, \
             \"rejected_budget\": {}, \"served_hit\": {}, \"served_warm\": {}, \
             \"served_solve\": {}, \
             \"degraded\": {}, \"failed\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_entries\": {}, \"cache_bytes\": {}, \"reserved_charges\": {}, \
             \"certify_ok\": {}, \"certify_fail\": {}, \"persist_recovered\": {}, \
             \"persist_corrupt\": {}, \"persist_evicted_bytes\": {}, \
             \"session_ttl_evict\": {}}}",
            c.accepted.load(Ordering::Relaxed),
            c.rejected_queue.load(Ordering::Relaxed),
            c.rejected_budget.load(Ordering::Relaxed),
            c.served_hit.load(Ordering::Relaxed),
            c.served_warm.load(Ordering::Relaxed),
            c.served_solve.load(Ordering::Relaxed),
            c.degraded.load(Ordering::Relaxed),
            c.failed.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.entries,
            cache.bytes,
            self.reserved.load(Ordering::Relaxed),
            cache.certify_ok,
            cache.certify_fail,
            cache.persist_recovered,
            cache.persist_corrupt,
            cache.persist_evicted_bytes,
            cache.session_ttl_evictions,
        )
    }

    /// The `{"cmd": "health"}` response line: liveness plus the last
    /// startup-recovery summary, as one flat JSON object.
    pub fn health_json(&self, queue_depth: usize) -> String {
        let cache = self.cache_stats();
        let rec = self.recovery.unwrap_or_default();
        format!(
            "{{\"status\": \"health\", \"queue_depth\": {}, \"workers\": {}, \
             \"cache_entries\": {}, \"cache_bytes\": {}, \"persist\": {}, \
             \"recovered_entries\": {}, \"recovered_bytes\": {}, \
             \"recovered_corrupt\": {}, \"recovered_stale\": {}, \
             \"recovered_interrupted\": {}, \"recovered_sessions\": {}}}",
            queue_depth,
            self.config.workers,
            cache.entries,
            cache.bytes,
            self.persist.is_some(),
            rec.recovered,
            rec.bytes,
            rec.corrupt,
            rec.stale,
            rec.interrupted,
            rec.sessions,
        )
    }
}

/// The serve loop's trace slot: a JSONL stream or nothing.
enum TraceOut {
    Jsonl(JsonlSink<Box<dyn Write + Send>>),
    Off,
}

impl TraceSink for TraceOut {
    fn enabled(&self) -> bool {
        matches!(self, TraceOut::Jsonl(_))
    }
    fn counter(&mut self, name: &str, delta: u64) {
        if let TraceOut::Jsonl(s) = self {
            s.counter(name, delta);
        }
    }
    fn gauge(&mut self, name: &str, value: u64) {
        if let TraceOut::Jsonl(s) = self {
            s.gauge(name, value);
        }
    }
    fn time_ns(&mut self, name: &str, ns: u64) {
        if let TraceOut::Jsonl(s) = self {
            s.time_ns(name, ns);
        }
    }
    fn span_start(&mut self, name: &str) {
        if let TraceOut::Jsonl(s) = self {
            s.span_start(name);
        }
    }
    fn span_end(&mut self, name: &str) {
        if let TraceOut::Jsonl(s) = self {
            s.span_end(name);
        }
    }
}

fn control_command(line: &str) -> Option<String> {
    let fields = json::parse_object(line).ok()?;
    json::field(&fields, "cmd")
        .and_then(json::Scalar::as_str)
        .map(str::to_owned)
}

fn bad_request_response(bad: &BadRequest) -> Response {
    Response {
        id: bad.id.unwrap_or(0),
        latency_us: 0,
        status: Status::Error {
            reason: if bad.id.is_some() {
                "bad-request"
            } else {
                "parse-error"
            },
            detail: bad.detail.clone(),
        },
    }
}
