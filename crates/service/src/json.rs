//! A minimal flat-JSON-object reader and string escaper for the service
//! wire protocol — serde-free, like the rest of the workspace (the trace
//! layer's JSONL writer/parser set the precedent).
//!
//! The protocol only ever exchanges *flat* objects whose values are
//! strings, integers, or booleans, so that is all this module accepts.
//! Nested objects/arrays are a parse error, not a silent skip.

/// A scalar field value in a protocol object.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number, restricted to unsigned integers (every numeric
    /// protocol field — ids, budgets, millisecond allowances — is one).
    UInt(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl Scalar {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k": v, ...}`) into its fields, in
/// source order. Returns `Err` with a short human-readable reason on
/// anything that is not a flat object of string/uint/bool scalars.
pub fn parse_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.scalar()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing content after object".to_owned());
    }
    Ok(fields)
}

/// Looks a field up by name in a parsed object.
pub fn field<'a>(fields: &'a [(String, Scalar)], name: &str) -> Option<&'a Scalar> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Escapes `s` for embedding in a JSON string literal (quotes, backslash,
/// and control characters; everything else passes through verbatim).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = match self.hex4()? {
                            // High surrogate: standard encoders (e.g.
                            // Python's json.dumps with ensure_ascii) emit
                            // every non-BMP character as a \u pair, so the
                            // low half must follow immediately.
                            hi @ 0xD800..=0xDBFF => {
                                self.expect(b'\\')
                                    .and_then(|()| self.expect(b'u'))
                                    .map_err(|_| "high surrogate not followed by \\u escape")?;
                                match self.hex4()? {
                                    lo @ 0xDC00..=0xDFFF => {
                                        0x1_0000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    }
                                    _ => {
                                        return Err("high surrogate not followed by low \
                                                     surrogate"
                                            .to_owned())
                                    }
                                }
                            }
                            0xDC00..=0xDFFF => return Err("lone low surrogate".to_owned()),
                            code => code,
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 tail starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(Scalar::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Scalar::Bool(false))
            }
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
                text.parse::<u64>()
                    .map(Scalar::UInt)
                    .map_err(|e| format!("bad integer {text:?}: {e}"))
            }
            Some(b'{') | Some(b'[') => Err("nested values are not part of the protocol".to_owned()),
            other => Err(format!("expected a scalar, got {other:?}")),
        }
    }

    /// Four hex digits of a `\u` escape (the `\u` itself already consumed).
    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.next().ok_or("truncated \\u escape")?;
            code = code * 16 + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
        }
        Ok(code)
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected literal {word}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let fields = parse_object(
            r#"{"id": 7, "analysis": "cfa.cps", "program": "(f \"x\")", "warm": true}"#,
        )
        .unwrap();
        assert_eq!(field(&fields, "id").unwrap().as_u64(), Some(7));
        assert_eq!(
            field(&fields, "analysis").unwrap().as_str(),
            Some("cfa.cps")
        );
        assert_eq!(
            field(&fields, "program").unwrap().as_str(),
            Some("(f \"x\")")
        );
        assert_eq!(field(&fields, "warm").unwrap().as_bool(), Some(true));
        assert!(field(&fields, "missing").is_none());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\n\"quoted\" \\ tab\t λ";
        let line = format!(r#"{{"s": "{}"}}"#, escape(nasty));
        let fields = parse_object(&line).unwrap();
        assert_eq!(field(&fields, "s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_are_rejected() {
        // What Python's json.dumps (default ensure_ascii=True) emits for a
        // non-BMP character: a UTF-16 surrogate pair of \u escapes.
        let fields = parse_object("{\"s\": \"\\ud83d\\ude00!\"}").unwrap();
        assert_eq!(field(&fields, "s").unwrap().as_str(), Some("\u{1F600}!"));
        // BMP escapes still decode directly.
        let fields = parse_object("{\"s\": \"\\u03bb\"}").unwrap();
        assert_eq!(field(&fields, "s").unwrap().as_str(), Some("λ"));
        // Lone or malformed surrogates are invalid JSON text.
        assert!(parse_object(r#"{"s": "\ud83d"}"#).is_err());
        assert!(parse_object(r#"{"s": "\ud83d oops"}"#).is_err());
        assert!(parse_object(r#"{"s": "\ud83dA"}"#).is_err());
        assert!(parse_object(r#"{"s": "\ude00"}"#).is_err());
    }

    #[test]
    fn rejects_nested_and_trailing_garbage() {
        assert!(parse_object(r#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_object(r#"{"a": [1]}"#).is_err());
        assert!(parse_object(r#"{"a": 1} extra"#).is_err());
        assert!(parse_object(r#"{"a": }"#).is_err());
        assert!(parse_object("").is_err());
    }

    #[test]
    fn empty_object_is_ok() {
        assert_eq!(parse_object("{}").unwrap().len(), 0);
        assert_eq!(parse_object(" { } ").unwrap().len(), 0);
    }
}
