//! `cpsdfad` — the analysis daemon. JSONL requests on stdin, JSONL
//! responses on stdout, optional JSONL trace stream to a file.
//!
//! ```text
//! cpsdfad [--workers N] [--cache-bytes N] [--max-queue N] [--capacity N]
//!         [--budget N] [--deadline-ms N] [--no-cache] [--trace PATH]
//!         [--persist-dir PATH] [--certify N] [--session-ttl-ms N]
//! ```
//!
//! Request lines look like
//! `{"id": 1, "analysis": "cfa.cps", "program": "(let (f (lambda (x) x)) (f 1))"}`
//! (optional fields: `mode` = `seq`/`par`/`par:K`, `budget`,
//! `request_budget`, `deadline_ms`, and `session` — requests sharing a
//! session id form an edit stream whose steps warm-start from the
//! session's previous fixpoint). Control lines: `{"cmd": "stats"}`,
//! `{"cmd": "health"}`, `{"cmd": "shutdown"}`. Responses correlate by `id`
//! and may complete out of order.
//!
//! `--persist-dir` makes the cache crash-safe: answers spill to a
//! directory of checksummed, atomically-committed entries, recovered (and
//! re-verified) on the next start. `--certify N` independently re-checks
//! every Nth cached/warm answer against a re-derived constraint system
//! before serving it (1 = certify everything); refuted entries are evicted
//! and recomputed, never served. `--session-ttl-ms` bounds how long an
//! idle watch session keeps its warm-start state (0 = no TTL).

use cpsdfa_core::JsonlSink;
use cpsdfa_service::{AnalysisService, ServiceConfig};
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "cpsdfad: analysis daemon (JSONL on stdin/stdout)\n\
                     flags: --workers N --cache-bytes N --max-queue N --capacity N\n\
                     \x20      --budget N --deadline-ms N --no-cache --trace PATH\n\
                     \x20      --persist-dir PATH --certify N --session-ttl-ms N";

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let result: Result<(), String> = match arg.as_str() {
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|n: usize| config.workers = n.max(1))
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--cache-bytes" => value("--cache-bytes").and_then(|v| {
                v.parse()
                    .map(|n| config.cache_bytes = n)
                    .map_err(|e| format!("--cache-bytes: {e}"))
            }),
            "--max-queue" => value("--max-queue").and_then(|v| {
                v.parse()
                    .map(|n| config.max_queue = n)
                    .map_err(|e| format!("--max-queue: {e}"))
            }),
            "--capacity" => value("--capacity").and_then(|v| {
                v.parse()
                    .map(|n| config.capacity_charges = n)
                    .map_err(|e| format!("--capacity: {e}"))
            }),
            "--budget" => value("--budget").and_then(|v| {
                v.parse()
                    .map(|n| config.default_budget = n)
                    .map_err(|e| format!("--budget: {e}"))
            }),
            "--deadline-ms" => value("--deadline-ms").and_then(|v| {
                v.parse()
                    .map(|n| config.default_deadline_ms = Some(n))
                    .map_err(|e| format!("--deadline-ms: {e}"))
            }),
            "--no-cache" => {
                config.cache_enabled = false;
                Ok(())
            }
            "--persist-dir" => value("--persist-dir").map(|v| {
                config.persist_dir = Some(v.into());
            }),
            "--certify" => value("--certify").and_then(|v| {
                v.parse()
                    .map(|n| config.certify_sample = n)
                    .map_err(|e| format!("--certify: {e}"))
            }),
            "--session-ttl-ms" => value("--session-ttl-ms").and_then(|v| {
                v.parse()
                    .map(|n: u64| {
                        config.session_ttl = (n > 0).then(|| Duration::from_millis(n));
                    })
                    .map_err(|e| format!("--session-ttl-ms: {e}"))
            }),
            "--trace" => value("--trace").map(|v| trace_path = Some(v)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = result {
            eprintln!("cpsdfad: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let trace = match &trace_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => {
                let w: Box<dyn Write + Send> = Box::new(BufWriter::new(f));
                Some(JsonlSink::new(w))
            }
            Err(e) => {
                eprintln!("cpsdfad: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let service = AnalysisService::new(config);
    let stdin = io::stdin();
    // `Stdout` is `Send` (it locks per write); the explicit lock guard is
    // not, and `serve` serializes writers behind its own mutex anyway.
    match service.serve(stdin.lock(), io::stdout(), trace) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cpsdfad: i/o error: {e}");
            ExitCode::FAILURE
        }
    }
}
