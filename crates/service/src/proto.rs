//! The service wire protocol: JSONL requests in, JSONL responses out.
//!
//! One request per line, one response per line, correlated by `id`
//! (responses may arrive out of order — the worker pool completes
//! whichever request finishes first). Two control lines drive the daemon:
//! `{"cmd": "stats"}` reports the cache/admission counters without running
//! anything, `{"cmd": "shutdown"}` drains the queue and exits.

use crate::json::{self, Scalar};
use cpsdfa_core::cache::AnalysisKind;
use cpsdfa_core::SolverMode;

/// A parsed analysis request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Which fixpoint to run.
    pub kind: AnalysisKind,
    /// The program source (the same s-expression syntax every front end in
    /// the workspace parses).
    pub program: String,
    /// Engine selection (`"seq"`, `"par"` = the pool's worker count,
    /// `"par:K"`).
    pub mode: SolverMode,
    /// Per-rung goal budget.
    pub budget: u64,
    /// Whole-request cumulative charge cap, if the client set one.
    pub request_budget: Option<u64>,
    /// Wall-clock allowance in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Watch-mode session id, if the client opened one. Requests sharing a
    /// session id are treated as an edit stream: the daemon remembers each
    /// answered fixpoint and warm-starts the next request of the session
    /// from it (PR 9), falling back to the ordinary governed ladder when
    /// the edit is not warm-eligible.
    pub session: Option<u64>,
}

/// Why a line could not even be turned into a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub struct BadRequest {
    /// The id, when one could be recovered from the malformed line.
    pub id: Option<u64>,
    /// Human-readable reason.
    pub detail: String,
}

impl Request {
    /// Parses one request line, filling unspecified knobs from the
    /// defaults. `default_workers` resolves a bare `"mode": "par"`.
    pub fn parse(
        line: &str,
        default_budget: u64,
        default_deadline_ms: Option<u64>,
        default_workers: usize,
    ) -> Result<Request, BadRequest> {
        let fields = json::parse_object(line).map_err(|detail| BadRequest { id: None, detail })?;
        let id = json::field(&fields, "id")
            .and_then(Scalar::as_u64)
            .ok_or_else(|| BadRequest {
                id: None,
                detail: "missing or non-integer \"id\"".to_owned(),
            })?;
        let fail = |detail: String| BadRequest {
            id: Some(id),
            detail,
        };
        let kind_name = json::field(&fields, "analysis")
            .and_then(Scalar::as_str)
            .ok_or_else(|| fail("missing \"analysis\"".to_owned()))?;
        let kind = AnalysisKind::parse(kind_name).ok_or_else(|| {
            // The expected-list is derived from `AnalysisKind::ALL`, so a
            // new kind can never be missing from this message.
            let expected: Vec<&str> = AnalysisKind::ALL.iter().map(|k| k.as_str()).collect();
            fail(format!(
                "unknown analysis {kind_name:?} (expected one of: {})",
                expected.join(", ")
            ))
        })?;
        let program = json::field(&fields, "program")
            .and_then(Scalar::as_str)
            .ok_or_else(|| fail("missing \"program\"".to_owned()))?
            .to_owned();
        let mode = match json::field(&fields, "mode").and_then(Scalar::as_str) {
            None | Some("seq") => SolverMode::Seq,
            Some("par") => SolverMode::Par(default_workers),
            Some(m) => match m.strip_prefix("par:").and_then(|k| k.parse::<usize>().ok()) {
                Some(k) if k > 0 => SolverMode::Par(k),
                _ => {
                    return Err(fail(format!(
                        "bad mode {m:?} (expected seq, par, or par:K)"
                    )))
                }
            },
        };
        let budget = json::field(&fields, "budget")
            .and_then(Scalar::as_u64)
            .unwrap_or(default_budget);
        let request_budget = json::field(&fields, "request_budget").and_then(Scalar::as_u64);
        let deadline_ms = json::field(&fields, "deadline_ms")
            .and_then(Scalar::as_u64)
            .or(default_deadline_ms);
        let session = json::field(&fields, "session").and_then(Scalar::as_u64);
        Ok(Request {
            id,
            kind,
            program,
            mode,
            budget,
            request_budget,
            deadline_ms,
            session,
        })
    }
}

/// How a completed request was served.
#[derive(Debug, Clone, PartialEq)]
pub enum Served {
    /// Answered from the content-addressed cache without touching the
    /// solver.
    Hit,
    /// Solved fresh (and, when caching is on, committed to the cache).
    Miss,
    /// Warm-started from the session's previous fixpoint: the edit delta
    /// was re-solved incrementally instead of from scratch. The answer is
    /// bit-identical to a fresh solve (and committed to the cache under
    /// the same key a fresh solve would use).
    Warm,
    /// Solved fresh with the cache disabled.
    Off,
}

impl Served {
    /// The wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Served::Hit => "hit",
            Served::Miss => "miss",
            Served::Warm => "warm",
            Served::Off => "off",
        }
    }
}

/// The outcome payload of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// The request was answered.
    Ok {
        /// Cache disposition.
        cache: Served,
        /// The ladder rung that produced the answer.
        rung: &'static str,
        /// Whether a fallback rung (not the finest) answered.
        degraded: bool,
        /// FNV-1a digest of the answer's canonical form — what clients
        /// compare for bit-identity without shipping whole stores.
        answer_digest: u64,
        /// Fixpoint iterations the producing run performed (0 on MFP).
        iterations: u64,
        /// Charges the request consumed across all rungs (0 on a hit).
        charged: u64,
    },
    /// Admission control refused the request before queuing.
    Rejected {
        /// `queue-full` or `over-capacity`.
        reason: &'static str,
    },
    /// The request was admitted but could not be answered.
    Error {
        /// `parse-error`, `bad-request`, `not-first-order`, or
        /// `analysis-failed`.
        reason: &'static str,
        /// Human-readable specifics.
        detail: String,
    },
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id (0 when the line was too malformed to
    /// carry one).
    pub id: u64,
    /// Wall-clock service latency for this request, microseconds
    /// (admission rejections report the admission check's latency).
    pub latency_us: u64,
    /// What happened.
    pub status: Status,
}

impl Response {
    /// Renders the response as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"id\": {}", self.id);
        match &self.status {
            Status::Ok {
                cache,
                rung,
                degraded,
                answer_digest,
                iterations,
                charged,
            } => {
                out.push_str(&format!(
                    ", \"status\": \"ok\", \"cache\": \"{}\", \"rung\": \"{}\", \
                     \"degraded\": {}, \"answer_digest\": \"{:016x}\", \
                     \"iterations\": {}, \"charged\": {}",
                    cache.as_str(),
                    json::escape(rung),
                    degraded,
                    answer_digest,
                    iterations,
                    charged
                ));
            }
            Status::Rejected { reason } => {
                out.push_str(&format!(
                    ", \"status\": \"rejected\", \"reason\": \"{reason}\""
                ));
            }
            Status::Error { reason, detail } => {
                out.push_str(&format!(
                    ", \"status\": \"error\", \"reason\": \"{reason}\", \"detail\": \"{}\"",
                    json::escape(detail)
                ));
            }
        }
        out.push_str(&format!(", \"latency_us\": {}}}", self.latency_us));
        out
    }

    /// Parses a response line back (the inverse of
    /// [`to_json`](Response::to_json)) — used by the smoke test that
    /// replays a recorded session and by clients written against this
    /// crate.
    pub fn parse(line: &str) -> Result<Response, String> {
        let fields = json::parse_object(line)?;
        let get_str = |name: &str| {
            json::field(&fields, name)
                .and_then(Scalar::as_str)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let get_u64 = |name: &str| {
            json::field(&fields, name)
                .and_then(Scalar::as_u64)
                .ok_or_else(|| format!("missing integer field {name:?}"))
        };
        let id = get_u64("id")?;
        let latency_us = get_u64("latency_us")?;
        let status = match get_str("status")? {
            "ok" => Status::Ok {
                cache: match get_str("cache")? {
                    "hit" => Served::Hit,
                    "miss" => Served::Miss,
                    "warm" => Served::Warm,
                    "off" => Served::Off,
                    other => return Err(format!("unknown cache disposition {other:?}")),
                },
                rung: intern_rung(get_str("rung")?),
                degraded: json::field(&fields, "degraded")
                    .and_then(Scalar::as_bool)
                    .ok_or("missing \"degraded\"")?,
                answer_digest: u64::from_str_radix(get_str("answer_digest")?, 16)
                    .map_err(|e| format!("bad answer_digest: {e}"))?,
                iterations: get_u64("iterations")?,
                charged: get_u64("charged")?,
            },
            "rejected" => Status::Rejected {
                reason: match get_str("reason")? {
                    "queue-full" => "queue-full",
                    "over-capacity" => "over-capacity",
                    other => return Err(format!("unknown rejection reason {other:?}")),
                },
            },
            "error" => Status::Error {
                reason: match get_str("reason")? {
                    "parse-error" => "parse-error",
                    "bad-request" => "bad-request",
                    "not-first-order" => "not-first-order",
                    "analysis-failed" => "analysis-failed",
                    other => return Err(format!("unknown error reason {other:?}")),
                },
                detail: get_str("detail")?.to_owned(),
            },
            other => return Err(format!("unknown status {other:?}")),
        };
        Ok(Response {
            id,
            latency_us,
            status,
        })
    }
}

/// Maps a rung name arriving off the wire back to the `&'static str` the
/// ladders use. Unknown names (future rungs) leak once — acceptable for a
/// test/client utility, never called on the serving path.
fn intern_rung(name: &str) -> &'static str {
    for known in [
        "cfa.src",
        "cfa.src.seq",
        "cfa.cps",
        "cfa.cps.seq",
        "cfa.pushdown",
        "cfa.pushdown.seq",
        "mfp.flat",
        "mfp.flat.seq",
    ] {
        if name == known {
            return known;
        }
    }
    Box::leak(name.to_owned().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_and_overrides() {
        let line = r#"{"id": 3, "analysis": "cfa.cps", "program": "(f 1)"}"#;
        let req = Request::parse(line, 50_000, Some(100), 4).unwrap();
        assert_eq!(req.id, 3);
        assert_eq!(req.kind, AnalysisKind::CfaCps);
        assert_eq!(req.mode, SolverMode::Seq);
        assert_eq!(req.budget, 50_000);
        assert_eq!(req.deadline_ms, Some(100));
        let line = r#"{"id": 4, "analysis": "mfp.flat", "program": "1", "mode": "par:2",
                       "budget": 9, "request_budget": 12, "deadline_ms": 5}"#;
        let req = Request::parse(line, 50_000, None, 4).unwrap();
        assert_eq!(req.mode, SolverMode::Par(2));
        assert_eq!(req.budget, 9);
        assert_eq!(req.request_budget, Some(12));
        assert_eq!(req.deadline_ms, Some(5));
    }

    #[test]
    fn bad_requests_carry_the_id_when_recoverable() {
        let err = Request::parse(
            r#"{"id": 9, "analysis": "nope", "program": "x"}"#,
            1,
            None,
            1,
        )
        .unwrap_err();
        assert_eq!(err.id, Some(9));
        assert!(err.detail.contains("unknown analysis"));
        // The expected-kind list in the message is generated from
        // `AnalysisKind::ALL`: every wire name is advertised.
        for k in AnalysisKind::ALL {
            assert!(
                err.detail.contains(k.as_str()),
                "{:?} missing from {:?}",
                k.as_str(),
                err.detail
            );
        }
        let err = Request::parse("not json", 1, None, 1).unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn pushdown_requests_parse() {
        let line = r#"{"id": 11, "analysis": "cfa.pushdown", "program": "(f 1)", "mode": "par:2"}"#;
        let req = Request::parse(line, 50_000, None, 4).unwrap();
        assert_eq!(req.kind, AnalysisKind::CfaPushdown);
        assert_eq!(req.mode, SolverMode::Par(2));
        // The answering rung names survive a response round trip.
        for rung in ["cfa.pushdown", "cfa.pushdown.seq"] {
            let resp = Response {
                id: 11,
                latency_us: 7,
                status: Status::Ok {
                    cache: Served::Miss,
                    rung: intern_rung(rung),
                    degraded: rung.ends_with(".seq"),
                    answer_digest: 1,
                    iterations: 2,
                    charged: 3,
                },
            };
            assert_eq!(Response::parse(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response {
                id: 1,
                latency_us: 420,
                status: Status::Ok {
                    cache: Served::Hit,
                    rung: "cfa.cps",
                    degraded: false,
                    answer_digest: 0xdead_beef_0042_1137,
                    iterations: 17,
                    charged: 0,
                },
            },
            Response {
                id: 2,
                latency_us: 3,
                status: Status::Rejected {
                    reason: "queue-full",
                },
            },
            Response {
                id: 3,
                latency_us: 55,
                status: Status::Error {
                    reason: "analysis-failed",
                    detail: "budget exhausted (1000 goals)".to_owned(),
                },
            },
        ] {
            let line = resp.to_json();
            assert_eq!(Response::parse(&line).unwrap(), resp, "line: {line}");
        }
    }
}
