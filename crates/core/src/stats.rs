//! Machine-independent cost accounting for the analyzers.
//!
//! §6.2 argues that CPS-style analyses duplicate the analysis of the
//! continuation "at an overall exponential cost". Wall-clock time depends
//! on the machine; *goals expanded* does not, so every analyzer counts its
//! rule instantiations, cycle cuts (§4.4 loop detections), and maximum
//! derivation depth. The cost experiments (E6–E8) report these.

use crate::trace::{AggSink, TraceSink};
use std::fmt;

/// Counters accumulated during one analysis run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Rule instantiations (term-evaluation goals).
    pub goals: u64,
    /// §4.4 loop detections: goals answered with the least-precise value
    /// because `(M, σ)` repeated on the derivation path.
    pub cycle_cuts: u64,
    /// Deepest derivation path observed.
    pub max_depth: usize,
    /// Continuation applications (`appr`-style transitions), where the
    /// duplication of §6.2 shows up directly.
    pub returns: u64,
}

impl AnalysisStats {
    /// Records entering a goal at depth `depth`.
    pub(crate) fn enter_goal(&mut self, depth: usize) {
        self.goals += 1;
        self.max_depth = self.max_depth.max(depth);
    }

    /// Flushes these counters into a trace sink under `prefix` (e.g.
    /// `semcps.goals`, `semcps.max_depth`). One call per run — the per-goal
    /// path never touches the sink.
    pub fn emit_into(&self, sink: &mut impl TraceSink, prefix: &str) {
        if !sink.enabled() {
            return;
        }
        sink.counter(&format!("{prefix}.goals"), self.goals);
        sink.counter(&format!("{prefix}.cycle_cuts"), self.cycle_cuts);
        sink.counter(&format!("{prefix}.returns"), self.returns);
        sink.gauge(&format!("{prefix}.max_depth"), self.max_depth as u64);
    }
}

impl fmt::Display for AnalysisStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "goals={} returns={} cuts={} depth={}",
            self.goals, self.returns, self.cycle_cuts, self.max_depth
        )
    }
}

/// Counters from one run of the sparse worklist engine
/// ([`WorklistSolver`](crate::solver::WorklistSolver)), optionally folded
/// together with the set-pool counters of the same run. The interesting
/// quantity for §6-style cost arguments is `coalesced`: every coalesced
/// post is a constraint evaluation the dense formulation would have paid
/// for and the sparse one did not.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Flow nodes registered.
    pub nodes: u64,
    /// Constraints registered.
    pub constraints: u64,
    /// Constraint activations requested (initial posts + change posts).
    pub posted: u64,
    /// Activations absorbed by an already-pending constraint — re-visits
    /// the sparse engine saved.
    pub coalesced: u64,
    /// Constraint evaluations actually performed.
    pub fired: u64,
    /// Node-value growth events observed.
    pub node_updates: u64,
    /// Worklist depth high-water mark (pending constraints).
    pub queue_peak: u64,
    /// Distinct sets interned by the run's set pool (0 for non-pooled
    /// instances such as MFP).
    pub pool_interned: u64,
    /// Set-pool joins answered without building a set.
    pub pool_join_hits: u64,
    /// Set-pool joins that materialized a union.
    pub pool_join_misses: u64,
    /// Canonical-run commits answered from the commit memo (both
    /// `SetPool::commit` and `DeltaNodes::commit_into`).
    pub pool_commit_hits: u64,
    /// Canonical-run commits that had to intern.
    pub pool_commit_misses: u64,
    /// Non-empty per-watch delta deliveries
    /// ([`take_deltas`](crate::solver::WorklistSolver::take_deltas) ranges).
    pub delta_batches: u64,
    /// Total delta elements delivered across all firings (for
    /// version-counter clients such as MFP: change events observed).
    pub delta_elems: u64,
    /// Histogram of per-firing delta sizes in log₂ buckets:
    /// `[0, 1, 2, 3–4, 5–8, 9–16, 17–32, >32]`. The shape distinguishes
    /// semi-naïve regimes (many small deltas) from full re-reads (few huge
    /// ones); E16 renders it alongside firings × mean-delta.
    pub delta_hist: [u64; 8],
}

/// Upper bounds of the [`SolverStats::delta_hist`] buckets (the last bucket
/// is unbounded).
pub const DELTA_HIST_BOUNDS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

impl SolverStats {
    /// Folds a set pool's counters into these solver counters.
    #[must_use]
    pub fn with_pool(mut self, pool: crate::setpool::PoolStats) -> Self {
        self.pool_interned += pool.interned;
        self.pool_join_hits += pool.join_hits;
        self.pool_join_misses += pool.join_misses;
        self.pool_commit_hits += pool.commit_hits;
        self.pool_commit_misses += pool.commit_misses;
        self
    }

    /// Folds another engine's counters into these — the parallel-shard
    /// merge: counters add, the queue-peak gauge maxes, the delta histogram
    /// adds per bucket. Parallel drivers that give every shard a full
    /// mirror of the node space override the summed `nodes` with the global
    /// total afterwards.
    pub fn absorb(&mut self, o: &SolverStats) {
        self.nodes += o.nodes;
        self.constraints += o.constraints;
        self.posted += o.posted;
        self.coalesced += o.coalesced;
        self.fired += o.fired;
        self.node_updates += o.node_updates;
        self.queue_peak = self.queue_peak.max(o.queue_peak);
        self.pool_interned += o.pool_interned;
        self.pool_join_hits += o.pool_join_hits;
        self.pool_join_misses += o.pool_join_misses;
        self.pool_commit_hits += o.pool_commit_hits;
        self.pool_commit_misses += o.pool_commit_misses;
        self.delta_batches += o.delta_batches;
        self.delta_elems += o.delta_elems;
        for (a, b) in self.delta_hist.iter_mut().zip(o.delta_hist) {
            *a += b;
        }
    }

    /// Flushes these counters into a trace sink under `prefix` (e.g.
    /// `solver.fired` for `prefix = "solver"`). Emission is a phase-boundary
    /// operation: the solver hot loop keeps its plain field increments and
    /// this method publishes them once per run. [`from_agg`] inverts it.
    ///
    /// [`from_agg`]: SolverStats::from_agg
    pub fn emit_into(&self, sink: &mut impl TraceSink, prefix: &str) {
        if !sink.enabled() {
            return;
        }
        sink.counter(&format!("{prefix}.nodes"), self.nodes);
        sink.counter(&format!("{prefix}.constraints"), self.constraints);
        sink.counter(&format!("{prefix}.posted"), self.posted);
        sink.counter(&format!("{prefix}.coalesced"), self.coalesced);
        sink.counter(&format!("{prefix}.fired"), self.fired);
        sink.counter(&format!("{prefix}.node_updates"), self.node_updates);
        sink.gauge(&format!("{prefix}.queue_peak"), self.queue_peak);
        sink.counter(&format!("{prefix}.pool.interned"), self.pool_interned);
        sink.counter(&format!("{prefix}.pool.join_hits"), self.pool_join_hits);
        sink.counter(&format!("{prefix}.pool.join_misses"), self.pool_join_misses);
        sink.counter(&format!("{prefix}.pool.commit_hits"), self.pool_commit_hits);
        sink.counter(
            &format!("{prefix}.pool.commit_misses"),
            self.pool_commit_misses,
        );
        sink.counter(&format!("{prefix}.delta_batches"), self.delta_batches);
        sink.counter(&format!("{prefix}.delta_elems"), self.delta_elems);
        for (i, &n) in self.delta_hist.iter().enumerate() {
            sink.counter(&format!("{prefix}.delta_hist.{i}"), n);
        }
    }

    /// Reconstructs solver counters from an aggregated trace, inverting
    /// [`emit_into`] — the mechanism by which `experiments -- E16` rebuilds
    /// its table from a recorded JSONL file. Gauges (queue peak) come back
    /// as the max across merged runs; counters as sums.
    ///
    /// [`emit_into`]: SolverStats::emit_into
    pub fn from_agg(agg: &AggSink, prefix: &str) -> Self {
        let c = |name: &str| agg.counter_value(&format!("{prefix}.{name}"));
        let mut delta_hist = [0u64; 8];
        for (i, slot) in delta_hist.iter_mut().enumerate() {
            *slot = c(&format!("delta_hist.{i}"));
        }
        SolverStats {
            nodes: c("nodes"),
            constraints: c("constraints"),
            posted: c("posted"),
            coalesced: c("coalesced"),
            fired: c("fired"),
            node_updates: c("node_updates"),
            queue_peak: agg.gauge_value(&format!("{prefix}.queue_peak")),
            pool_interned: c("pool.interned"),
            pool_join_hits: c("pool.join_hits"),
            pool_join_misses: c("pool.join_misses"),
            pool_commit_hits: c("pool.commit_hits"),
            pool_commit_misses: c("pool.commit_misses"),
            delta_batches: c("delta_batches"),
            delta_elems: c("delta_elems"),
            delta_hist,
        }
    }

    /// Fraction of set joins answered without building a set, in `[0, 1]`.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_join_hits + self.pool_join_misses;
        if total == 0 {
            1.0
        } else {
            self.pool_join_hits as f64 / total as f64
        }
    }

    /// Buckets one firing's total delta size into [`delta_hist`]
    /// (`[0, 1, 2, 3–4, 5–8, 9–16, 17–32, >32]`).
    ///
    /// [`delta_hist`]: SolverStats::delta_hist
    pub fn record_delta(&mut self, size: usize) {
        let bucket = DELTA_HIST_BOUNDS
            .iter()
            .position(|&hi| size as u64 <= hi)
            .unwrap_or(DELTA_HIST_BOUNDS.len());
        self.delta_hist[bucket] += 1;
    }

    /// Mean delta elements per constraint firing — the semi-naïve payoff
    /// metric E16 reports as `firings × mean-delta`.
    pub fn mean_delta(&self) -> f64 {
        if self.fired == 0 {
            0.0
        } else {
            self.delta_elems as f64 / self.fired as f64
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} constraints={} posted={} coalesced={} fired={} updates={} \
             delta(elems={} mean={:.2}) pool(sets={} hit-rate={:.2})",
            self.nodes,
            self.constraints,
            self.posted,
            self.coalesced,
            self.fired,
            self.node_updates,
            self.delta_elems,
            self.mean_delta(),
            self.pool_interned,
            self.pool_hit_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_goal_tracks_depth_high_water_mark() {
        let mut s = AnalysisStats::default();
        s.enter_goal(3);
        s.enter_goal(1);
        assert_eq!(s.goals, 2);
        assert_eq!(s.max_depth, 3);
    }

    #[test]
    fn display_lists_all_counters() {
        let s = AnalysisStats {
            goals: 1,
            cycle_cuts: 2,
            max_depth: 3,
            returns: 4,
        };
        let text = s.to_string();
        for needle in ["goals=1", "cuts=2", "depth=3", "returns=4"] {
            assert!(text.contains(needle));
        }
    }

    #[test]
    fn solver_stats_fold_pool_counters_and_rate() {
        let pool = crate::setpool::PoolStats {
            interned: 5,
            join_hits: 3,
            join_misses: 1,
            ..Default::default()
        };
        let s = SolverStats {
            posted: 10,
            coalesced: 4,
            fired: 6,
            ..SolverStats::default()
        }
        .with_pool(pool);
        assert_eq!(s.pool_interned, 5);
        assert!((s.pool_hit_rate() - 0.75).abs() < 1e-9);
        let text = s.to_string();
        for needle in ["posted=10", "coalesced=4", "fired=6", "hit-rate=0.75"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn empty_pool_has_perfect_hit_rate() {
        assert!((SolverStats::default().pool_hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delta_histogram_buckets_by_size() {
        let mut s = SolverStats::default();
        for size in [0usize, 1, 2, 3, 4, 5, 8, 9, 16, 17, 32, 33, 1000] {
            s.record_delta(size);
        }
        assert_eq!(s.delta_hist, [1, 1, 1, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn solver_stats_round_trip_through_the_agg_sink() {
        let mut s = SolverStats {
            nodes: 3,
            constraints: 4,
            posted: 10,
            coalesced: 2,
            fired: 8,
            node_updates: 6,
            queue_peak: 5,
            pool_interned: 7,
            pool_join_hits: 1,
            pool_join_misses: 2,
            pool_commit_hits: 3,
            pool_commit_misses: 4,
            delta_batches: 9,
            delta_elems: 20,
            delta_hist: [0; 8],
        };
        s.record_delta(3);
        s.record_delta(40);
        let mut agg = AggSink::new();
        s.emit_into(&mut agg, "solver");
        assert_eq!(SolverStats::from_agg(&agg, "solver"), s);
        // Emitting a second run accumulates counters and maxes the gauge.
        s.emit_into(&mut agg, "solver");
        let doubled = SolverStats::from_agg(&agg, "solver");
        assert_eq!(doubled.fired, 16);
        assert_eq!(doubled.queue_peak, 5);
    }

    #[test]
    fn analysis_stats_emit_under_a_prefix() {
        let s = AnalysisStats {
            goals: 11,
            cycle_cuts: 2,
            max_depth: 7,
            returns: 3,
        };
        let mut agg = AggSink::new();
        s.emit_into(&mut agg, "semcps");
        assert_eq!(agg.counter_value("semcps.goals"), 11);
        assert_eq!(agg.gauge_value("semcps.max_depth"), 7);
        // The no-op sink takes the early-out and stays empty.
        s.emit_into(&mut crate::trace::NoopSink, "semcps");
    }

    #[test]
    fn mean_delta_divides_elems_by_firings() {
        let s = SolverStats {
            fired: 4,
            delta_elems: 10,
            ..SolverStats::default()
        };
        assert!((s.mean_delta() - 2.5).abs() < 1e-9);
        assert_eq!(SolverStats::default().mean_delta(), 0.0);
        let text = s.to_string();
        assert!(text.contains("delta(elems=10 mean=2.50)"), "got {text}");
    }
}
