//! Machine-independent cost accounting for the analyzers.
//!
//! §6.2 argues that CPS-style analyses duplicate the analysis of the
//! continuation "at an overall exponential cost". Wall-clock time depends
//! on the machine; *goals expanded* does not, so every analyzer counts its
//! rule instantiations, cycle cuts (§4.4 loop detections), and maximum
//! derivation depth. The cost experiments (E6–E8) report these.

use std::fmt;

/// Counters accumulated during one analysis run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Rule instantiations (term-evaluation goals).
    pub goals: u64,
    /// §4.4 loop detections: goals answered with the least-precise value
    /// because `(M, σ)` repeated on the derivation path.
    pub cycle_cuts: u64,
    /// Deepest derivation path observed.
    pub max_depth: usize,
    /// Continuation applications (`appr`-style transitions), where the
    /// duplication of §6.2 shows up directly.
    pub returns: u64,
}

impl AnalysisStats {
    /// Records entering a goal at depth `depth`.
    pub(crate) fn enter_goal(&mut self, depth: usize) {
        self.goals += 1;
        self.max_depth = self.max_depth.max(depth);
    }
}

impl fmt::Display for AnalysisStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "goals={} returns={} cuts={} depth={}",
            self.goals, self.returns, self.cycle_cuts, self.max_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_goal_tracks_depth_high_water_mark() {
        let mut s = AnalysisStats::default();
        s.enter_goal(3);
        s.enter_goal(1);
        assert_eq!(s.goals, 2);
        assert_eq!(s.max_depth, 3);
    }

    #[test]
    fn display_lists_all_counters() {
        let s = AnalysisStats { goals: 1, cycle_cuts: 2, max_depth: 3, returns: 4 };
        let text = s.to_string();
        for needle in ["goals=1", "cuts=2", "depth=3", "returns=4"] {
            assert!(text.contains(needle));
        }
    }
}
