//! The classical data-flow substrate for §6.2's MOP-vs-MFP discussion.
//!
//! Nielson \[13\] proved that a semantic-CPS analysis computes the **MOP**
//! (meet/join over paths) solution while a direct analysis computes the
//! weaker **MFP** (maximal fixed point) solution; Kam & Ullman \[9\] proved
//! that MOP is not computable in general monotone frameworks and equals MFP
//! for distributive ones. This module provides the textbook machinery to
//! observe all of that:
//!
//! * a [`Cfg`] lowered from the *first-order* fragment of Λ (or hand-built
//!   via [`Cfg::from_parts`]);
//! * a worklist [MFP solver](Cfg::solve_mfp) — condition-blind, as in the
//!   classical framework;
//! * a path-enumerating [MOP solver](Cfg::solve_mop) with two modes
//!   ([`PathMode`]): the classical *all graph paths*, and *feasible paths
//!   only*, where a branch on a known-constant test follows one edge — the
//!   path filtering that continuation duplication performs implicitly.
//!
//! Two observations matter for experiment E9:
//!
//! 1. With only unary transfers (`add1`/`sub1`, copies, constants) the flat
//!    CP framework is distributive in the Kam–Ullman sense, so classical
//!    MOP = MFP on programs lowered from Λ. The binary [`Stmt::Sum`]
//!    statement (substrate-only; Λ has no binary primitive) restores the
//!    textbook MOP ⊏ MFP separation.
//! 2. The semantic-CPS analyzer `C_e` corresponds to **feasible-path MOP**:
//!    its per-branch duplication carries each path's constants into the
//!    branch decisions downstream. The direct analyzer `M_e` corresponds to
//!    MFP (when tests are unknown). E9 checks both correspondences.

use crate::budget::{AnalysisBudget, AnalysisError};
use crate::domain::NumDomain;
use crate::govern::RunGuard;
use crate::solver::par::{run_bsp, Outbox, ParGuard, ParShard, PartitionMap};
use crate::solver::{DeltaRange, SolverMode, WorklistSolver};
use crate::stats::SolverStats;
use crate::trace::{self, NoopSink, TraceSink};
use cpsdfa_anf::{AValKind, Anf, AnfKind, AnfProgram, Bind, VarId};
use std::error::Error;
use std::fmt;

/// A node index in the control-flow graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A first-order statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stmt {
    /// `x := n`.
    Const(VarId, i64),
    /// `x := y`.
    Copy(VarId, VarId),
    /// `x := y + 1`.
    Add1(VarId, VarId),
    /// `x := y − 1`.
    Sub1(VarId, VarId),
    /// `x := y + z` — substrate-only binary statement for the classical
    /// non-distributive constant-propagation example (Λ cannot express it).
    Sum(VarId, VarId, VarId),
    /// `x := ⊤` (the `loop` construct, or an unknown input).
    Havoc(VarId),
    /// No effect (branch and join points).
    Nop,
}

impl Stmt {
    /// The variable this statement assigns, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Stmt::Const(x, _)
            | Stmt::Copy(x, _)
            | Stmt::Add1(x, _)
            | Stmt::Sub1(x, _)
            | Stmt::Sum(x, _, _)
            | Stmt::Havoc(x) => Some(*x),
            Stmt::Nop => None,
        }
    }
}

/// What a two-way branch tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `if0 x`.
    Var(VarId),
    /// `if0 n` (a literal test).
    Num(i64),
}

/// A CFG node: one statement, successors, and (for branch nodes) the
/// tested condition — `succs[0]` is the zero edge, `succs[1]` the nonzero
/// edge.
#[derive(Debug, Clone)]
pub struct Node {
    /// The statement executed at this node.
    pub stmt: Stmt,
    /// Successor nodes (two for branch points).
    pub succs: Vec<NodeId>,
    /// The branch condition, for two-way nodes.
    pub cond: Option<Cond>,
}

impl Node {
    /// A straight-line node.
    pub fn stmt(stmt: Stmt) -> Node {
        Node {
            stmt,
            succs: Vec::new(),
            cond: None,
        }
    }
}

/// How the MOP solver treats branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMode {
    /// All graph paths, as in Kam & Ullman's framework.
    AllPaths,
    /// Only paths consistent with the propagated constants — a branch whose
    /// test is a known constant follows a single edge. This is the path set
    /// the semantic-CPS analyzer effectively enumerates.
    FeasiblePaths,
}

/// Errors lowering a program or enumerating paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// The program uses procedures (λ or a non-primitive call) and is out
    /// of scope for the classical framework.
    HigherOrder(String),
    /// The MOP path enumeration exceeded its bound.
    TooManyPaths {
        /// The bound that was exceeded.
        limit: usize,
    },
    /// `from_parts` received an inconsistent graph.
    Malformed(String),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::HigherOrder(what) => write!(f, "not a first-order program: {what}"),
            CfgError::TooManyPaths { limit } => {
                write!(f, "MOP enumeration exceeded {limit} paths")
            }
            CfgError::Malformed(why) => write!(f, "malformed CFG: {why}"),
        }
    }
}

impl Error for CfgError {}

/// A first-order control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    nodes: Vec<Node>,
    entry: NodeId,
    exit: NodeId,
    num_vars: usize,
}

/// A data-flow environment: one lattice element per variable.
pub type DfEnv<D> = Vec<D>;

/// The per-variable summary of a data-flow solution: the join of the
/// variable's value at each of its definition points — directly comparable
/// to the analyzers' abstract stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfSummary<D> {
    /// `summary[x]` = joined value of `x` at its definitions.
    pub vars: Vec<D>,
}

impl<D: NumDomain> DfSummary<D> {
    /// `self ⊑ other`, pointwise.
    pub fn leq(&self, other: &Self) -> bool {
        self.vars.len() == other.vars.len()
            && self.vars.iter().zip(&other.vars).all(|(a, b)| a.leq(b))
    }

    /// The summary value of `x`.
    pub fn get(&self, x: VarId) -> &D {
        &self.vars[x.index()]
    }
}

impl Cfg {
    /// Lowers a first-order ANF program: `let`s of numerals, copies,
    /// `add1`/`sub1` applications, `loop`, and `if0`.
    ///
    /// # Errors
    ///
    /// [`CfgError::HigherOrder`] if the program mentions λ or applies
    /// anything but `add1`/`sub1`.
    pub fn from_first_order(prog: &AnfProgram) -> Result<Cfg, CfgError> {
        let mut b = Builder {
            nodes: Vec::new(),
            prog,
        };
        let entry = b.push(Node::stmt(Stmt::Nop));
        let last = b.lower(prog.root(), entry)?;
        let exit = b.push(Node::stmt(Stmt::Nop));
        b.connect(last, exit);
        Ok(Cfg {
            nodes: b.nodes,
            entry,
            exit,
            num_vars: prog.num_vars(),
        })
    }

    /// Builds a CFG directly — used for the classical examples that need
    /// [`Stmt::Sum`].
    ///
    /// # Errors
    ///
    /// [`CfgError::Malformed`] if edges or variable indices are out of
    /// range, or a two-way node lacks a condition.
    pub fn from_parts(
        nodes: Vec<Node>,
        entry: NodeId,
        exit: NodeId,
        num_vars: usize,
    ) -> Result<Cfg, CfgError> {
        let n = nodes.len();
        if entry.0 >= n || exit.0 >= n {
            return Err(CfgError::Malformed("entry/exit out of range".to_owned()));
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.succs.iter().any(|s| s.0 >= n) {
                return Err(CfgError::Malformed(format!("edge out of range at n{i}")));
            }
            if node.succs.len() > 1 && node.cond.is_none() {
                return Err(CfgError::Malformed(format!(
                    "two-way node n{i} lacks a condition"
                )));
            }
            if let Some(x) = node.stmt.def() {
                if x.index() >= num_vars {
                    return Err(CfgError::Malformed(format!(
                        "variable out of range at n{i}"
                    )));
                }
            }
        }
        Ok(Cfg {
            nodes,
            entry,
            exit,
            num_vars,
        })
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The unique entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The unique exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// The initial environment: free variables ⊤, everything else ⊥.
    pub fn initial_env<D: NumDomain>(&self, prog: &AnfProgram) -> DfEnv<D> {
        let mut env = vec![D::bot(); self.num_vars];
        for &v in prog.free_vars() {
            env[v.index()] = D::top();
        }
        env
    }

    /// An all-⊥ environment sized for this graph.
    pub fn bottom_env<D: NumDomain>(&self) -> DfEnv<D> {
        vec![D::bot(); self.num_vars]
    }

    fn transfer<D: NumDomain>(&self, stmt: Stmt, env: &DfEnv<D>) -> DfEnv<D> {
        let mut out = env.clone();
        match stmt {
            Stmt::Const(x, n) => out[x.index()] = D::constant(n),
            Stmt::Copy(x, y) => out[x.index()] = env[y.index()].clone(),
            Stmt::Add1(x, y) => out[x.index()] = env[y.index()].add1(),
            Stmt::Sub1(x, y) => out[x.index()] = env[y.index()].sub1(),
            Stmt::Sum(x, y, z) => {
                let a = &env[y.index()];
                let b = &env[z.index()];
                out[x.index()] = match (a.as_const(), b.as_const()) {
                    (Some(p), Some(q)) => D::constant(p + q),
                    _ if a.is_bot() || b.is_bot() => D::bot(),
                    _ => D::top(),
                };
            }
            Stmt::Havoc(x) => out[x.index()] = D::top(),
            Stmt::Nop => {}
        }
        out
    }

    fn join_env<D: NumDomain>(a: &DfEnv<D>, b: &DfEnv<D>) -> DfEnv<D> {
        a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
    }

    fn env_leq<D: NumDomain>(a: &DfEnv<D>, b: &DfEnv<D>) -> bool {
        a.iter().zip(b).all(|(x, y)| x.leq(y))
    }

    /// The **MFP** solution — `in[n] = ⊔ out[pred]`, `out[n] = f_n(in[n])`,
    /// iterated to fixpoint — computed on the sparse
    /// [`WorklistSolver`] with semi-naïve propagation: one constraint per
    /// CFG node, re-evaluated only when a predecessor's `out` grows, and
    /// each firing re-joins only the *changed* predecessors (reported by
    /// [`WorklistSolver::take_deltas`]) into a monotonically accumulated
    /// `in[n]`, popped in reverse-postorder so forward flow settles in
    /// near-linear firings on reducible graphs. Runs under the default
    /// [`AnalysisBudget`], charged per constraint firing. Returns the
    /// per-variable summary.
    pub fn solve_mfp<D: NumDomain>(&self, init: DfEnv<D>) -> Result<DfSummary<D>, AnalysisError> {
        Ok(self.solve_mfp_instrumented(init)?.0)
    }

    /// [`solve_mfp`](Cfg::solve_mfp) plus the solver counters of the run.
    pub fn solve_mfp_instrumented<D: NumDomain>(
        &self,
        init: DfEnv<D>,
    ) -> Result<(DfSummary<D>, SolverStats), AnalysisError> {
        self.solve_mfp_traced(init, AnalysisBudget::default(), &mut NoopSink)
    }

    /// [`solve_mfp`](Cfg::solve_mfp) with an explicit budget and a trace
    /// sink (span and counter prefix `mfp`).
    pub fn solve_mfp_traced<D: NumDomain>(
        &self,
        init: DfEnv<D>,
        budget: AnalysisBudget,
        sink: &mut impl TraceSink,
    ) -> Result<(DfSummary<D>, SolverStats), AnalysisError> {
        self.solve_mfp_guarded(init, &RunGuard::new(budget), sink)
    }

    /// [`solve_mfp`](Cfg::solve_mfp) under a full
    /// [`RunGuard`](crate::govern::RunGuard): every constraint firing is
    /// charged through the guard, so deadlines, cancellation, and injected
    /// faults govern the MFP substrate exactly as they do the CFA solvers.
    pub fn solve_mfp_guarded<D: NumDomain>(
        &self,
        init: DfEnv<D>,
        guard: &RunGuard,
        sink: &mut impl TraceSink,
    ) -> Result<(DfSummary<D>, SolverStats), AnalysisError> {
        trace::with_span(sink, "mfp", |sink| self.solve_mfp_impl(init, guard, sink))
    }

    /// [`solve_mfp`](Cfg::solve_mfp) on an explicit
    /// [`SolverMode`]: `Seq` is the single-threaded engine,
    /// `Par(k)` shards the CFG nodes over `k` workers — with an identical
    /// summary, per the monotone-fixpoint argument in DESIGN.md §10.
    ///
    /// ```
    /// use cpsdfa_anf::AnfProgram;
    /// use cpsdfa_core::domain::Flat;
    /// use cpsdfa_core::mfp::Cfg;
    /// use cpsdfa_core::SolverMode;
    ///
    /// let p = AnfProgram::parse("(let (a 1) (let (b (add1 a)) b))")?;
    /// let c = Cfg::from_first_order(&p)?;
    /// let seq = c.solve_mfp::<Flat>(c.initial_env(&p))?;
    /// let par = c.solve_mfp_with_mode::<Flat>(c.initial_env(&p), SolverMode::Par(2))?;
    /// assert_eq!(seq, par);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Anything the default [`AnalysisBudget`] can report.
    pub fn solve_mfp_with_mode<D: NumDomain + Send>(
        &self,
        init: DfEnv<D>,
        mode: SolverMode,
    ) -> Result<DfSummary<D>, AnalysisError> {
        let guard = RunGuard::new(AnalysisBudget::default());
        Ok(self
            .solve_mfp_guarded_mode(init, mode, &guard, &mut NoopSink)?
            .0)
    }

    /// [`solve_mfp_guarded`](Cfg::solve_mfp_guarded) on an explicit
    /// [`SolverMode`]. Parallel runs charge the guard through its
    /// thread-safe shim and fold the totals back, so budgets, deadlines,
    /// injected faults, and memory accounting behave identically to a
    /// sequential run.
    ///
    /// # Errors
    ///
    /// Guard trips, plus [`AnalysisError::WorkerPanicked`] if a shard
    /// panics.
    pub fn solve_mfp_guarded_mode<D: NumDomain + Send>(
        &self,
        init: DfEnv<D>,
        mode: SolverMode,
        guard: &RunGuard,
        sink: &mut impl TraceSink,
    ) -> Result<(DfSummary<D>, SolverStats), AnalysisError> {
        trace::with_span(sink, "mfp", |sink| match mode {
            SolverMode::Seq => self.solve_mfp_impl(init, guard, sink),
            SolverMode::Par(_) => self.solve_mfp_par_impl(init, mode.shards(), guard, sink),
        })
    }

    /// The sharded MFP engine. Every shard registers all `n` constraints
    /// (so constraint ids align with node ids everywhere) but watches and
    /// posts only the ones whose node it owns: each `in[i]`/`out[i]` has a
    /// single writer, and growth of an owned `out` is broadcast to the
    /// sibling mirrors, whose `node_changed` ticks wake their own owned
    /// watchers.
    fn solve_mfp_par_impl<D: NumDomain + Send>(
        &self,
        init: DfEnv<D>,
        shards: usize,
        guard: &RunGuard,
        sink: &mut impl TraceSink,
    ) -> Result<(DfSummary<D>, SolverStats), AnalysisError> {
        let n = self.nodes.len();
        let k = shards.max(1);
        let pmap = PartitionMap::new(n, k);
        let preds = self.preds();
        let rank = self.rpo_ranks();
        let mut parts: Vec<MfpShard<'_, D>> = Vec::with_capacity(k);
        for s in 0..k {
            let mut solver = WorklistSolver::new();
            solver.add_nodes(n);
            solver.reserve(n);
            for (i, ps) in preds.iter().enumerate() {
                let c = solver.add_constraint(rank[i]);
                debug_assert_eq!(c, i);
                if pmap.owner(i) == s {
                    for &p in ps {
                        solver.watch(p.0, c);
                    }
                    solver.post(c);
                }
            }
            parts.push(MfpShard {
                id: s,
                cfg: self,
                solver,
                ins: self.initial_ins(&init),
                outs: vec![vec![D::bot(); self.num_vars]; n],
                deltas: Vec::new(),
            });
        }
        let pg = ParGuard::from_guard(guard, k);
        let ran = run_bsp(parts, &pg);
        // Fold charges back even on error: ladder fallbacks and cumulative
        // fault schedules depend on the totals a failed run accumulated.
        guard.absorb_parallel(pg.charged(), pg.mem_peak(), pg.fault_fired());
        let mut parts = ran?;
        let outs: Vec<DfEnv<D>> = (0..n)
            .map(|i| std::mem::take(&mut parts[pmap.owner(i)].outs[i]))
            .collect();
        let mut stats = SolverStats::default();
        for sh in &parts {
            stats.absorb(&sh.solver.stats());
        }
        // Node and constraint counts are per-mirror bookkeeping; report the
        // global figures a sequential run would.
        stats.nodes = n as u64;
        stats.constraints = n as u64;
        stats.emit_into(sink, "mfp");
        Ok((self.summarize(&outs), stats))
    }

    fn solve_mfp_impl<D: NumDomain>(
        &self,
        init: DfEnv<D>,
        guard: &RunGuard,
        sink: &mut impl TraceSink,
    ) -> Result<(DfSummary<D>, SolverStats), AnalysisError> {
        let n = self.nodes.len();
        let preds = self.preds();
        let rank = self.rpo_ranks();
        let mut solver = WorklistSolver::new();
        solver.add_nodes(n);
        solver.reserve(n);
        // Constraint `i` evaluates node `i` and watches its predecessors.
        // Every constraint is posted once up front: like the dense solver,
        // MFP is condition- and reachability-blind, so unreachable nodes
        // still contribute their (entry-free) outs to the summary.
        for (i, ps) in preds.iter().enumerate() {
            let c = solver.add_constraint(rank[i]);
            debug_assert_eq!(c, i);
            for &p in ps {
                solver.watch(p.0, c);
            }
            solver.post(c);
        }
        let mut outs: Vec<DfEnv<D>> = vec![vec![D::bot(); self.num_vars]; n];
        let mut ins = self.initial_ins(&init);
        let mut deltas: Vec<DeltaRange> = Vec::new();
        solver.run_guarded(guard, |solver, id| {
            mfp_fire_body(
                self,
                id,
                solver,
                &mut ins,
                &mut outs,
                &mut deltas,
                &mut |_, _| {},
            );
            Ok(())
        })?;
        let stats = solver.stats();
        stats.emit_into(sink, "mfp");
        Ok((self.summarize(&outs), stats))
    }

    /// The predecessor lists of every node.
    fn preds(&self) -> Vec<Vec<NodeId>> {
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &s in &node.succs {
                preds[s.0].push(NodeId(i));
            }
        }
        preds
    }

    /// Per-node starting `in` environments: `init` at the entry, ⊥
    /// everywhere else.
    fn initial_ins<D: NumDomain>(&self, init: &DfEnv<D>) -> Vec<DfEnv<D>> {
        (0..self.nodes.len())
            .map(|i| {
                if NodeId(i) == self.entry {
                    init.clone()
                } else {
                    vec![D::bot(); self.num_vars]
                }
            })
            .collect()
    }

    /// Reverse-postorder pop priorities from the entry; nodes unreachable
    /// from the entry are ranked after all reachable ones, in index order.
    fn rpo_ranks(&self) -> Vec<u32> {
        let n = self.nodes.len();
        let mut postorder: Vec<usize> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Iterative DFS: (node, next successor slot to visit).
        let mut stack: Vec<(usize, usize)> = vec![(self.entry.0, 0)];
        seen[self.entry.0] = true;
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            if let Some(&s) = self.nodes[id].succs.get(*next) {
                *next += 1;
                if !seen[s.0] {
                    seen[s.0] = true;
                    stack.push((s.0, 0));
                }
            } else {
                postorder.push(id);
                stack.pop();
            }
        }
        let mut rank = vec![0u32; n];
        let reachable = postorder.len() as u32;
        for (i, &id) in postorder.iter().rev().enumerate() {
            rank[id] = i as u32;
        }
        let mut next = reachable;
        for (id, r) in rank.iter_mut().enumerate() {
            if !seen[id] {
                *r = next;
                next += 1;
            }
        }
        rank
    }

    /// The original dense MFP worklist (LIFO over node ids, no dependency
    /// tracking) — the measured baseline and differential oracle for
    /// [`solve_mfp`](Cfg::solve_mfp).
    pub fn solve_mfp_dense<D: NumDomain>(&self, init: DfEnv<D>) -> DfSummary<D> {
        let n = self.nodes.len();
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &s in &node.succs {
                preds[s.0].push(NodeId(i));
            }
        }
        let mut outs: Vec<DfEnv<D>> = vec![vec![D::bot(); self.num_vars]; n];
        let mut work: Vec<NodeId> = (0..n).map(NodeId).collect();
        while let Some(id) = work.pop() {
            let mut inn = if id == self.entry {
                init.clone()
            } else {
                vec![D::bot(); self.num_vars]
            };
            for &p in &preds[id.0] {
                inn = Self::join_env(&inn, &outs[p.0]);
            }
            let out = self.transfer(self.nodes[id.0].stmt, &inn);
            if !Self::env_leq(&out, &outs[id.0]) {
                outs[id.0] = Self::join_env(&outs[id.0], &out);
                for &s in &self.nodes[id.0].succs {
                    work.push(s);
                }
            }
        }
        self.summarize(&outs)
    }

    /// The **MOP** solution by explicit path enumeration, joining each
    /// variable's value at its definitions *per path*. Exponential; bounded
    /// by `max_paths`. Returns the summary and the number of paths.
    ///
    /// # Errors
    ///
    /// [`CfgError::TooManyPaths`] past the bound.
    pub fn solve_mop<D: NumDomain>(
        &self,
        init: DfEnv<D>,
        max_paths: usize,
        mode: PathMode,
    ) -> Result<(DfSummary<D>, usize), CfgError> {
        let mut summary = vec![D::bot(); self.num_vars];
        let mut paths = 0usize;
        let mut stack: Vec<(NodeId, DfEnv<D>, Vec<D>)> = Vec::new();
        stack.push((self.entry, init, vec![D::bot(); self.num_vars]));
        while let Some((id, env, mut defs)) = stack.pop() {
            let node = &self.nodes[id.0];
            let out = self.transfer(node.stmt, &env);
            if let Some(x) = node.stmt.def() {
                defs[x.index()] = defs[x.index()].join(&out[x.index()]);
            }
            if id == self.exit {
                paths += 1;
                if paths > max_paths {
                    return Err(CfgError::TooManyPaths { limit: max_paths });
                }
                for (s, d) in summary.iter_mut().zip(&defs) {
                    *s = s.join(d);
                }
                continue;
            }
            let succs = self.feasible_succs(node, &out, mode);
            for s in succs {
                stack.push((s, out.clone(), defs.clone()));
            }
        }
        Ok((DfSummary { vars: summary }, paths))
    }

    fn feasible_succs<D: NumDomain>(
        &self,
        node: &Node,
        env: &DfEnv<D>,
        mode: PathMode,
    ) -> Vec<NodeId> {
        if node.succs.len() != 2 || mode == PathMode::AllPaths {
            return node.succs.clone();
        }
        let test: D = match node.cond {
            Some(Cond::Var(x)) => env[x.index()].clone(),
            Some(Cond::Num(n)) => D::constant(n),
            None => return node.succs.clone(),
        };
        if test.is_exactly_zero() {
            vec![node.succs[0]]
        } else if !test.may_be_zero() {
            vec![node.succs[1]]
        } else {
            node.succs.clone()
        }
    }

    fn summarize<D: NumDomain>(&self, outs: &[DfEnv<D>]) -> DfSummary<D> {
        let mut vars = vec![D::bot(); self.num_vars];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(x) = node.stmt.def() {
                vars[x.index()] = vars[x.index()].join(&outs[i][x.index()]);
            }
        }
        DfSummary { vars }
    }
}

/// One constraint firing, shared verbatim by the sequential and sharded
/// engines: re-join the predecessors whose `out` grew since the last firing
/// (reported by [`WorklistSolver::take_deltas`]), re-run the transfer, and
/// on growth tick the version counter and hand the new `out` to `on_grew`
/// (a no-op sequentially; the owner-broadcast hook in a shard).
///
/// `in[id]` accumulates monotonically: the solver is used as a version
/// counter (`node_changed`), and each firing joins in only the changed
/// predecessors. Because join is monotone and every growth of a predecessor
/// re-posts the constraint, the accumulated `in[id]` converges to
/// ⊔ out\[pred\] — the same least fixpoint as the recompute-from-scratch
/// loop, at O(changed preds) instead of O(all preds) per firing.
fn mfp_fire_body<D: NumDomain>(
    cfg: &Cfg,
    id: usize,
    solver: &mut WorklistSolver,
    ins: &mut [DfEnv<D>],
    outs: &mut [DfEnv<D>],
    deltas: &mut Vec<DeltaRange>,
    on_grew: &mut impl FnMut(usize, &DfEnv<D>),
) {
    solver.take_deltas(id, deltas);
    for &(p, _, _) in deltas.iter() {
        ins[id] = Cfg::join_env(&ins[id], &outs[p]);
    }
    let out = cfg.transfer(cfg.nodes[id].stmt, &ins[id]);
    if !Cfg::env_leq(&out, &outs[id]) {
        outs[id] = Cfg::join_env(&outs[id], &out);
        solver.node_changed(id);
        on_grew(id, &outs[id]);
    }
}

/// One partition of the parallel MFP engine: a full solver plus `in`/`out`
/// mirrors over all CFG nodes, of which only the owned block is ever
/// written by local firings. Messages carry a node's entire new `out`
/// environment; since only the owner fires a node's constraint, mirrors
/// have a single remote writer and need no forwarding protocol.
struct MfpShard<'c, D> {
    id: usize,
    cfg: &'c Cfg,
    solver: WorklistSolver,
    ins: Vec<DfEnv<D>>,
    outs: Vec<DfEnv<D>>,
    deltas: Vec<DeltaRange>,
}

impl<D: NumDomain> MfpShard<'_, D> {
    /// Joins a broadcast `out` into the local mirror; a strict growth ticks
    /// the version counter so owned watchers of `node` re-fire.
    fn apply_incoming(&mut self, node: usize, env: &DfEnv<D>) {
        if !Cfg::env_leq(env, &self.outs[node]) {
            self.outs[node] = Cfg::join_env(&self.outs[node], env);
            self.solver.node_changed(node);
        }
    }
}

impl<D: NumDomain + Send> ParShard for MfpShard<'_, D> {
    type Msg = (u32, DfEnv<D>);

    fn pump(
        &mut self,
        inbox: Vec<(usize, Vec<Self::Msg>)>,
        out: &mut Outbox<Self::Msg>,
        pg: &ParGuard,
    ) -> Result<(), AnalysisError> {
        for (_src, batch) in inbox {
            for (node, env) in batch {
                self.apply_incoming(node as usize, &env);
            }
        }
        while let Some(ci) = self.solver.pop() {
            pg.charge()?;
            let MfpShard {
                id,
                cfg,
                solver,
                ins,
                outs,
                deltas,
            } = self;
            let me = *id;
            mfp_fire_body(
                cfg,
                ci,
                solver,
                ins,
                outs,
                deltas,
                &mut |n, env: &DfEnv<D>| {
                    out.broadcast_from(me, (n as u32, env.clone()));
                },
            );
        }
        Ok(())
    }
}

struct Builder<'p> {
    nodes: Vec<Node>,
    prog: &'p AnfProgram,
}

impl Builder<'_> {
    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    fn connect(&mut self, from: NodeId, to: NodeId) {
        self.nodes[from.0].succs.push(to);
    }

    fn var(&self, x: &cpsdfa_syntax::Ident) -> VarId {
        self.prog.var_id(x).expect("validated program variable")
    }

    /// Lowers `m` after node `pred`; returns the last node of the lowering.
    fn lower(&mut self, m: &Anf, pred: NodeId) -> Result<NodeId, CfgError> {
        match &m.kind {
            AnfKind::Value(v) => {
                Self::check_first_order_value(v)?;
                Ok(pred)
            }
            AnfKind::Let { var, bind, body } => {
                let x = self.var(var);
                let after_bind = match bind {
                    Bind::Value(v) => {
                        let stmt = match &v.kind {
                            AValKind::Num(n) => Stmt::Const(x, *n),
                            AValKind::Var(y) => Stmt::Copy(x, self.var(y)),
                            AValKind::Lam(..) | AValKind::Add1 | AValKind::Sub1 => {
                                return Err(CfgError::HigherOrder(format!(
                                    "procedure value bound to `{var}`"
                                )))
                            }
                        };
                        let n = self.push(Node::stmt(stmt));
                        self.connect(pred, n);
                        n
                    }
                    Bind::App(f, a) => {
                        let stmt = match (&f.kind, &a.kind) {
                            (AValKind::Add1, AValKind::Var(y)) => Stmt::Add1(x, self.var(y)),
                            (AValKind::Sub1, AValKind::Var(y)) => Stmt::Sub1(x, self.var(y)),
                            (AValKind::Add1, AValKind::Num(n)) => Stmt::Const(x, n + 1),
                            (AValKind::Sub1, AValKind::Num(n)) => Stmt::Const(x, n - 1),
                            _ => {
                                return Err(CfgError::HigherOrder(format!(
                                    "non-primitive application bound to `{var}`"
                                )))
                            }
                        };
                        let n = self.push(Node::stmt(stmt));
                        self.connect(pred, n);
                        n
                    }
                    Bind::If0(c, then_, else_) => {
                        let cond = match &c.kind {
                            AValKind::Var(y) => Cond::Var(self.var(y)),
                            AValKind::Num(n) => Cond::Num(*n),
                            _ => {
                                return Err(CfgError::HigherOrder(
                                    "procedure test in if0".to_owned(),
                                ))
                            }
                        };
                        let branch = self.push(Node {
                            stmt: Stmt::Nop,
                            succs: Vec::new(),
                            cond: Some(cond),
                        });
                        self.connect(pred, branch);
                        let t_end = self.lower_arm(then_, branch, x)?;
                        let e_end = self.lower_arm(else_, branch, x)?;
                        let join = self.push(Node::stmt(Stmt::Nop));
                        self.connect(t_end, join);
                        self.connect(e_end, join);
                        join
                    }
                    Bind::Loop => {
                        let n = self.push(Node::stmt(Stmt::Havoc(x)));
                        self.connect(pred, n);
                        n
                    }
                };
                self.lower(body, after_bind)
            }
        }
    }

    /// Lowers a conditional arm and assigns its result value into `x`.
    /// Crucially the arm is lowered behind an intermediate node so the
    /// branch's two successor slots stay `[then, else]`.
    fn lower_arm(&mut self, arm: &Anf, branch: NodeId, x: VarId) -> Result<NodeId, CfgError> {
        let head = self.push(Node::stmt(Stmt::Nop));
        self.connect(branch, head);
        let end = self.lower(arm, head)?;
        let result = Self::tail_value(arm);
        let stmt = match &result.kind {
            AValKind::Num(n) => Stmt::Const(x, *n),
            AValKind::Var(y) => Stmt::Copy(x, self.var(y)),
            _ => {
                return Err(CfgError::HigherOrder(
                    "procedure value in conditional arm".to_owned(),
                ))
            }
        };
        let n = self.push(Node::stmt(stmt));
        self.connect(end, n);
        Ok(n)
    }

    fn tail_value(m: &Anf) -> &cpsdfa_anf::AVal {
        match &m.kind {
            AnfKind::Value(v) => v,
            AnfKind::Let { body, .. } => Self::tail_value(body),
        }
    }

    fn check_first_order_value(v: &cpsdfa_anf::AVal) -> Result<(), CfgError> {
        match &v.kind {
            AValKind::Lam(..) => Err(CfgError::HigherOrder("λ value".to_owned())),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Flat;

    /// Parses `src` into a first-order CFG, naming the source in every
    /// failure so a corpus regression points at the offending program.
    fn cfg(src: &str) -> (AnfProgram, Cfg) {
        let p = AnfProgram::parse(src).unwrap_or_else(|e| panic!("parse failed on {src:?}: {e}"));
        let c = Cfg::from_first_order(&p)
            .unwrap_or_else(|e| panic!("CFG construction failed on {src:?}: {e}"));
        (p, c)
    }

    /// `solve_mfp` over `Flat` from the program's initial environment,
    /// naming `src` on divergence.
    fn mfp_flat(p: &AnfProgram, c: &Cfg, src: &str) -> DfSummary<Flat> {
        c.solve_mfp::<Flat>(c.initial_env(p))
            .unwrap_or_else(|e| panic!("MFP failed on {src:?}: {e}"))
    }

    #[test]
    fn straight_line_mfp_propagates_constants() {
        let src = "(let (a 1) (let (b (add1 a)) b))";
        let (p, c) = cfg(src);
        let mfp = mfp_flat(&p, &c, src);
        assert_eq!(mfp.get(p.var_named("a").unwrap()).as_const(), Some(1));
        assert_eq!(mfp.get(p.var_named("b").unwrap()).as_const(), Some(2));
    }

    #[test]
    fn unary_transfers_make_classical_mop_equal_mfp() {
        // With only add1/sub1 the framework instance is distributive, so
        // the Kam–Ullman all-paths MOP coincides with MFP even on diamonds.
        let src = "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))";
        let (p, c) = cfg(src);
        let init = c.initial_env::<Flat>(&p);
        let mfp = c
            .solve_mfp::<Flat>(init.clone())
            .unwrap_or_else(|e| panic!("MFP failed on {src:?}: {e}"));
        let (mop, _) = c
            .solve_mop::<Flat>(init, 100, PathMode::AllPaths)
            .unwrap_or_else(|e| panic!("MOP failed on {src:?}: {e}"));
        assert!(mop.leq(&mfp) && mfp.leq(&mop));
        assert!(mfp.get(p.var_named("a2").unwrap()).is_top());
    }

    #[test]
    fn feasible_path_mop_matches_semantic_cps_gain() {
        // Feasible-path MOP prunes (a1=0, else) and (a1=1, then): only two
        // paths remain and both give a2 = 3 — exactly C_e's answer.
        let src = "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))";
        let (p, c) = cfg(src);
        let init = c.initial_env::<Flat>(&p);
        let (mop, paths) = c
            .solve_mop::<Flat>(init, 100, PathMode::FeasiblePaths)
            .unwrap_or_else(|e| panic!("feasible-path MOP failed on {src:?}: {e}"));
        assert_eq!(paths, 2);
        assert_eq!(mop.get(p.var_named("a2").unwrap()).as_const(), Some(3));
    }

    #[test]
    fn sum_statement_restores_classical_separation() {
        // The textbook example: {a:=1; b:=2} or {a:=2; b:=1}; c := a + b.
        // MOP: c = 3 on both paths. MFP: a = b = ⊤ at the join, c = ⊤.
        let a = VarId(0);
        let b = VarId(1);
        let cc = VarId(2);
        let z = VarId(3);
        let nodes = vec![
            Node {
                stmt: Stmt::Havoc(z),
                succs: vec![NodeId(1)],
                cond: None,
            }, // 0 entry
            Node {
                stmt: Stmt::Nop,
                succs: vec![NodeId(2), NodeId(4)],
                cond: Some(Cond::Var(z)),
            },
            Node {
                stmt: Stmt::Const(a, 1),
                succs: vec![NodeId(3)],
                cond: None,
            },
            Node {
                stmt: Stmt::Const(b, 2),
                succs: vec![NodeId(6)],
                cond: None,
            },
            Node {
                stmt: Stmt::Const(a, 2),
                succs: vec![NodeId(5)],
                cond: None,
            },
            Node {
                stmt: Stmt::Const(b, 1),
                succs: vec![NodeId(6)],
                cond: None,
            },
            Node {
                stmt: Stmt::Sum(cc, a, b),
                succs: vec![NodeId(7)],
                cond: None,
            },
            Node {
                stmt: Stmt::Nop,
                succs: vec![],
                cond: None,
            }, // 7 exit
        ];
        let g = Cfg::from_parts(nodes, NodeId(0), NodeId(7), 4)
            .expect("the hand-built two-branch sum CFG is well-formed");
        let init = g.bottom_env::<Flat>();
        let mfp = g
            .solve_mfp::<Flat>(init.clone())
            .expect("MFP failed on the hand-built two-branch sum CFG");
        let (mop, paths) = g
            .solve_mop::<Flat>(init, 10, PathMode::AllPaths)
            .expect("MOP failed on the hand-built two-branch sum CFG");
        assert_eq!(paths, 2);
        assert!(mfp.get(cc).is_top(), "MFP merges early");
        assert_eq!(mop.get(cc).as_const(), Some(3), "MOP keeps the correlation");
        assert!(mop.leq(&mfp) && !mfp.leq(&mop));
    }

    #[test]
    fn loop_construct_becomes_havoc() {
        let src = "(let (x (loop)) (let (y (add1 x)) y))";
        let (p, c) = cfg(src);
        let mfp = mfp_flat(&p, &c, src);
        assert!(mfp.get(p.var_named("x").unwrap()).is_top());
        assert!(mfp.get(p.var_named("y").unwrap()).is_top());
    }

    #[test]
    fn higher_order_programs_are_rejected() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f 1))").unwrap();
        assert!(matches!(
            Cfg::from_first_order(&p),
            Err(CfgError::HigherOrder(_))
        ));
    }

    #[test]
    fn path_bound_is_enforced() {
        let src = "(let (a (if0 z 0 1)) (let (b (if0 w 0 1)) (let (c (if0 v 0 1)) c)))";
        let (p, c) = cfg(src);
        let init = c.initial_env::<Flat>(&p);
        let err = c
            .solve_mop::<Flat>(init.clone(), 7, PathMode::AllPaths)
            .unwrap_err();
        assert_eq!(err, CfgError::TooManyPaths { limit: 7 });
        let (_, paths) = c
            .solve_mop::<Flat>(init, 8, PathMode::AllPaths)
            .unwrap_or_else(|e| panic!("MOP failed on {src:?}: {e}"));
        assert_eq!(paths, 8);
    }

    #[test]
    fn mop_always_refines_mfp() {
        for src in [
            "(let (a (if0 z 1 2)) (let (b (add1 a)) b))",
            "(let (a (if0 z 7 7)) a)",
            "(let (a 3) (let (b (if0 z a (add1 a))) b))",
            "(let (a (if0 0 1 2)) a)",
        ] {
            let (p, c) = cfg(src);
            let init = c.initial_env::<Flat>(&p);
            let mfp = c
                .solve_mfp::<Flat>(init.clone())
                .unwrap_or_else(|e| panic!("MFP failed on {src:?}: {e}"));
            for mode in [PathMode::AllPaths, PathMode::FeasiblePaths] {
                let (mop, _) = c
                    .solve_mop::<Flat>(init.clone(), 1000, mode)
                    .unwrap_or_else(|e| panic!("MOP ({mode:?}) failed on {src:?}: {e}"));
                assert!(mop.leq(&mfp), "MOP ⋢ MFP on {src} ({mode:?})");
            }
        }
    }

    #[test]
    fn sparse_and_dense_mfp_agree() {
        for src in [
            "(let (a 1) (let (b (add1 a)) b))",
            "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))",
            "(let (x (loop)) (let (y (add1 x)) y))",
            "(let (a (if0 z 1 2)) (let (b (add1 a)) b))",
            "(let (a (if0 z 0 1)) (let (b (if0 w 0 1)) (let (c (if0 v 0 1)) c)))",
        ] {
            let (p, c) = cfg(src);
            let init = c.initial_env::<Flat>(&p);
            let (sparse, stats) = c
                .solve_mfp_instrumented::<Flat>(init.clone())
                .unwrap_or_else(|e| panic!("sparse MFP failed on {src:?}: {e}"));
            let dense = c.solve_mfp_dense::<Flat>(init);
            assert_eq!(sparse, dense, "MFP solutions diverge on {src}");
            assert_eq!(stats.constraints, c.nodes().len() as u64);
            assert!(stats.fired >= stats.constraints);
        }
    }

    #[test]
    fn rpo_pops_forward_graphs_in_one_pass_each() {
        // On an acyclic diamond the RPO rank order means every node fires
        // exactly once with no re-posts surviving coalescing.
        let src = "(let (a1 (if0 z 0 1)) (let (a2 (add1 a1)) a2))";
        let (p, c) = cfg(src);
        let (_, stats) = c
            .solve_mfp_instrumented::<Flat>(c.initial_env::<Flat>(&p))
            .unwrap_or_else(|e| panic!("sparse MFP failed on {src:?}: {e}"));
        assert_eq!(
            stats.fired, stats.constraints,
            "acyclic CFG should settle in one RPO pass"
        );
    }

    #[test]
    fn traced_mfp_matches_and_tiny_budget_stops_it() {
        let src = "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))";
        let (p, c) = cfg(src);
        let init = c.initial_env::<Flat>(&p);
        let mut agg = crate::trace::AggSink::new();
        let (traced, stats) = c
            .solve_mfp_traced::<Flat>(init.clone(), AnalysisBudget::default(), &mut agg)
            .unwrap_or_else(|e| panic!("traced MFP failed on {src:?}: {e}"));
        assert_eq!(
            traced,
            c.solve_mfp::<Flat>(init.clone())
                .unwrap_or_else(|e| panic!("MFP failed on {src:?}: {e}"))
        );
        assert_eq!(agg.counter_value("mfp.fired"), stats.fired);
        assert_eq!(agg.span_agg("mfp").unwrap().count, 1);
        let err = c
            .solve_mfp_traced::<Flat>(init, AnalysisBudget::new(1), &mut NoopSink)
            .expect_err("one firing cannot settle a diamond");
        assert!(matches!(err, AnalysisError::BudgetExhausted { budget: 1 }));
    }

    #[test]
    fn parallel_mfp_matches_sequential() {
        for src in [
            "(let (a 1) (let (b (add1 a)) b))",
            "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))",
            "(let (x (loop)) (let (y (add1 x)) y))",
            "(let (a (if0 z 1 2)) (let (b (add1 a)) b))",
            "(let (a (if0 z 0 1)) (let (b (if0 w 0 1)) (let (c (if0 v 0 1)) c)))",
        ] {
            let (p, c) = cfg(src);
            let init = c.initial_env::<Flat>(&p);
            let (seq, seq_stats) = c
                .solve_mfp_instrumented::<Flat>(init.clone())
                .unwrap_or_else(|e| panic!("sequential MFP failed on {src:?}: {e}"));
            for k in [1usize, 2, 3, 5] {
                let guard = RunGuard::new(AnalysisBudget::default());
                let (par, par_stats) = c
                    .solve_mfp_guarded_mode::<Flat>(
                        init.clone(),
                        SolverMode::Par(k),
                        &guard,
                        &mut NoopSink,
                    )
                    .unwrap_or_else(|e| panic!("Par({k}) MFP failed on {src:?}: {e}"));
                assert_eq!(seq, par, "Par({k}) summary diverges on {src}");
                assert_eq!(par_stats.nodes, seq_stats.nodes);
                assert_eq!(par_stats.constraints, seq_stats.constraints);
            }
        }
    }

    #[test]
    fn parallel_mfp_matches_on_hand_built_sum_cfg() {
        // The non-distributive Sum example exercises from_parts graphs
        // (unreachable-blind posting included) under sharding.
        let a = VarId(0);
        let b = VarId(1);
        let cc = VarId(2);
        let z = VarId(3);
        let nodes = vec![
            Node {
                stmt: Stmt::Havoc(z),
                succs: vec![NodeId(1)],
                cond: None,
            },
            Node {
                stmt: Stmt::Nop,
                succs: vec![NodeId(2), NodeId(4)],
                cond: Some(Cond::Var(z)),
            },
            Node {
                stmt: Stmt::Const(a, 1),
                succs: vec![NodeId(3)],
                cond: None,
            },
            Node {
                stmt: Stmt::Const(b, 2),
                succs: vec![NodeId(6)],
                cond: None,
            },
            Node {
                stmt: Stmt::Const(a, 2),
                succs: vec![NodeId(5)],
                cond: None,
            },
            Node {
                stmt: Stmt::Const(b, 1),
                succs: vec![NodeId(6)],
                cond: None,
            },
            Node {
                stmt: Stmt::Sum(cc, a, b),
                succs: vec![NodeId(7)],
                cond: None,
            },
            Node {
                stmt: Stmt::Nop,
                succs: vec![],
                cond: None,
            },
        ];
        let g = Cfg::from_parts(nodes, NodeId(0), NodeId(7), 4)
            .expect("the hand-built two-branch sum CFG is well-formed");
        let init = g.bottom_env::<Flat>();
        let seq = g
            .solve_mfp::<Flat>(init.clone())
            .expect("sequential MFP failed on the sum CFG");
        for k in [2usize, 4] {
            let par = g
                .solve_mfp_with_mode::<Flat>(init.clone(), SolverMode::Par(k))
                .unwrap_or_else(|e| panic!("Par({k}) MFP failed on the sum CFG: {e}"));
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn from_parts_validates() {
        let bad = vec![Node {
            stmt: Stmt::Nop,
            succs: vec![NodeId(5)],
            cond: None,
        }];
        assert!(matches!(
            Cfg::from_parts(bad, NodeId(0), NodeId(0), 0),
            Err(CfgError::Malformed(_))
        ));
        let two_way = vec![
            Node {
                stmt: Stmt::Nop,
                succs: vec![NodeId(1), NodeId(1)],
                cond: None,
            },
            Node {
                stmt: Stmt::Nop,
                succs: vec![],
                cond: None,
            },
        ];
        assert!(matches!(
            Cfg::from_parts(two_way, NodeId(0), NodeId(1), 0),
            Err(CfgError::Malformed(_))
        ));
    }
}
