//! The direct abstract collecting interpreter `M_e` of **Figure 4**.
//!
//! Derived from the direct interpreter of Figure 1 by the 0CFA abstraction
//! of §4.1 (one location per variable, merged stores) and the numeric
//! abstraction of §4.2. Termination follows §4.4: a goal `(M, σ)` repeated
//! on the derivation path is answered with the least precise value
//! `(⊤, CL⊤)` paired with the current store.
//!
//! The salient property (contrast with Figure 5): at a conditional whose
//! test may go either way, the two arms are analyzed and their stores are
//! *joined before* the continuation is analyzed — the continuation is
//! analyzed **once**. Likewise a call site joins the results of all
//! applicable closures before continuing. This merging is what the
//! semantic-CPS analyzer avoids by duplication (Theorem 5.4), at
//! exponential cost (§6.2).
//!
//! The analyzer also implements the paper's §6.3 conclusion — "a direct
//! data flow analysis that relies on *some amount of duplication* would be
//! as satisfactory as a CPS analysis" — via
//! [`DirectAnalyzer::with_duplication_depth`]: for `d > 0`, conditionals
//! and multi-target call sites analyze their *continuation* once per
//! branch/callee down to nesting depth `d`, interpolating between Figure 4
//! (`d = 0`) and Figure 5 behavior.

use crate::absval::{AbsAnswer, AbsClo, AbsStore, AbsVal};
use crate::budget::{AnalysisBudget, AnalysisError};
use crate::domain::NumDomain;
use crate::flow::FlowLog;
use crate::govern::RunGuard;
use crate::stats::AnalysisStats;
use crate::trace::{self, TraceSink};
use cpsdfa_anf::{AVal, AValKind, Anf, AnfKind, AnfProgram, Bind, LambdaRef, VarId};
use cpsdfa_syntax::Label;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The result of a direct analysis: the abstract answer of Figure 4 plus
/// cost statistics and the control-flow facts gathered on the way.
#[derive(Debug, Clone)]
pub struct DirectResult<D: NumDomain> {
    /// The abstract result value.
    pub value: AbsVal<D>,
    /// The final abstract store (one cell per variable).
    pub store: AbsStore<D>,
    /// Cost counters.
    pub stats: AnalysisStats,
    /// Call / branch facts (0CFA control-flow graph).
    pub flows: FlowLog,
}

/// The direct abstract collecting interpreter `M_e` (Figure 4),
/// configurable with seeds for free variables, a goal budget, and the §6.3
/// duplication depth.
///
/// ```
/// use cpsdfa_anf::AnfProgram;
/// use cpsdfa_core::domain::{Flat, NumDomain};
/// use cpsdfa_core::DirectAnalyzer;
///
/// // Theorem 5.1's Π1 with f bound to the identity.
/// let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))")?;
/// let r = DirectAnalyzer::<Flat>::new(&p).analyze()?;
/// // The direct analysis loses x (both 1 and 2 flow there) ...
/// let x = p.var_named("x").unwrap();
/// assert!(r.store.get(x).num.is_top());
/// // ... but keeps a1 = 1.
/// let a1 = p.var_named("a1").unwrap();
/// assert_eq!(r.store.get(a1).num.as_const(), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DirectAnalyzer<'p, D: NumDomain> {
    prog: &'p AnfProgram,
    lambdas: HashMap<Label, LambdaRef<'p>>,
    clo_top: BTreeSet<AbsClo>,
    budget: AnalysisBudget,
    guard: Option<RunGuard>,
    seeds: Vec<(VarId, AbsVal<D>)>,
    dup_depth: u32,
}

impl<'p, D: NumDomain> DirectAnalyzer<'p, D> {
    /// Creates an analyzer for `prog`. Free variables default to the seed
    /// `(⊤, ∅)` ("any number"); override with [`with_seed`].
    ///
    /// [`with_seed`]: DirectAnalyzer::with_seed
    pub fn new(prog: &'p AnfProgram) -> Self {
        DirectAnalyzer {
            prog,
            lambdas: prog.lambdas(),
            clo_top: clo_top_of(prog),
            budget: AnalysisBudget::default(),
            guard: None,
            seeds: Vec::new(),
            dup_depth: 0,
        }
    }

    /// Replaces the goal budget.
    #[must_use]
    pub fn with_budget(mut self, budget: AnalysisBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a [`RunGuard`]: goal charges flow through the guard (which
    /// also enforces deadlines, memory ceilings, and cancellation) instead
    /// of the plain goal budget.
    #[must_use]
    pub fn with_guard(mut self, guard: &RunGuard) -> Self {
        self.guard = Some(guard.clone());
        self
    }

    /// Charges one goal: through the attached guard when present, else
    /// against the plain budget using the caller's running `goals` count.
    fn charge(&self, goals: u64) -> Result<(), AnalysisError> {
        match &self.guard {
            Some(g) => g.charge(1),
            None => self.budget.check(goals),
        }
    }

    /// Overrides the initial abstract value of a (typically free) variable.
    #[must_use]
    pub fn with_seed(mut self, var: VarId, val: AbsVal<D>) -> Self {
        self.seeds.push((var, val));
        self
    }

    /// Enables §6.3 bounded duplication: conditionals and multi-target call
    /// sites duplicate the analysis of their continuation to nesting depth
    /// `d`. `d = 0` is exactly Figure 4.
    #[must_use]
    pub fn with_duplication_depth(mut self, d: u32) -> Self {
        self.dup_depth = d;
        self
    }

    /// The initial store: ⊥ everywhere; free variables get `(⊤, ∅)` unless
    /// an explicit seed replaces the default.
    pub fn initial_store(&self) -> AbsStore<D> {
        let mut store = AbsStore::bottom(self.prog.num_vars());
        let seeded: HashSet<VarId> = self.seeds.iter().map(|(v, _)| *v).collect();
        for &v in self.prog.free_vars() {
            if !seeded.contains(&v) {
                store.join_at(v, &AbsVal::new(D::top(), BTreeSet::new()));
            }
        }
        for (v, u) in &self.seeds {
            store.join_at(*v, u);
        }
        store
    }

    /// Runs the analysis from the initial store.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BudgetExhausted`] if the goal budget runs out.
    pub fn analyze(&self) -> Result<DirectResult<D>, AnalysisError> {
        self.analyze_from(self.initial_store())
    }

    /// [`analyze`](DirectAnalyzer::analyze) under a `direct` span, with the
    /// cost counters flushed into `sink` when the run completes.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BudgetExhausted`] if the goal budget runs out.
    pub fn analyze_traced(
        &self,
        sink: &mut impl TraceSink,
    ) -> Result<DirectResult<D>, AnalysisError> {
        trace::with_span(sink, "direct", |sink| {
            let res = self.analyze()?;
            res.stats.emit_into(sink, "direct");
            Ok(res)
        })
    }

    /// Runs the analysis from an explicit initial store (used by the
    /// theorem-checking harness to reproduce the paper's literal σ's).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BudgetExhausted`] if the goal budget runs out.
    pub fn analyze_from(&self, store: AbsStore<D>) -> Result<DirectResult<D>, AnalysisError> {
        let mut run = Run {
            a: self,
            path: HashSet::new(),
            depth: 0,
            stats: AnalysisStats::default(),
            flows: FlowLog::default(),
        };
        let AbsAnswer { value, store } = run.eval(self.prog.root(), store, self.dup_depth)?;
        Ok(DirectResult {
            value,
            store,
            stats: run.stats,
            flows: run.flows,
        })
    }

    /// The least precise value `(⊤, CL⊤)` used by the §4.4 loop rule.
    pub fn top_value(&self) -> AbsVal<D> {
        AbsVal::new(D::top(), self.clo_top.clone())
    }
}

/// `CL⊤`: every λ of the program, plus `inc` / `dec` if the corresponding
/// primitive occurs.
pub(crate) fn clo_top_of(prog: &AnfProgram) -> BTreeSet<AbsClo> {
    let mut set: BTreeSet<AbsClo> = prog
        .lambda_labels()
        .iter()
        .map(|&l| AbsClo::Lam(l))
        .collect();
    prog.root().visit_values(&mut |v| match v.kind {
        AValKind::Add1 => {
            set.insert(AbsClo::Inc);
        }
        AValKind::Sub1 => {
            set.insert(AbsClo::Dec);
        }
        _ => {}
    });
    set
}

struct Run<'a, 'p, D: NumDomain> {
    a: &'a DirectAnalyzer<'p, D>,
    /// Goals on the current derivation path (§4.4 loop detection).
    path: HashSet<(Label, AbsStore<D>)>,
    depth: usize,
    stats: AnalysisStats,
    flows: FlowLog,
}

impl<'p, D: NumDomain> Run<'_, 'p, D> {
    /// `φ_e : Λ(V) × Stô → Val̂`.
    fn phi(&self, v: &'p AVal, store: &AbsStore<D>) -> AbsVal<D> {
        match &v.kind {
            AValKind::Num(n) => AbsVal::num(*n),
            AValKind::Var(x) => {
                let id = self.a.prog.var_id(x).expect("validated program variable");
                store.get(id).clone()
            }
            AValKind::Add1 => AbsVal::closure(AbsClo::Inc),
            AValKind::Sub1 => AbsVal::closure(AbsClo::Dec),
            AValKind::Lam(..) => AbsVal::closure(AbsClo::Lam(v.label)),
        }
    }

    fn var_id(&self, x: &cpsdfa_syntax::Ident) -> VarId {
        self.a.prog.var_id(x).expect("validated program variable")
    }

    /// `(M, σ) ⊢Me A` with §4.4 loop detection.
    fn eval(
        &mut self,
        m: &'p Anf,
        store: AbsStore<D>,
        dup: u32,
    ) -> Result<AbsAnswer<D>, AnalysisError> {
        self.depth += 1;
        self.stats.enter_goal(self.depth);
        self.a.charge(self.stats.goals)?;

        let key = (m.label, store.clone());
        if self.path.contains(&key) {
            // Loop detected: return the least precise value with the
            // current store (§4.4).
            self.stats.cycle_cuts += 1;
            self.depth -= 1;
            return Ok(AbsAnswer {
                value: self.a.top_value(),
                store,
            });
        }
        self.path.insert(key.clone());
        let out = self.eval_inner(m, store, dup);
        self.path.remove(&key);
        self.depth -= 1;
        out
    }

    fn eval_inner(
        &mut self,
        m: &'p Anf,
        store: AbsStore<D>,
        dup: u32,
    ) -> Result<AbsAnswer<D>, AnalysisError> {
        match &m.kind {
            AnfKind::Value(v) => {
                let value = self.phi(v, &store);
                Ok(AbsAnswer { value, store })
            }
            AnfKind::Let { var, bind, body } => {
                let x = self.var_id(var);
                match bind {
                    Bind::Value(v) => {
                        let u = self.phi(v, &store);
                        let mut store = store;
                        store.join_at(x, &u);
                        self.eval(body, store, dup)
                    }
                    Bind::App(vf, va) => {
                        let u1 = self.phi(vf, &store);
                        let u2 = self.phi(va, &store);
                        self.eval_call(m.label, x, &u1, &u2, store, body, dup)
                    }
                    Bind::If0(vc, then_, else_) => {
                        let u0 = self.phi(vc, &store);
                        self.eval_if0(m.label, x, &u0, then_, else_, store, body, dup)
                    }
                    Bind::Loop => {
                        // §6.2 extension: ⊔ᵢ (i, ∅) = (⊤, ∅).
                        let mut store = store;
                        store.join_at(x, &AbsVal::new(D::top(), BTreeSet::new()));
                        self.eval(body, store, dup)
                    }
                }
            }
        }
    }

    /// One closure element applied to `u₂` (a single `appl_e` premise).
    fn apply_one(
        &mut self,
        site: Label,
        clo: AbsClo,
        u2: &AbsVal<D>,
        store: &AbsStore<D>,
        dup: u32,
    ) -> Result<AbsAnswer<D>, AnalysisError> {
        self.flows.record_call(site, clo);
        match clo {
            AbsClo::Inc => Ok(AbsAnswer {
                value: AbsVal::new(u2.num.add1(), BTreeSet::new()),
                store: store.clone(),
            }),
            AbsClo::Dec => Ok(AbsAnswer {
                value: AbsVal::new(u2.num.sub1(), BTreeSet::new()),
                store: store.clone(),
            }),
            AbsClo::Lam(l) => {
                let lam = self.a.lambdas[&l];
                let mut store = store.clone();
                store.join_at(lam.param_id, u2);
                self.eval(lam.body, store, dup)
            }
        }
    }

    /// `app_e`: apply every closure in `u₁` and join — then continue with
    /// the `let` body. With duplication budget left and several callees,
    /// the body is analyzed per callee instead (§6.3).
    #[allow(clippy::too_many_arguments)]
    fn eval_call(
        &mut self,
        site: Label,
        x: VarId,
        u1: &AbsVal<D>,
        u2: &AbsVal<D>,
        store: AbsStore<D>,
        body: &'p Anf,
        dup: u32,
    ) -> Result<AbsAnswer<D>, AnalysisError> {
        let elems: Vec<AbsClo> = u1.clos.iter().copied().collect();
        if elems.is_empty() {
            // Nothing applicable: the empty join. The continuation is dead.
            return Ok(AbsAnswer {
                value: AbsVal::bot(),
                store,
            });
        }
        if dup > 0 && elems.len() > 1 {
            // §6.3 bounded duplication: continuation analyzed per callee.
            let mut acc: Option<AbsAnswer<D>> = None;
            for clo in elems {
                let a = self.apply_one(site, clo, u2, &store, dup)?;
                let mut s = a.store;
                s.join_at(x, &a.value);
                let full = self.eval(body, s, dup - 1)?;
                acc = Some(match acc {
                    None => full,
                    Some(prev) => prev.join(&full),
                });
            }
            return Ok(acc.expect("non-empty callee set"));
        }
        // Figure 4: join all callee answers, then continue once.
        let mut acc: Option<AbsAnswer<D>> = None;
        for clo in elems {
            let a = self.apply_one(site, clo, u2, &store, dup)?;
            acc = Some(match acc {
                None => a,
                Some(prev) => prev.join(&a),
            });
        }
        let AbsAnswer {
            value: u3,
            store: mut s3,
        } = acc.expect("non-empty callee set");
        s3.join_at(x, &u3);
        self.eval(body, s3, dup)
    }

    /// The three `if0` rules of Figure 4 (plus §6.3 duplication).
    #[allow(clippy::too_many_arguments)]
    fn eval_if0(
        &mut self,
        site: Label,
        x: VarId,
        u0: &AbsVal<D>,
        then_: &'p Anf,
        else_: &'p Anf,
        store: AbsStore<D>,
        body: &'p Anf,
        dup: u32,
    ) -> Result<AbsAnswer<D>, AnalysisError> {
        let exactly_zero = u0.is_exactly_zero();
        let may_zero = u0.may_be_zero();
        if exactly_zero {
            // i = 1: u₀ = (0, ∅).
            self.flows.record_branch(site, true, false);
            let AbsAnswer {
                value: u1,
                store: mut s1,
            } = self.eval(then_, store, dup)?;
            s1.join_at(x, &u1);
            return self.eval(body, s1, dup);
        }
        if !may_zero {
            // i = 2: (0, ∅) ⋢ u₀.
            self.flows.record_branch(site, false, true);
            let AbsAnswer {
                value: u2,
                store: mut s2,
            } = self.eval(else_, store, dup)?;
            s2.join_at(x, &u2);
            return self.eval(body, s2, dup);
        }
        // (0, ∅) ⊏ u₀: both arms.
        self.flows.record_branch(site, true, true);
        if dup > 0 {
            // §6.3 bounded duplication: continuation analyzed per arm.
            let a1 = {
                let AbsAnswer {
                    value: u1,
                    store: mut s1,
                } = self.eval(then_, store.clone(), dup)?;
                s1.join_at(x, &u1);
                self.eval(body, s1, dup - 1)?
            };
            let a2 = {
                let AbsAnswer {
                    value: u2,
                    store: mut s2,
                } = self.eval(else_, store, dup)?;
                s2.join_at(x, &u2);
                self.eval(body, s2, dup - 1)?
            };
            return Ok(a1.join(&a2));
        }
        // Figure 4: join stores and arm values, continue once.
        let AbsAnswer {
            value: u1,
            store: s1,
        } = self.eval(then_, store.clone(), dup)?;
        let AbsAnswer {
            value: u2,
            store: s2,
        } = self.eval(else_, store, dup)?;
        let mut sj = s1.join(&s2);
        sj.join_at(x, &u1.join(&u2));
        self.eval(body, sj, dup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Flat, PowerSet};

    fn analyze(src: &str) -> (AnfProgram, DirectResult<Flat>) {
        let p = AnfProgram::parse(src).unwrap();
        let r = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        (p, r)
    }

    fn num_of(p: &AnfProgram, r: &DirectResult<Flat>, x: &str) -> Flat {
        r.store.get(p.var_named(x).unwrap()).num
    }

    #[test]
    fn constants_propagate_through_lets_and_prims() {
        let (p, r) = analyze("(let (a 1) (let (b (add1 a)) (let (c (sub1 b)) c)))");
        assert_eq!(num_of(&p, &r, "a").as_const(), Some(1));
        assert_eq!(num_of(&p, &r, "b").as_const(), Some(2));
        assert_eq!(num_of(&p, &r, "c").as_const(), Some(1));
        assert_eq!(r.value.num.as_const(), Some(1));
    }

    #[test]
    fn known_zero_prunes_to_then_branch() {
        let (p, r) = analyze("(let (a (if0 0 10 20)) a)");
        assert_eq!(num_of(&p, &r, "a").as_const(), Some(10));
        let b = r.flows.branches.values().next().unwrap();
        assert!(b.then_taken && !b.else_taken);
    }

    #[test]
    fn known_nonzero_prunes_to_else_branch() {
        let (p, r) = analyze("(let (a (if0 3 10 20)) a)");
        assert_eq!(num_of(&p, &r, "a").as_const(), Some(20));
    }

    #[test]
    fn unknown_test_merges_branches() {
        // z is free, hence ⊤.
        let (p, r) = analyze("(let (a (if0 z 10 20)) a)");
        assert!(num_of(&p, &r, "a").is_top());
        let b = r.flows.branches.values().next().unwrap();
        assert!(b.then_taken && b.else_taken);
    }

    #[test]
    fn same_constant_in_both_arms_survives_merge() {
        let (p, r) = analyze("(let (a (if0 z 7 7)) a)");
        assert_eq!(num_of(&p, &r, "a").as_const(), Some(7));
    }

    #[test]
    fn call_merges_all_argument_values_at_the_parameter() {
        // Paper's running observation: x receives 1 and 2, so x = ⊤,
        // but the analysis still sees a1 = 1 because the first application
        // is analyzed with σ where only 1 has reached x... no: Figure 4
        // applies each closure to the *current* store; after (f 1) the
        // store has x = 1, the application returns 1, a1 = 1. Then (f 2)
        // joins 2 at x (⊤) and returns ⊤ — a2 = ⊤.
        let (p, r) = analyze("(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))");
        assert_eq!(num_of(&p, &r, "a1").as_const(), Some(1));
        assert!(num_of(&p, &r, "x").is_top());
        assert!(num_of(&p, &r, "a2").is_top());
    }

    #[test]
    fn closures_flow_to_call_sites() {
        let (p, r) = analyze("(let (f (lambda (x) x)) (f 1))");
        let lam = p.lambda_labels()[0];
        let f = p.var_named("f").unwrap();
        assert!(r.store.get(f).clos.contains(&AbsClo::Lam(lam)));
        assert_eq!(r.flows.call_edge_count(), 1);
        assert!(
            r.flows.returns.is_empty(),
            "direct analysis has no return sites"
        );
    }

    #[test]
    fn higher_order_dispatch_joins_callees() {
        let src = "(let (f (if0 z (lambda (d0) 0) (lambda (d1) 1))) (let (a (f 9)) a))";
        let (p, r) = analyze(src);
        // both closures applied at the call
        assert_eq!(r.flows.call_edge_count(), 2);
        assert!(num_of(&p, &r, "a").is_top(), "0 ⊔ 1 = ⊤");
    }

    #[test]
    fn omega_terminates_via_cycle_cut() {
        let (_, r) = analyze("(let (w (lambda (x) (x x))) (let (r (w w)) r))");
        assert!(r.stats.cycle_cuts > 0);
        // The cut answers (⊤, CL⊤): the result may be anything.
        assert!(r.value.num.is_top());
    }

    #[test]
    fn loop_extension_is_top_number() {
        let (p, r) = analyze("(let (x (loop)) (let (y (add1 x)) y))");
        assert!(num_of(&p, &r, "x").is_top());
        assert!(num_of(&p, &r, "y").is_top());
        assert!(r.store.get(p.var_named("x").unwrap()).clos.is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = AnfProgram::parse("(let (w (lambda (x) (x x))) (w w))").unwrap();
        let r = DirectAnalyzer::<Flat>::new(&p)
            .with_budget(AnalysisBudget::new(3))
            .analyze();
        assert_eq!(r.unwrap_err(), AnalysisError::BudgetExhausted { budget: 3 });
    }

    #[test]
    fn seeds_override_free_variable_defaults() {
        let p = AnfProgram::parse("(let (a (add1 z)) a)").unwrap();
        let z = p.var_named("z").unwrap();
        let r = DirectAnalyzer::<Flat>::new(&p)
            .with_seed(z, AbsVal::num(4))
            .analyze()
            .unwrap();
        assert_eq!(
            r.store.get(p.var_named("a").unwrap()).num.as_const(),
            Some(5)
        );
    }

    #[test]
    fn powerset_domain_keeps_small_sets() {
        let p = AnfProgram::parse("(let (a (if0 z 1 2)) a)").unwrap();
        let r = DirectAnalyzer::<PowerSet<8>>::new(&p).analyze().unwrap();
        let a = p.var_named("a").unwrap();
        let n = &r.store.get(a).num;
        assert!(n.contains(1) && n.contains(2) && !n.contains(3));
    }

    #[test]
    fn duplication_depth_recovers_branch_correlation() {
        // Theorem 5.2 case 1's program shape: without duplication a2 = ⊤;
        // with duplication depth 1 the continuation is analyzed per branch
        // and a2 = 3 on both paths.
        let src = "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))";
        let p = AnfProgram::parse(src).unwrap();
        let plain = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let dup = DirectAnalyzer::<Flat>::new(&p)
            .with_duplication_depth(1)
            .analyze()
            .unwrap();
        let a2 = p.var_named("a2").unwrap();
        assert!(plain.store.get(a2).num.is_top());
        assert_eq!(dup.store.get(a2).num.as_const(), Some(3));
    }

    #[test]
    fn stats_count_goals_and_depth() {
        let (_, r) = analyze("(let (a 1) (let (b (add1 a)) b))");
        assert!(r.stats.goals >= 3);
        assert!(r.stats.max_depth >= 3);
        assert_eq!(r.stats.cycle_cuts, 0);
    }
}
