//! Precision comparison of abstract results (§4.1: "the relation *is more
//! precise than* coincides with the lattice ordering").

use crate::absval::{AbsStore, AbsVal, CAbsStore, CAbsVal};
use crate::domain::NumDomain;
use cpsdfa_anf::{AnfProgram, VarId};
use std::fmt;

/// The four possible relationships between two abstract results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionOrder {
    /// Both sides carry the same information.
    Equal,
    /// The left result is strictly more precise (`left ⊏ right`).
    LeftMorePrecise,
    /// The right result is strictly more precise (`right ⊏ left`).
    RightMorePrecise,
    /// Neither refines the other — Theorem 5.1 + 5.2's "incomparable".
    Incomparable,
}

impl PrecisionOrder {
    /// Combines from `left ⊑ right` / `right ⊑ left` flags.
    pub fn from_leq(left_leq_right: bool, right_leq_left: bool) -> Self {
        match (left_leq_right, right_leq_left) {
            (true, true) => PrecisionOrder::Equal,
            (true, false) => PrecisionOrder::LeftMorePrecise,
            (false, true) => PrecisionOrder::RightMorePrecise,
            (false, false) => PrecisionOrder::Incomparable,
        }
    }
}

impl fmt::Display for PrecisionOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrecisionOrder::Equal => "equal",
            PrecisionOrder::LeftMorePrecise => "left more precise",
            PrecisionOrder::RightMorePrecise => "right more precise",
            PrecisionOrder::Incomparable => "incomparable",
        })
    }
}

/// Compares two same-program abstract stores.
pub fn compare_stores<D: NumDomain>(a: &AbsStore<D>, b: &AbsStore<D>) -> PrecisionOrder {
    PrecisionOrder::from_leq(a.leq(b), b.leq(a))
}

/// Compares two same-program syntactic-CPS stores.
pub fn compare_cstores<D: NumDomain>(a: &CAbsStore<D>, b: &CAbsStore<D>) -> PrecisionOrder {
    PrecisionOrder::from_leq(a.leq(b), b.leq(a))
}

/// Compares two abstract values.
pub fn compare_values<D: NumDomain>(a: &AbsVal<D>, b: &AbsVal<D>) -> PrecisionOrder {
    PrecisionOrder::from_leq(a.leq(b), b.leq(a))
}

/// Compares two syntactic-CPS abstract values.
pub fn compare_cvalues<D: NumDomain>(a: &CAbsVal<D>, b: &CAbsVal<D>) -> PrecisionOrder {
    PrecisionOrder::from_leq(a.leq(b), b.leq(a))
}

/// One line of a per-variable precision report.
#[derive(Debug, Clone)]
pub struct VarComparison<D: NumDomain> {
    /// The variable.
    pub var: VarId,
    /// Its name.
    pub name: String,
    /// The left analysis' value.
    pub left: AbsVal<D>,
    /// The right analysis' value.
    pub right: AbsVal<D>,
    /// How they relate.
    pub order: PrecisionOrder,
}

/// Compares two stores variable by variable, for human-readable reports.
pub fn compare_per_var<D: NumDomain>(
    prog: &AnfProgram,
    left: &AbsStore<D>,
    right: &AbsStore<D>,
) -> Vec<VarComparison<D>> {
    prog.iter_vars()
        .map(|(v, name)| {
            let l = left.get(v).clone();
            let r = right.get(v).clone();
            let order = compare_values(&l, &r);
            VarComparison {
                var: v,
                name: name.to_string(),
                left: l,
                right: r,
                order,
            }
        })
        .collect()
}

/// Tallies of a corpus-level precision census (experiment E3/E4/E9).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    /// Programs where both analyses agreed everywhere.
    pub equal: usize,
    /// Programs where the left analysis was strictly more precise.
    pub left: usize,
    /// Programs where the right analysis was strictly more precise.
    pub right: usize,
    /// Programs with incomparable results.
    pub incomparable: usize,
}

impl Census {
    /// Records one comparison.
    pub fn record(&mut self, o: PrecisionOrder) {
        match o {
            PrecisionOrder::Equal => self.equal += 1,
            PrecisionOrder::LeftMorePrecise => self.left += 1,
            PrecisionOrder::RightMorePrecise => self.right += 1,
            PrecisionOrder::Incomparable => self.incomparable += 1,
        }
    }

    /// Total comparisons recorded.
    pub fn total(&self) -> usize {
        self.equal + self.left + self.right + self.incomparable
    }
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "equal={} left={} right={} incomparable={} (n={})",
            self.equal,
            self.left,
            self.right,
            self.incomparable,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absval::AbsClo;
    use crate::domain::Flat;
    use cpsdfa_syntax::Label;

    #[test]
    fn order_from_leq_covers_all_cases() {
        assert_eq!(PrecisionOrder::from_leq(true, true), PrecisionOrder::Equal);
        assert_eq!(
            PrecisionOrder::from_leq(true, false),
            PrecisionOrder::LeftMorePrecise
        );
        assert_eq!(
            PrecisionOrder::from_leq(false, true),
            PrecisionOrder::RightMorePrecise
        );
        assert_eq!(
            PrecisionOrder::from_leq(false, false),
            PrecisionOrder::Incomparable
        );
    }

    #[test]
    fn incomparable_values_detected() {
        let a: AbsVal<Flat> = AbsVal::num(1);
        let b: AbsVal<Flat> = AbsVal::closure(AbsClo::Lam(Label::new(0)));
        assert_eq!(compare_values(&a, &b), PrecisionOrder::Incomparable);
        assert_eq!(compare_values(&a, &a), PrecisionOrder::Equal);
        let t = AbsVal::new(Flat::Top, Default::default());
        assert_eq!(compare_values(&a, &t), PrecisionOrder::LeftMorePrecise);
        assert_eq!(compare_values(&t, &a), PrecisionOrder::RightMorePrecise);
    }

    #[test]
    fn census_tallies() {
        let mut c = Census::default();
        c.record(PrecisionOrder::Equal);
        c.record(PrecisionOrder::Incomparable);
        c.record(PrecisionOrder::Incomparable);
        assert_eq!(c.total(), 3);
        assert_eq!(c.incomparable, 2);
        assert!(c.to_string().contains("n=3"));
    }

    #[test]
    fn per_var_report_names_variables() {
        let p = AnfProgram::parse("(let (a 1) a)").unwrap();
        let s1: AbsStore<Flat> = AbsStore::bottom(p.num_vars());
        let mut s2 = s1.clone();
        s2.join_at(p.var_named("a").unwrap(), &AbsVal::num(1));
        let rows = compare_per_var(&p, &s1, &s2);
        let a_row = rows.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a_row.order, PrecisionOrder::LeftMorePrecise);
    }
}
