//! The abstract version δₑ of the δ relation (§5), bridging direct /
//! semantic-CPS results and syntactic-CPS results:
//!
//! ```text
//! δe((n̂, {cl₁, …, clᵢ})) = (n̂, {Ve(cl₁), …, Ve(clᵢ)}, ∅)
//! Ve((cle x, M)) = (cle xk, F_k[M])      Ve(inc) = inck     Ve(dec) = deck
//! ```
//!
//! applied pointwise to stores and component-wise to answers. Theorems 5.1,
//! 5.2, and 5.5 all state their comparisons through δₑ; this module makes
//! those statements executable.

use crate::absval::{AbsClo, AbsStore, AbsVal, CAbsStore, CAbsVal};
use crate::domain::NumDomain;
use crate::precision::PrecisionOrder;
use cpsdfa_anf::AnfProgram;
use cpsdfa_cps::CpsProgram;
use std::collections::BTreeSet;
use std::fmt;

/// δₑ on values: maps a direct/semantic abstract value into the
/// syntactic-CPS universe via the transform's label correspondence. The
/// continuation component of the image is empty — direct values never
/// contain continuations.
///
/// Returns `None` if a closure has no CPS image (possible only when the
/// value did not come from an analysis of the matching program).
pub fn delta_val<D: NumDomain>(v: &AbsVal<D>, cps: &CpsProgram) -> Option<CAbsVal<D>> {
    let mut clos = BTreeSet::new();
    for c in &v.clos {
        let mapped = match c {
            AbsClo::Inc => AbsClo::Inc,
            AbsClo::Dec => AbsClo::Dec,
            AbsClo::Lam(src) => AbsClo::Lam(*cps.label_map().lam.get(src)?),
        };
        clos.insert(mapped);
    }
    Some(CAbsVal::new(v.num.clone(), clos, BTreeSet::new()))
}

/// The per-variable comparison of a source-program analysis against a
/// CPS-program analysis, through δₑ.
#[derive(Debug, Clone)]
pub struct CrossComparison<D: NumDomain> {
    /// Source variable name.
    pub name: String,
    /// δₑ of the source analysis' value.
    pub direct_image: CAbsVal<D>,
    /// The CPS analysis' value at the same variable.
    pub cps_value: CAbsVal<D>,
    /// `δe(σ₁(x))` vs `σ₂(x)`.
    pub order: PrecisionOrder,
}

impl<D: NumDomain> fmt::Display for CrossComparison<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} source→δe {:<28} cps {:<28} [{}]",
            self.name,
            self.direct_image.to_string(),
            self.cps_value.to_string(),
            self.order
        )
    }
}

/// Compares a direct (or semantic-CPS) store against a syntactic-CPS store
/// through δₑ, per shared user variable — the executable form of the
/// store conditions in Theorems 5.1/5.2/5.5.
///
/// # Panics
///
/// Panics if `cps` was not produced from `prog` (variables fail to map).
pub fn compare_via_delta<D: NumDomain>(
    prog: &AnfProgram,
    cps: &CpsProgram,
    source_store: &AbsStore<D>,
    cps_store: &CAbsStore<D>,
) -> Vec<CrossComparison<D>> {
    let mut rows = Vec::new();
    for (v, name) in prog.iter_vars() {
        let img = delta_val(source_store.get(v), cps)
            .expect("closure labels map through the CPS transform");
        let cid = cps
            .user_var_id(name)
            .expect("source variables survive the CPS transform");
        let cv = cps_store.get(cid).clone();
        let order = PrecisionOrder::from_leq(img.leq(&cv), cv.leq(&img));
        rows.push(CrossComparison {
            name: name.to_string(),
            direct_image: img,
            cps_value: cv,
            order,
        });
    }
    rows
}

/// Summarizes a cross-comparison into one overall [`PrecisionOrder`]
/// (the conjunction over variables, as in the theorem statements).
pub fn overall(rows: &[CrossComparison<impl NumDomain>]) -> PrecisionOrder {
    let all_left = rows.iter().all(|r| {
        matches!(
            r.order,
            PrecisionOrder::Equal | PrecisionOrder::LeftMorePrecise
        )
    });
    let all_right = rows.iter().all(|r| {
        matches!(
            r.order,
            PrecisionOrder::Equal | PrecisionOrder::RightMorePrecise
        )
    });
    PrecisionOrder::from_leq(all_left, all_right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectAnalyzer;
    use crate::domain::Flat;
    use crate::semcps::SemCpsAnalyzer;
    use crate::syncps::SynCpsAnalyzer;

    fn setup(src: &str) -> (AnfProgram, CpsProgram) {
        let p = AnfProgram::parse(src).unwrap();
        let c = CpsProgram::from_anf(&p);
        (p, c)
    }

    #[test]
    fn delta_maps_closure_labels() {
        let (p, c) = setup("(let (f (lambda (x) x)) (f 1))");
        let src_lam = p.lambda_labels()[0];
        let v: AbsVal<Flat> = AbsVal::closure(AbsClo::Lam(src_lam));
        let img = delta_val(&v, &c).unwrap();
        assert_eq!(img.clos.len(), 1);
        assert!(img.konts.is_empty());
        let cps_lam = c.label_map().lam[&src_lam];
        assert!(img.clos.contains(&AbsClo::Lam(cps_lam)));
    }

    #[test]
    fn delta_preserves_primitives_and_numbers() {
        let (_, c) = setup("(add1 1)");
        let v: AbsVal<Flat> = AbsVal::num(3).join(&AbsVal::closure(AbsClo::Inc));
        let img = delta_val(&v, &c).unwrap();
        assert_eq!(img.num.as_const(), Some(3));
        assert!(img.clos.contains(&AbsClo::Inc));
    }

    #[test]
    fn delta_rejects_foreign_labels() {
        let (_, c) = setup("(add1 1)");
        let v: AbsVal<Flat> = AbsVal::closure(AbsClo::Lam(cpsdfa_syntax::Label::new(999)));
        assert!(delta_val(&v, &c).is_none());
    }

    #[test]
    fn theorem_51_direct_strictly_more_precise() {
        let (p, c) = setup("(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))");
        let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let s = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        let rows = compare_via_delta(&p, &c, &d.store, &s.store);
        let a1 = rows.iter().find(|r| r.name == "a1").unwrap();
        assert_eq!(a1.order, PrecisionOrder::LeftMorePrecise);
        assert_eq!(overall(&rows), PrecisionOrder::LeftMorePrecise);
    }

    #[test]
    fn theorem_52_cps_strictly_more_precise() {
        let (p, c) = setup("(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))");
        let d = DirectAnalyzer::<Flat>::new(&p).analyze().unwrap();
        let s = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
        let rows = compare_via_delta(&p, &c, &d.store, &s.store);
        let a2 = rows.iter().find(|r| r.name == "a2").unwrap();
        assert_eq!(a2.order, PrecisionOrder::RightMorePrecise);
        assert_eq!(overall(&rows), PrecisionOrder::RightMorePrecise);
    }

    #[test]
    fn theorem_55_semantic_refines_syntactic() {
        // δe(C_e result) ⊑ M_s result, pointwise on shared variables.
        for src in [
            "(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))",
            "(let (a1 (if0 z 0 1)) (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))",
            "(let (f (lambda (x) (if0 x 1 2))) (let (a (f 0)) (let (b (f 5)) b)))",
        ] {
            let (p, c) = setup(src);
            let sem = SemCpsAnalyzer::<Flat>::new(&p).analyze().unwrap();
            let syn = SynCpsAnalyzer::<Flat>::new(&c).analyze().unwrap();
            let rows = compare_via_delta(&p, &c, &sem.store, &syn.store);
            for r in &rows {
                assert!(
                    matches!(
                        r.order,
                        PrecisionOrder::Equal | PrecisionOrder::LeftMorePrecise
                    ),
                    "theorem 5.5 violated at {} on {src}: {r}",
                    r.name
                );
            }
        }
    }
}
