//! Independent fixpoint certification — translation validation for served
//! analysis answers.
//!
//! The service hands out fixpoints computed through four increasingly
//! subtle paths: the sequential worklist solver, the sharded parallel
//! engine, incremental warm-starts, and the content-addressed cache (now
//! backed by a crash-safe disk spill, [`crate::cache::persist`]). Every one
//! of those paths is *trusted* unless something checks the answer after the
//! fact. This module is that check: given the program and a claimed
//! solution, it **re-derives every constraint from the AST** with its own
//! walk — sharing the front end (parser, ANF/CPS transforms, CFG lowering)
//! but *no solver code* — recomputes the least model by naive Kleene
//! iteration, and demands exact equality with the claim.
//!
//! Why not just check closure? A closed superset of the least fixpoint is
//! still closed: an extra `λ ∈ x` fact can justify itself through a
//! self-loop edge (`x ⊆ x` via self-application), so a corrupted answer
//! with *additions* passes any local consistency test. Comparing against an
//! independently recomputed least model catches both directions:
//!
//! * **missing** facts refute as [`Refutation::Unclosed`], with the
//!   violated constraint as a counterexample edge (found by a single
//!   O(edges) closure scan of the claim);
//! * **extra** facts refute as [`Refutation::Unsupported`], naming a fact
//!   the least model does not contain;
//! * wrong table dimensions refute as [`Refutation::Shape`].
//!
//! Work counters (`iterations`, `summaries`) are *not* certified — they are
//! schedule-dependent cost measures, excluded from answer digests for the
//! same reason.
//!
//! The checkers reproduce the exact result-surface conventions of the
//! analyzers (verified by the differential suite in
//! `tests/certify_differential.rs`):
//!
//! * source 0CFA `terms` holds exactly the propagation-*target* labels —
//!   including empty sets — while `calls` holds only non-empty entries;
//! * CPS 0CFA `returns`/`calls` hold only non-empty entries, and variables
//!   commit densely over both namespaces;
//! * pushdown records halt/join returns statically (reachability-blind),
//!   instantiates frame returns per matched call, and back-fills
//!   continuation variables with the *matched* frames after the solve;
//! * MFP summarizes each variable at its defining nodes only.
//!
//! Trust argument: a bug in the shared front end changes *which* constraint
//! system both the solver and the checker see, so it cannot be caught here
//! (nothing short of a second front end could); a bug anywhere downstream —
//! solver scheduling, shard merges, warm-start seeding, cache storage, disk
//! corruption that slips past checksums — produces an answer that fails
//! this check. The daemon's `--certify` mode samples served answers through
//! [`certify_answer`] and evicts + recomputes on refutation instead of
//! serving the bad fixpoint (DESIGN.md §13).

use crate::absval::{AbsClo, AbsKont};
use crate::cache::{AnalysisKind, CachedAnswer};
use crate::cfa::{CfaResult, CpsCfaResult, CpsFlow};
use crate::domain::{Flat, NumDomain};
use crate::mfp::{Cfg, DfSummary, Stmt};
use crate::pushdown::{MatchedReturn, PushdownCfaResult};
use cpsdfa_anf::{AValKind, Anf, AnfKind, AnfProgram, Bind, VarId};
use cpsdfa_cps::{CTerm, CTermKind, CVal, CValKind, CVarId, CpsProgram};
use cpsdfa_syntax::Label;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A machine-readable witness that a claimed solution *is* the least
/// fixpoint of the constraint system re-derived from the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// The analysis whose answer was certified.
    pub kind: AnalysisKind,
    /// Static constraints re-derived and checked.
    pub constraints: usize,
    /// Total facts (set elements + table entries) in the certified answer.
    pub facts: usize,
}

/// A machine-readable refutation: why a claimed solution is *not* the
/// analysis' least fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refutation {
    /// The claim has the wrong dimensions (variable universe, term-table
    /// key set, …) for this program — it cannot be a solution at all.
    Shape {
        /// What dimension disagrees.
        detail: String,
    },
    /// The claim is missing facts: `edge` is a re-derived constraint the
    /// claim violates (the counterexample), `missing` the fact it fails to
    /// propagate.
    Unclosed {
        /// The violated constraint.
        edge: String,
        /// A fact required by `edge` but absent from the claim.
        missing: String,
    },
    /// The claim is closed but *larger* than the least model: it contains
    /// `fact`, which no derivation supports.
    Unsupported {
        /// The unsupported fact.
        fact: String,
    },
}

impl Refutation {
    /// Stable short tag for counters and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            Refutation::Shape { .. } => "shape",
            Refutation::Unclosed { .. } => "unclosed",
            Refutation::Unsupported { .. } => "unsupported",
        }
    }
}

impl fmt::Display for Refutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Refutation::Shape { detail } => write!(f, "shape: {detail}"),
            Refutation::Unclosed { edge, missing } => {
                write!(f, "unclosed: {edge} does not propagate {missing}")
            }
            Refutation::Unsupported { fact } => write!(f, "unsupported fact: {fact}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Source-level 0CFA
// ---------------------------------------------------------------------------

/// A flow node of the re-derived source constraint graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SNode {
    Var(VarId),
    Term(Label),
}

impl fmt::Display for SNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SNode::Var(v) => write!(f, "v{}", v.index()),
            SNode::Term(l) => write!(f, "t{l}"),
        }
    }
}

/// The source constraint system, re-derived by an independent AST walk.
struct SrcSystem {
    seeds: Vec<(BTreeSet<AbsClo>, SNode)>,
    subs: Vec<(SNode, SNode)>,
    /// `(f node, arg node, bind var, site)`.
    calls: Vec<(SNode, SNode, VarId, Label)>,
    /// Labels that are propagation targets — exactly the key set the
    /// analyzer's `terms` table must have.
    dst_terms: BTreeSet<Label>,
    /// `λ label → (param, body label)`.
    lam: HashMap<Label, (VarId, Label)>,
}

impl SrcSystem {
    fn derive(prog: &AnfProgram) -> SrcSystem {
        let mut sys = SrcSystem {
            seeds: Vec::new(),
            subs: Vec::new(),
            calls: Vec::new(),
            dst_terms: BTreeSet::new(),
            lam: HashMap::new(),
        };
        for (l, r) in prog.lambdas() {
            sys.lam.insert(l, (r.param_id, r.body.label));
        }
        sys.walk(prog.root(), prog);
        sys
    }

    fn constraints(&self) -> usize {
        self.seeds.len() + self.subs.len() + self.calls.len()
    }

    fn dst(&mut self, n: SNode) {
        if let SNode::Term(l) = n {
            self.dst_terms.insert(l);
        }
    }

    /// The flow of a syntactic value into `dst`: constants seed (empty
    /// constant sets — numbers — generate nothing, so the target is not
    /// marked), variables subset-edge.
    fn val(&mut self, v: &cpsdfa_anf::AVal, dst: SNode, prog: &AnfProgram) {
        match &v.kind {
            AValKind::Num(_) => {}
            AValKind::Add1 => {
                self.dst(dst);
                self.seeds.push((BTreeSet::from([AbsClo::Inc]), dst));
            }
            AValKind::Sub1 => {
                self.dst(dst);
                self.seeds.push((BTreeSet::from([AbsClo::Dec]), dst));
            }
            AValKind::Lam(..) => {
                self.dst(dst);
                self.seeds
                    .push((BTreeSet::from([AbsClo::Lam(v.label)]), dst));
            }
            AValKind::Var(x) => {
                self.dst(dst);
                let y = prog.var_id(x).expect("indexed variable");
                self.subs.push((SNode::Var(y), dst));
            }
        }
    }

    fn walk(&mut self, m: &Anf, prog: &AnfProgram) {
        match &m.kind {
            AnfKind::Value(v) => {
                self.val(v, SNode::Term(m.label), prog);
                if let AValKind::Lam(_, body) = &v.kind {
                    self.walk(body, prog);
                }
            }
            AnfKind::Let { var, bind, body } => {
                let x = prog.var_id(var).expect("indexed variable");
                match bind {
                    Bind::Value(v) => {
                        self.val(v, SNode::Var(x), prog);
                        if let AValKind::Lam(_, lbody) = &v.kind {
                            self.walk(lbody, prog);
                        }
                    }
                    Bind::App(f, a) => {
                        self.val(f, SNode::Term(f.label), prog);
                        self.val(a, SNode::Term(a.label), prog);
                        if let AValKind::Lam(_, b) = &f.kind {
                            self.walk(b, prog);
                        }
                        if let AValKind::Lam(_, b) = &a.kind {
                            self.walk(b, prog);
                        }
                        self.calls
                            .push((SNode::Term(f.label), SNode::Term(a.label), x, m.label));
                    }
                    Bind::If0(c, t, e) => {
                        self.val(c, SNode::Term(c.label), prog);
                        self.walk(t, prog);
                        self.walk(e, prog);
                        self.subs.push((SNode::Term(t.label), SNode::Var(x)));
                        self.subs.push((SNode::Term(e.label), SNode::Var(x)));
                    }
                    Bind::Loop => {}
                }
                self.walk(body, prog);
                self.dst(SNode::Term(m.label));
                self.subs
                    .push((SNode::Term(body.label), SNode::Term(m.label)));
            }
        }
    }
}

/// The claimed or recomputed source store, with uniform node access.
struct SrcStore {
    vars: Vec<BTreeSet<AbsClo>>,
    terms: BTreeMap<Label, BTreeSet<AbsClo>>,
    calls: BTreeMap<Label, BTreeSet<AbsClo>>,
}

impl SrcStore {
    fn get(&self, n: SNode) -> Option<&BTreeSet<AbsClo>> {
        match n {
            SNode::Var(v) => self.vars.get(v.index()),
            SNode::Term(l) => self.terms.get(&l),
        }
    }

    fn add(&mut self, n: SNode, v: AbsClo) -> bool {
        match n {
            SNode::Var(x) => self.vars[x.index()].insert(v),
            SNode::Term(l) => self.terms.entry(l).or_default().insert(v),
        }
    }
}

static EMPTY_CLO: BTreeSet<AbsClo> = BTreeSet::new();

/// Least model of the re-derived source system, by naive Kleene iteration:
/// every round re-applies every static edge and every call-discovered
/// dynamic edge until nothing grows. Quadratic in the worst case where the
/// analyzer's semi-naive solver is linear — certification trades speed for
/// independence.
fn src_least_model(sys: &SrcSystem, num_vars: usize) -> SrcStore {
    let mut st = SrcStore {
        vars: vec![BTreeSet::new(); num_vars],
        terms: BTreeMap::new(),
        calls: BTreeMap::new(),
    };
    for (set, dst) in &sys.seeds {
        for v in set {
            st.add(*dst, *v);
        }
    }
    loop {
        let mut changed = false;
        for &(src, dst) in &sys.subs {
            let flows: Vec<AbsClo> = st
                .get(src)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for v in flows {
                changed |= st.add(dst, v);
            }
        }
        for &(f, arg, bind, site) in &sys.calls {
            let callees: Vec<AbsClo> = st
                .get(f)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            for clo in callees {
                changed |= st.calls.entry(site).or_default().insert(clo);
                if let AbsClo::Lam(l) = clo {
                    let (param, body) = sys.lam[&l];
                    let args: Vec<AbsClo> = st
                        .get(arg)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for v in args {
                        changed |= st.add(SNode::Var(param), v);
                    }
                    let rets: Vec<AbsClo> = st
                        .get(SNode::Term(body))
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for v in rets {
                        changed |= st.add(SNode::Var(bind), v);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    st
}

/// One O(edges) closure scan of the claim: returns the first violated
/// constraint as an [`Refutation::Unclosed`] counterexample, or `None` when
/// the claim is closed.
fn src_closure_counterexample(sys: &SrcSystem, claim: &SrcStore) -> Option<Refutation> {
    let get = |n: SNode| claim.get(n).unwrap_or(&EMPTY_CLO);
    for (set, dst) in &sys.seeds {
        if let Some(v) = set.iter().find(|v| !get(*dst).contains(v)) {
            return Some(Refutation::Unclosed {
                edge: format!("seed ⊆ {dst}"),
                missing: format!("{v:?} ∈ {dst}"),
            });
        }
    }
    for &(src, dst) in &sys.subs {
        if let Some(v) = get(src).iter().find(|v| !get(dst).contains(v)) {
            return Some(Refutation::Unclosed {
                edge: format!("{src} ⊆ {dst}"),
                missing: format!("{v:?} ∈ {dst}"),
            });
        }
    }
    for &(f, arg, bind, site) in &sys.calls {
        for clo in get(f) {
            if !claim.calls.get(&site).is_some_and(|s| s.contains(clo)) {
                return Some(Refutation::Unclosed {
                    edge: format!("call@{site}"),
                    missing: format!("{clo:?} ∈ calls[{site}]"),
                });
            }
            if let AbsClo::Lam(l) = clo {
                let (param, body) = sys.lam[l];
                if let Some(v) = get(arg)
                    .iter()
                    .find(|v| !get(SNode::Var(param)).contains(v))
                {
                    return Some(Refutation::Unclosed {
                        edge: format!("call@{site} arg ⊆ v{}", param.index()),
                        missing: format!("{v:?} ∈ v{}", param.index()),
                    });
                }
                if let Some(v) = get(SNode::Term(body))
                    .iter()
                    .find(|v| !get(SNode::Var(bind)).contains(v))
                {
                    return Some(Refutation::Unclosed {
                        edge: format!("call@{site} ret ⊆ v{}", bind.index()),
                        missing: format!("{v:?} ∈ v{}", bind.index()),
                    });
                }
            }
        }
    }
    None
}

/// Certifies a source-level 0CFA answer against `prog`.
pub fn certify_cfa_src(prog: &AnfProgram, claimed: &CfaResult) -> Result<Certificate, Refutation> {
    if claimed.vars.len() != prog.num_vars() {
        return Err(Refutation::Shape {
            detail: format!(
                "claimed {} variables, program has {}",
                claimed.vars.len(),
                prog.num_vars()
            ),
        });
    }
    let sys = SrcSystem::derive(prog);
    let claimed_keys: BTreeSet<Label> = claimed.terms.keys().collect();
    if claimed_keys != sys.dst_terms {
        return Err(Refutation::Shape {
            detail: format!(
                "terms table keyed on {:?}, propagation targets are {:?}",
                claimed_keys, sys.dst_terms
            ),
        });
    }
    let claim = SrcStore {
        vars: claimed.vars.iter().map(|s| (**s).clone()).collect(),
        terms: claimed
            .terms
            .iter()
            .map(|(l, s)| (l, (**s).clone()))
            .collect(),
        calls: claimed.calls.iter().map(|(l, s)| (l, s.clone())).collect(),
    };
    if let Some(r) = src_closure_counterexample(&sys, &claim) {
        return Err(r);
    }
    // Closed and seeded ⇒ the claim contains the least model; any
    // difference left is an unsupported (extra) fact.
    let lfp = src_least_model(&sys, prog.num_vars());
    for (i, (c, d)) in claim.vars.iter().zip(&lfp.vars).enumerate() {
        if let Some(v) = c.difference(d).next() {
            return Err(Refutation::Unsupported {
                fact: format!("{v:?} ∈ v{i}"),
            });
        }
    }
    for (l, c) in &claim.terms {
        let d = lfp.terms.get(l).unwrap_or(&EMPTY_CLO);
        if let Some(v) = c.difference(d).next() {
            return Err(Refutation::Unsupported {
                fact: format!("{v:?} ∈ t{l}"),
            });
        }
    }
    for (l, c) in &claim.calls {
        let d = lfp.calls.get(l).unwrap_or(&EMPTY_CLO);
        if let Some(v) = c.difference(d).next() {
            return Err(Refutation::Unsupported {
                fact: format!("{v:?} ∈ calls[{l}]"),
            });
        }
        if c.is_empty() {
            return Err(Refutation::Unsupported {
                fact: format!("empty calls[{l}] entry"),
            });
        }
    }
    // The lfp calls table only holds non-empty entries; the claim matching
    // it elementwise plus having no extras means the key sets agree.
    if claim.calls.len() != lfp.calls.len() {
        return Err(Refutation::Shape {
            detail: format!(
                "calls table has {} sites, least model has {}",
                claim.calls.len(),
                lfp.calls.len()
            ),
        });
    }
    Ok(Certificate {
        kind: AnalysisKind::CfaSrc,
        constraints: sys.constraints(),
        facts: claim.vars.iter().map(BTreeSet::len).sum::<usize>()
            + claim.terms.values().map(BTreeSet::len).sum::<usize>()
            + claim.calls.values().map(BTreeSet::len).sum::<usize>(),
    })
}

// ---------------------------------------------------------------------------
// CPS-level 0CFA
// ---------------------------------------------------------------------------

/// A CPS operand, re-derived: nothing (a number), a constant flow, or a
/// variable.
#[derive(Clone, Copy)]
enum Op {
    None,
    Const(CpsFlow),
    Var(CVarId),
}

/// The CPS constraint system, re-derived by an independent walk.
struct CpsSystem {
    seeds: Vec<(CpsFlow, CVarId)>,
    subs: Vec<(CVarId, CVarId)>,
    /// `(k var, returned operand, site)`.
    rets: Vec<(CVarId, Op, Label)>,
    /// `(operator, argument, literal continuation label, site)`.
    calls: Vec<(Op, Op, Label, Label)>,
    /// `λ label → (param var, k var)`.
    lam: HashMap<Label, (CVarId, CVarId)>,
    /// continuation label → binder var.
    cont_var: HashMap<Label, CVarId>,
}

impl CpsSystem {
    fn derive(prog: &CpsProgram) -> CpsSystem {
        let mut sys = CpsSystem {
            seeds: Vec::new(),
            subs: Vec::new(),
            rets: Vec::new(),
            calls: Vec::new(),
            lam: HashMap::new(),
            cont_var: HashMap::new(),
        };
        for (l, r) in prog.lambdas() {
            sys.lam.insert(l, (r.param_id, r.k_id));
        }
        for (l, r) in prog.conts() {
            sys.cont_var.insert(l, r.var_id);
        }
        sys.walk(prog.root(), prog);
        let k0 = prog.kont_var_id(prog.top_k()).expect("top k indexed");
        sys.seeds.push((CpsFlow::Kont(AbsKont::Stop), k0));
        sys
    }

    fn constraints(&self) -> usize {
        self.seeds.len() + self.subs.len() + self.rets.len() + self.calls.len()
    }

    fn op_of(&self, w: &CVal, prog: &CpsProgram) -> Op {
        match &w.kind {
            CValKind::Num(_) => Op::None,
            CValKind::Add1K => Op::Const(CpsFlow::Clo(AbsClo::Inc)),
            CValKind::Sub1K => Op::Const(CpsFlow::Clo(AbsClo::Dec)),
            CValKind::Lam { .. } => Op::Const(CpsFlow::Clo(AbsClo::Lam(w.label))),
            CValKind::Var(x) => Op::Var(prog.user_var_id(x).expect("indexed variable")),
        }
    }

    fn enter_val(&mut self, v: &CVal, prog: &CpsProgram) {
        if let CValKind::Lam { body, .. } = &v.kind {
            self.walk(body, prog);
        }
    }

    fn walk(&mut self, t: &CTerm, prog: &CpsProgram) {
        match &t.kind {
            CTermKind::Ret(k, w) => {
                let kid = prog.kont_var_id(k).expect("indexed k");
                let op = self.op_of(w, prog);
                self.rets.push((kid, op, t.label));
                self.enter_val(w, prog);
            }
            CTermKind::Let { var, val, body } => {
                let x = prog.user_var_id(var).expect("indexed variable");
                match self.op_of(val, prog) {
                    Op::None => {}
                    Op::Const(c) => self.seeds.push((c, x)),
                    Op::Var(y) => self.subs.push((y, x)),
                }
                self.enter_val(val, prog);
                self.walk(body, prog);
            }
            CTermKind::Call { f, arg, cont } => {
                let fo = self.op_of(f, prog);
                let ao = self.op_of(arg, prog);
                self.calls.push((fo, ao, cont.label, t.label));
                self.enter_val(f, prog);
                self.enter_val(arg, prog);
                self.walk(&cont.body, prog);
            }
            CTermKind::LetK {
                k,
                cont,
                then_,
                else_,
                ..
            } => {
                let kid = prog.kont_var_id(k).expect("indexed k");
                self.seeds
                    .push((CpsFlow::Kont(AbsKont::Co(cont.label)), kid));
                self.walk(&cont.body, prog);
                self.walk(then_, prog);
                self.walk(else_, prog);
            }
            CTermKind::Loop { cont } => self.walk(&cont.body, prog),
        }
    }
}

/// The claimed or recomputed CPS store.
struct CpsStore {
    vars: Vec<BTreeSet<CpsFlow>>,
    returns: BTreeMap<Label, BTreeSet<AbsKont>>,
    calls: BTreeMap<Label, BTreeSet<AbsClo>>,
}

impl CpsStore {
    fn op_flows(&self, op: Op) -> Vec<CpsFlow> {
        match op {
            Op::None => Vec::new(),
            Op::Const(c) => vec![c],
            Op::Var(v) => self.vars[v.index()].iter().copied().collect(),
        }
    }
}

/// Least model of the re-derived CPS system (naive Kleene iteration).
fn cps_least_model(sys: &CpsSystem, num_vars: usize) -> CpsStore {
    let mut st = CpsStore {
        vars: vec![BTreeSet::new(); num_vars],
        returns: BTreeMap::new(),
        calls: BTreeMap::new(),
    };
    for &(c, dst) in &sys.seeds {
        st.vars[dst.index()].insert(c);
    }
    loop {
        let mut changed = false;
        for &(src, dst) in &sys.subs {
            let flows: Vec<CpsFlow> = st.vars[src.index()].iter().copied().collect();
            for v in flows {
                changed |= st.vars[dst.index()].insert(v);
            }
        }
        for &(k, w, site) in &sys.rets {
            let ks: Vec<AbsKont> = st.vars[k.index()]
                .iter()
                .filter_map(|v| match v {
                    CpsFlow::Kont(kk) => Some(*kk),
                    CpsFlow::Clo(_) => None,
                })
                .collect();
            for kk in ks {
                changed |= st.returns.entry(site).or_default().insert(kk);
                if let AbsKont::Co(l) = kk {
                    let binder = sys.cont_var[&l];
                    let flows = st.op_flows(w);
                    for v in flows {
                        changed |= st.vars[binder.index()].insert(v);
                    }
                }
            }
        }
        for &(f, arg, cont, site) in &sys.calls {
            let callees: Vec<AbsClo> = st
                .op_flows(f)
                .into_iter()
                .filter_map(|v| match v {
                    CpsFlow::Clo(c) => Some(c),
                    CpsFlow::Kont(_) => None,
                })
                .collect();
            for clo in callees {
                changed |= st.calls.entry(site).or_default().insert(clo);
                if let AbsClo::Lam(l) = clo {
                    let (param, kvar) = sys.lam[&l];
                    let flows = st.op_flows(arg);
                    for v in flows {
                        changed |= st.vars[param.index()].insert(v);
                    }
                    changed |= st.vars[kvar.index()].insert(CpsFlow::Kont(AbsKont::Co(cont)));
                }
            }
        }
        if !changed {
            break;
        }
    }
    st
}

/// Closure scan of a claimed CPS store; first violated constraint, if any.
fn cps_closure_counterexample(sys: &CpsSystem, claim: &CpsStore) -> Option<Refutation> {
    for &(c, dst) in &sys.seeds {
        if !claim.vars[dst.index()].contains(&c) {
            return Some(Refutation::Unclosed {
                edge: format!("seed ⊆ v{}", dst.index()),
                missing: format!("{c:?} ∈ v{}", dst.index()),
            });
        }
    }
    for &(src, dst) in &sys.subs {
        if let Some(v) = claim.vars[src.index()]
            .difference(&claim.vars[dst.index()])
            .next()
        {
            return Some(Refutation::Unclosed {
                edge: format!("v{} ⊆ v{}", src.index(), dst.index()),
                missing: format!("{v:?} ∈ v{}", dst.index()),
            });
        }
    }
    for &(k, w, site) in &sys.rets {
        for v in claim.vars[k.index()].iter() {
            let CpsFlow::Kont(kk) = v else { continue };
            if !claim.returns.get(&site).is_some_and(|s| s.contains(kk)) {
                return Some(Refutation::Unclosed {
                    edge: format!("ret@{site}"),
                    missing: format!("{kk:?} ∈ returns[{site}]"),
                });
            }
            if let AbsKont::Co(l) = kk {
                let binder = sys.cont_var[l];
                for f in claim.op_flows(w) {
                    if !claim.vars[binder.index()].contains(&f) {
                        return Some(Refutation::Unclosed {
                            edge: format!("ret@{site} ⊆ v{}", binder.index()),
                            missing: format!("{f:?} ∈ v{}", binder.index()),
                        });
                    }
                }
            }
        }
    }
    for &(f, arg, cont, site) in &sys.calls {
        for v in claim.op_flows(f) {
            let CpsFlow::Clo(clo) = v else { continue };
            if !claim.calls.get(&site).is_some_and(|s| s.contains(&clo)) {
                return Some(Refutation::Unclosed {
                    edge: format!("call@{site}"),
                    missing: format!("{clo:?} ∈ calls[{site}]"),
                });
            }
            if let AbsClo::Lam(l) = clo {
                let (param, kvar) = sys.lam[&l];
                for a in claim.op_flows(arg) {
                    if !claim.vars[param.index()].contains(&a) {
                        return Some(Refutation::Unclosed {
                            edge: format!("call@{site} arg ⊆ v{}", param.index()),
                            missing: format!("{a:?} ∈ v{}", param.index()),
                        });
                    }
                }
                let kc = CpsFlow::Kont(AbsKont::Co(cont));
                if !claim.vars[kvar.index()].contains(&kc) {
                    return Some(Refutation::Unclosed {
                        edge: format!("call@{site} cont ⊆ v{}", kvar.index()),
                        missing: format!("{kc:?} ∈ v{}", kvar.index()),
                    });
                }
            }
        }
    }
    None
}

/// Shared tail of the CPS-shaped certifiers: claim closed, compare against
/// the recomputed least model; any residual difference is unsupported.
fn cps_store_excess(claim: &CpsStore, lfp: &CpsStore) -> Option<Refutation> {
    for (i, (c, d)) in claim.vars.iter().zip(&lfp.vars).enumerate() {
        if let Some(v) = c.difference(d).next() {
            return Some(Refutation::Unsupported {
                fact: format!("{v:?} ∈ v{i}"),
            });
        }
    }
    for (l, c) in &claim.returns {
        let empty = BTreeSet::new();
        let d = lfp.returns.get(l).unwrap_or(&empty);
        if let Some(v) = c.difference(d).next() {
            return Some(Refutation::Unsupported {
                fact: format!("{v:?} ∈ returns[{l}]"),
            });
        }
        if c.is_empty() {
            return Some(Refutation::Unsupported {
                fact: format!("empty returns[{l}] entry"),
            });
        }
    }
    for (l, c) in &claim.calls {
        let d = lfp.calls.get(l).unwrap_or(&EMPTY_CLO);
        if let Some(v) = c.difference(d).next() {
            return Some(Refutation::Unsupported {
                fact: format!("{v:?} ∈ calls[{l}]"),
            });
        }
        if c.is_empty() {
            return Some(Refutation::Unsupported {
                fact: format!("empty calls[{l}] entry"),
            });
        }
    }
    if claim.returns.len() != lfp.returns.len() || claim.calls.len() != lfp.calls.len() {
        return Some(Refutation::Shape {
            detail: format!(
                "{}×{} call/return sites claimed, least model has {}×{}",
                claim.calls.len(),
                claim.returns.len(),
                lfp.calls.len(),
                lfp.returns.len()
            ),
        });
    }
    None
}

fn cps_store_facts(st: &CpsStore) -> usize {
    st.vars.iter().map(BTreeSet::len).sum::<usize>()
        + st.returns.values().map(BTreeSet::len).sum::<usize>()
        + st.calls.values().map(BTreeSet::len).sum::<usize>()
}

/// Certifies a CPS-level 0CFA answer against `prog`.
pub fn certify_cfa_cps(
    prog: &CpsProgram,
    claimed: &CpsCfaResult,
) -> Result<Certificate, Refutation> {
    if claimed.vars.len() != prog.num_vars() {
        return Err(Refutation::Shape {
            detail: format!(
                "claimed {} variables, program has {}",
                claimed.vars.len(),
                prog.num_vars()
            ),
        });
    }
    let sys = CpsSystem::derive(prog);
    let claim = CpsStore {
        vars: claimed.vars.iter().map(|s| (**s).clone()).collect(),
        returns: claimed
            .returns
            .iter()
            .map(|(l, s)| (l, s.clone()))
            .collect(),
        calls: claimed.calls.iter().map(|(l, s)| (l, s.clone())).collect(),
    };
    if let Some(r) = cps_closure_counterexample(&sys, &claim) {
        return Err(r);
    }
    let lfp = cps_least_model(&sys, prog.num_vars());
    if let Some(r) = cps_store_excess(&claim, &lfp) {
        return Err(r);
    }
    Ok(Certificate {
        kind: AnalysisKind::CfaCps,
        constraints: sys.constraints(),
        facts: cps_store_facts(&claim),
    })
}

// ---------------------------------------------------------------------------
// Pushdown CFA
// ---------------------------------------------------------------------------

/// One frame-return site of a user λ, re-derived.
#[derive(Clone, Copy)]
struct RTpl {
    site: Label,
    w: Op,
    own_param: bool,
}

/// The pushdown constraint system: classification of every return site plus
/// the static flow edges, re-derived with an independent frame-carrying
/// walk.
struct PdSystem {
    seeds: Vec<(CpsFlow, CVarId)>,
    subs: Vec<(CVarId, CVarId)>,
    /// `(k W)` under a `letk` join: operand flows to the join binder.
    joins: Vec<(Op, Label)>,
    calls: Vec<(Op, Op, Label, Label)>,
    templates: HashMap<Label, Vec<RTpl>>,
    /// `letk` continuation variable → its join continuation label.
    join_of: HashMap<usize, Label>,
    halt_returns: Vec<Label>,
    join_returns: Vec<(Label, Label)>,
    lam: HashMap<Label, (CVarId, CVarId)>,
    cont_var: HashMap<Label, CVarId>,
    top_k: CVarId,
}

/// The enclosing user λ during the pushdown walk.
#[derive(Clone, Copy)]
struct PdFrame {
    label: Label,
    param: CVarId,
    k: CVarId,
}

impl PdSystem {
    fn derive(prog: &CpsProgram) -> Result<PdSystem, Refutation> {
        let top_k = prog.kont_var_id(prog.top_k()).expect("top k indexed");
        let mut sys = PdSystem {
            seeds: Vec::new(),
            subs: Vec::new(),
            joins: Vec::new(),
            calls: Vec::new(),
            templates: HashMap::new(),
            join_of: HashMap::new(),
            halt_returns: Vec::new(),
            join_returns: Vec::new(),
            lam: HashMap::new(),
            cont_var: HashMap::new(),
            top_k,
        };
        let mut frames: HashMap<Label, PdFrame> = HashMap::new();
        for (l, r) in prog.lambdas() {
            sys.lam.insert(l, (r.param_id, r.k_id));
            frames.insert(
                l,
                PdFrame {
                    label: l,
                    param: r.param_id,
                    k: r.k_id,
                },
            );
        }
        for (l, r) in prog.conts() {
            sys.cont_var.insert(l, r.var_id);
        }
        sys.walk(prog.root(), None, prog, &frames)?;
        Ok(sys)
    }

    fn constraints(&self) -> usize {
        self.seeds.len()
            + self.subs.len()
            + self.joins.len()
            + self.calls.len()
            + self.halt_returns.len()
            + self.join_returns.len()
    }

    fn op_of(&self, w: &CVal, prog: &CpsProgram) -> Op {
        match &w.kind {
            CValKind::Num(_) => Op::None,
            CValKind::Add1K => Op::Const(CpsFlow::Clo(AbsClo::Inc)),
            CValKind::Sub1K => Op::Const(CpsFlow::Clo(AbsClo::Dec)),
            CValKind::Lam { .. } => Op::Const(CpsFlow::Clo(AbsClo::Lam(w.label))),
            CValKind::Var(x) => Op::Var(prog.user_var_id(x).expect("indexed variable")),
        }
    }

    fn walk(
        &mut self,
        t: &CTerm,
        frame: Option<PdFrame>,
        prog: &CpsProgram,
        frames: &HashMap<Label, PdFrame>,
    ) -> Result<(), Refutation> {
        match &t.kind {
            CTermKind::Ret(k, w) => {
                let kid = prog.kont_var_id(k).expect("indexed k");
                let wf = self.op_of(w, prog);
                match frame {
                    Some(f) if kid == f.k => {
                        self.templates.entry(f.label).or_default().push(RTpl {
                            site: t.label,
                            w: wf,
                            own_param: matches!(wf, Op::Var(v) if v == f.param),
                        });
                    }
                    _ if kid == self.top_k => self.halt_returns.push(t.label),
                    _ => {
                        let cont =
                            *self
                                .join_of
                                .get(&kid.index())
                                .ok_or_else(|| Refutation::Shape {
                                    detail: format!(
                                        "return@{} names a continuation that is neither \
                                     frame, join, nor halt",
                                        t.label
                                    ),
                                })?;
                        self.join_returns.push((t.label, cont));
                        self.joins.push((wf, cont));
                    }
                }
                self.enter_val(w, prog, frames)?;
            }
            CTermKind::Let { var, val, body } => {
                let x = prog.user_var_id(var).expect("indexed variable");
                match self.op_of(val, prog) {
                    Op::None => {}
                    Op::Const(c) => self.seeds.push((c, x)),
                    Op::Var(y) => self.subs.push((y, x)),
                }
                self.enter_val(val, prog, frames)?;
                self.walk(body, frame, prog, frames)?;
            }
            CTermKind::Call { f, arg, cont } => {
                let fo = self.op_of(f, prog);
                let ao = self.op_of(arg, prog);
                self.calls.push((fo, ao, cont.label, t.label));
                self.enter_val(f, prog, frames)?;
                self.enter_val(arg, prog, frames)?;
                // The literal continuation body runs in the caller's frame.
                self.walk(&cont.body, frame, prog, frames)?;
            }
            CTermKind::LetK {
                k,
                cont,
                then_,
                else_,
                ..
            } => {
                let kid = prog.kont_var_id(k).expect("indexed k");
                self.join_of.insert(kid.index(), cont.label);
                self.walk(&cont.body, frame, prog, frames)?;
                self.walk(then_, frame, prog, frames)?;
                self.walk(else_, frame, prog, frames)?;
            }
            CTermKind::Loop { cont } => self.walk(&cont.body, frame, prog, frames)?,
        }
        Ok(())
    }

    fn enter_val(
        &mut self,
        v: &CVal,
        prog: &CpsProgram,
        frames: &HashMap<Label, PdFrame>,
    ) -> Result<(), Refutation> {
        if let CValKind::Lam { body, .. } = &v.kind {
            let f = frames[&v.label];
            self.walk(body, Some(f), prog, frames)?;
        }
        Ok(())
    }
}

/// The pushdown store: the CPS store plus the matched-return witnesses.
struct PdStore {
    st: CpsStore,
    matched: BTreeSet<MatchedReturn>,
}

/// Least model of the re-derived pushdown system: Kleene iteration over the
/// static edges and per-call template instantiation, then the static
/// continuation-variable fill the analyzer performs after its solve.
fn pd_least_model(sys: &PdSystem, num_vars: usize) -> PdStore {
    let mut st = CpsStore {
        vars: vec![BTreeSet::new(); num_vars],
        returns: BTreeMap::new(),
        calls: BTreeMap::new(),
    };
    let mut matched: BTreeSet<MatchedReturn> = BTreeSet::new();
    // Callee λ → discovered caller continuations (for the post-solve fill).
    let mut callers: BTreeMap<Label, BTreeSet<Label>> = BTreeMap::new();
    for &(c, dst) in &sys.seeds {
        st.vars[dst.index()].insert(c);
    }
    // Halt and join returns are static, reachability-blind facts.
    for &site in &sys.halt_returns {
        st.returns.entry(site).or_default().insert(AbsKont::Stop);
    }
    for &(site, cont) in &sys.join_returns {
        st.returns
            .entry(site)
            .or_default()
            .insert(AbsKont::Co(cont));
    }
    static NO_TPL: Vec<RTpl> = Vec::new();
    loop {
        let mut changed = false;
        for &(src, dst) in &sys.subs {
            let flows: Vec<CpsFlow> = st.vars[src.index()].iter().copied().collect();
            for v in flows {
                changed |= st.vars[dst.index()].insert(v);
            }
        }
        for &(w, cont) in &sys.joins {
            let binder = sys.cont_var[&cont];
            let flows = st.op_flows(w);
            for v in flows {
                changed |= st.vars[binder.index()].insert(v);
            }
        }
        for &(f, arg, cont, site) in &sys.calls {
            let callees: Vec<AbsClo> = st
                .op_flows(f)
                .into_iter()
                .filter_map(|v| match v {
                    CpsFlow::Clo(c) => Some(c),
                    CpsFlow::Kont(_) => None,
                })
                .collect();
            for clo in callees {
                changed |= st.calls.entry(site).or_default().insert(clo);
                if let AbsClo::Lam(l) = clo {
                    let (param, _kvar) = sys.lam[&l];
                    let flows = st.op_flows(arg);
                    for v in flows {
                        changed |= st.vars[param.index()].insert(v);
                    }
                    changed |= callers.entry(l).or_default().insert(cont);
                    let binder = sys.cont_var[&cont];
                    for tpl in sys.templates.get(&l).unwrap_or(&NO_TPL) {
                        changed |= st
                            .returns
                            .entry(tpl.site)
                            .or_default()
                            .insert(AbsKont::Co(cont));
                        changed |= matched.insert(MatchedReturn {
                            ret_site: tpl.site,
                            callee: l,
                            call_site: site,
                            cont,
                        });
                        let w = if tpl.own_param { arg } else { tpl.w };
                        let flows = st.op_flows(w);
                        for v in flows {
                            changed |= st.vars[binder.index()].insert(v);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Post-fixpoint continuation-variable fill, exactly as the analyzer
    // commits it: matched frames into each λ's `k`, the static join
    // continuation into each `letk` binder, `stop` into the top `k`.
    for (l, conts) in &callers {
        let (_param, kvar) = sys.lam[l];
        for &c in conts {
            st.vars[kvar.index()].insert(CpsFlow::Kont(AbsKont::Co(c)));
        }
    }
    for (&kvar, &cont) in &sys.join_of {
        st.vars[kvar].insert(CpsFlow::Kont(AbsKont::Co(cont)));
    }
    st.vars[sys.top_k.index()].insert(CpsFlow::Kont(AbsKont::Stop));
    PdStore { st, matched }
}

/// Closure scan of a claimed pushdown store; first violated constraint.
fn pd_closure_counterexample(sys: &PdSystem, claim: &PdStore) -> Option<Refutation> {
    let st = &claim.st;
    for &(c, dst) in &sys.seeds {
        if !st.vars[dst.index()].contains(&c) {
            return Some(Refutation::Unclosed {
                edge: format!("seed ⊆ v{}", dst.index()),
                missing: format!("{c:?} ∈ v{}", dst.index()),
            });
        }
    }
    for &(src, dst) in &sys.subs {
        if let Some(v) = st.vars[src.index()]
            .difference(&st.vars[dst.index()])
            .next()
        {
            return Some(Refutation::Unclosed {
                edge: format!("v{} ⊆ v{}", src.index(), dst.index()),
                missing: format!("{v:?} ∈ v{}", dst.index()),
            });
        }
    }
    for &site in &sys.halt_returns {
        if !st
            .returns
            .get(&site)
            .is_some_and(|s| s.contains(&AbsKont::Stop))
        {
            return Some(Refutation::Unclosed {
                edge: format!("halt return@{site}"),
                missing: format!("stop ∈ returns[{site}]"),
            });
        }
    }
    for &(site, cont) in &sys.join_returns {
        if !st
            .returns
            .get(&site)
            .is_some_and(|s| s.contains(&AbsKont::Co(cont)))
        {
            return Some(Refutation::Unclosed {
                edge: format!("join return@{site}"),
                missing: format!("co@{cont} ∈ returns[{site}]"),
            });
        }
    }
    for &(w, cont) in &sys.joins {
        let binder = sys.cont_var[&cont];
        for v in st.op_flows(w) {
            if !st.vars[binder.index()].contains(&v) {
                return Some(Refutation::Unclosed {
                    edge: format!("join ⊆ v{}", binder.index()),
                    missing: format!("{v:?} ∈ v{}", binder.index()),
                });
            }
        }
    }
    static NO_TPL: Vec<RTpl> = Vec::new();
    for &(f, arg, cont, site) in &sys.calls {
        for v in st.op_flows(f) {
            let CpsFlow::Clo(clo) = v else { continue };
            if !st.calls.get(&site).is_some_and(|s| s.contains(&clo)) {
                return Some(Refutation::Unclosed {
                    edge: format!("call@{site}"),
                    missing: format!("{clo:?} ∈ calls[{site}]"),
                });
            }
            let AbsClo::Lam(l) = clo else { continue };
            let (param, kvar) = sys.lam[&l];
            for a in st.op_flows(arg) {
                if !st.vars[param.index()].contains(&a) {
                    return Some(Refutation::Unclosed {
                        edge: format!("call@{site} arg ⊆ v{}", param.index()),
                        missing: format!("{a:?} ∈ v{}", param.index()),
                    });
                }
            }
            // Matched-call fill: the caller's frame must be visible in the
            // callee's k slot.
            let kc = CpsFlow::Kont(AbsKont::Co(cont));
            if !st.vars[kvar.index()].contains(&kc) {
                return Some(Refutation::Unclosed {
                    edge: format!("call@{site} frame ⊆ v{}", kvar.index()),
                    missing: format!("{kc:?} ∈ v{}", kvar.index()),
                });
            }
            let binder = sys.cont_var[&cont];
            for tpl in sys.templates.get(&l).unwrap_or(&NO_TPL) {
                if !st
                    .returns
                    .get(&tpl.site)
                    .is_some_and(|s| s.contains(&AbsKont::Co(cont)))
                {
                    return Some(Refutation::Unclosed {
                        edge: format!("summary {l}@{site}"),
                        missing: format!("co@{cont} ∈ returns[{}]", tpl.site),
                    });
                }
                let m = MatchedReturn {
                    ret_site: tpl.site,
                    callee: l,
                    call_site: site,
                    cont,
                };
                if !claim.matched.contains(&m) {
                    return Some(Refutation::Unclosed {
                        edge: format!("summary {l}@{site}"),
                        missing: format!("matched witness {m:?}"),
                    });
                }
                let w = if tpl.own_param { arg } else { tpl.w };
                for v in st.op_flows(w) {
                    if !st.vars[binder.index()].contains(&v) {
                        return Some(Refutation::Unclosed {
                            edge: format!("summary {l}@{site} ⊆ v{}", binder.index()),
                            missing: format!("{v:?} ∈ v{}", binder.index()),
                        });
                    }
                }
            }
        }
    }
    // Static fills.
    for (&kvar, &cont) in &sys.join_of {
        let kc = CpsFlow::Kont(AbsKont::Co(cont));
        if !st.vars[kvar].contains(&kc) {
            return Some(Refutation::Unclosed {
                edge: format!("letk fill ⊆ v{kvar}"),
                missing: format!("{kc:?} ∈ v{kvar}"),
            });
        }
    }
    if !st.vars[sys.top_k.index()].contains(&CpsFlow::Kont(AbsKont::Stop)) {
        return Some(Refutation::Unclosed {
            edge: format!("halt fill ⊆ v{}", sys.top_k.index()),
            missing: format!("stop ∈ v{}", sys.top_k.index()),
        });
    }
    None
}

/// Certifies a pushdown CFA answer against `prog`.
pub fn certify_pushdown(
    prog: &CpsProgram,
    claimed: &PushdownCfaResult,
) -> Result<Certificate, Refutation> {
    if claimed.vars.len() != prog.num_vars() {
        return Err(Refutation::Shape {
            detail: format!(
                "claimed {} variables, program has {}",
                claimed.vars.len(),
                prog.num_vars()
            ),
        });
    }
    let sys = PdSystem::derive(prog)?;
    let claim = PdStore {
        st: CpsStore {
            vars: claimed.vars.iter().map(|s| (**s).clone()).collect(),
            returns: claimed
                .returns
                .iter()
                .map(|(l, s)| (l, s.clone()))
                .collect(),
            calls: claimed.calls.iter().map(|(l, s)| (l, s.clone())).collect(),
        },
        matched: claimed.matched.clone(),
    };
    if let Some(r) = pd_closure_counterexample(&sys, &claim) {
        return Err(r);
    }
    let lfp = pd_least_model(&sys, prog.num_vars());
    if let Some(m) = claim.matched.difference(&lfp.matched).next() {
        return Err(Refutation::Unsupported {
            fact: format!("matched witness {m:?}"),
        });
    }
    if let Some(r) = cps_store_excess(&claim.st, &lfp.st) {
        return Err(r);
    }
    Ok(Certificate {
        kind: AnalysisKind::CfaPushdown,
        constraints: sys.constraints(),
        facts: cps_store_facts(&claim.st) + claim.matched.len(),
    })
}

// ---------------------------------------------------------------------------
// MFP over the first-order CFG
// ---------------------------------------------------------------------------

/// The checker's own transfer function — same abstract semantics as the
/// CFG's, re-implemented here so the solver's transfer is not in the
/// trusted base.
fn flat_transfer(stmt: Stmt, env: &[Flat]) -> Vec<Flat> {
    let mut out = env.to_vec();
    match stmt {
        Stmt::Const(x, n) => out[x.index()] = Flat::constant(n),
        Stmt::Copy(x, y) => out[x.index()] = env[y.index()],
        Stmt::Add1(x, y) => out[x.index()] = env[y.index()].add1(),
        Stmt::Sub1(x, y) => out[x.index()] = env[y.index()].sub1(),
        Stmt::Sum(x, y, z) => {
            let a = env[y.index()];
            let b = env[z.index()];
            out[x.index()] = match (a.as_const(), b.as_const()) {
                (Some(p), Some(q)) => Flat::constant(p + q),
                _ if a.is_bot() || b.is_bot() => Flat::bot(),
                _ => Flat::top(),
            };
        }
        Stmt::Havoc(x) => out[x.index()] = Flat::top(),
        Stmt::Nop => {}
    }
    out
}

fn flat_join(a: &mut [Flat], b: &[Flat]) -> bool {
    let mut changed = false;
    for (x, y) in a.iter_mut().zip(b) {
        let j = x.join(y);
        if j != *x {
            *x = j;
            changed = true;
        }
    }
    changed
}

/// Certifies an MFP constant-propagation summary against `prog`.
///
/// The CFG lowering is shared front end (like the parser); the transfer,
/// join, fixpoint loop, and defining-node summarization are re-implemented
/// here and iterated round-robin to the least fixpoint.
pub fn certify_mfp(
    prog: &AnfProgram,
    claimed: &DfSummary<Flat>,
) -> Result<Certificate, Refutation> {
    let cfg = Cfg::from_first_order(prog).map_err(|e| Refutation::Shape {
        detail: format!("program does not lower to a first-order CFG: {e:?}"),
    })?;
    let num_vars = cfg.bottom_env::<Flat>().len();
    if claimed.vars.len() != num_vars {
        return Err(Refutation::Shape {
            detail: format!(
                "claimed {} variables, CFG has {}",
                claimed.vars.len(),
                num_vars
            ),
        });
    }
    let init: Vec<Flat> = cfg.initial_env::<Flat>(prog);
    let nodes = cfg.nodes();
    let entry = cfg.entry().0;
    let mut outs: Vec<Vec<Flat>> = vec![vec![Flat::bot(); num_vars]; nodes.len()];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for s in &node.succs {
            preds[s.0].push(i);
        }
    }
    loop {
        let mut changed = false;
        for (i, node) in nodes.iter().enumerate() {
            let mut inn = if i == entry {
                init.clone()
            } else {
                vec![Flat::bot(); num_vars]
            };
            for &p in &preds[i] {
                flat_join(&mut inn, &outs[p]);
            }
            let out = flat_transfer(node.stmt, &inn);
            changed |= flat_join(&mut outs[i], &out);
        }
        if !changed {
            break;
        }
    }
    let mut vars = vec![Flat::bot(); num_vars];
    for (i, node) in nodes.iter().enumerate() {
        if let Some(x) = node.stmt.def() {
            vars[x.index()] = vars[x.index()].join(&outs[i][x.index()]);
        }
    }
    for (x, (c, d)) in claimed.vars.iter().zip(&vars).enumerate() {
        if c != d {
            return Err(if c.leq(d) {
                Refutation::Unclosed {
                    edge: format!("defs(v{x})"),
                    missing: format!("v{x} = {d:?} (claimed {c:?})"),
                }
            } else {
                Refutation::Unsupported {
                    fact: format!("v{x} = {c:?} (least model has {d:?})"),
                }
            });
        }
    }
    Ok(Certificate {
        kind: AnalysisKind::MfpFlat,
        constraints: nodes.len(),
        facts: num_vars,
    })
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Certifies any cached answer against the (already parsed) program it
/// claims to solve. CPS-level answers re-derive the CPS program through the
/// shared transform — the same front end the analyzers used.
pub fn certify_answer(prog: &AnfProgram, answer: &CachedAnswer) -> Result<Certificate, Refutation> {
    match answer {
        CachedAnswer::CfaSrc(s) => certify_cfa_src(prog, &s.to_result()),
        CachedAnswer::CfaCps(s) => {
            let cps = CpsProgram::from_anf(prog);
            certify_cfa_cps(&cps, &s.to_result())
        }
        CachedAnswer::CfaPushdown(s) => {
            let cps = CpsProgram::from_anf(prog);
            certify_pushdown(&cps, &s.to_result())
        }
        CachedAnswer::MfpFlat(s) => certify_mfp(prog, s),
    }
}

/// [`certify_answer`] from source text: parses, then certifies. A source
/// that no longer parses refutes as [`Refutation::Shape`] — the persisted
/// entry cannot belong to this program.
pub fn certify_source(source: &str, answer: &CachedAnswer) -> Result<Certificate, Refutation> {
    let prog = AnfProgram::parse(source).map_err(|e| Refutation::Shape {
        detail: format!("source does not parse: {e}"),
    })?;
    certify_answer(&prog, answer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::{zero_cfa, zero_cfa_cps};
    use crate::pushdown::pushdown_cfa;
    use std::rc::Rc;

    const PROGRAMS: &[&str] = &[
        "(let (f (lambda (x) x)) (f f))",
        "(let (id (lambda (x) x)) (let (a (id add1)) (let (b (id 1)) (a b))))",
        "(let (f (lambda (x) (x x))) (f (lambda (y) y)))",
        "(let (c (if0 0 1 2)) (add1 c))",
        "(let (g (lambda (x) (let (h (lambda (y) x)) h))) (let (k (g 1)) (k 2)))",
        "(let (x (loop)) (if0 x (add1 x) (sub1 x)))",
    ];

    #[test]
    fn src_answers_certify() {
        for src in PROGRAMS {
            let p = AnfProgram::parse(src).unwrap();
            let r = zero_cfa(&p).unwrap();
            let cert = certify_cfa_src(&p, &r).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(cert.kind, AnalysisKind::CfaSrc);
            assert!(cert.constraints > 0);
        }
    }

    #[test]
    fn cps_answers_certify() {
        for src in PROGRAMS {
            let p = AnfProgram::parse(src).unwrap();
            let c = CpsProgram::from_anf(&p);
            let r = zero_cfa_cps(&c).unwrap();
            certify_cfa_cps(&c, &r).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn pushdown_answers_certify() {
        for src in PROGRAMS {
            let p = AnfProgram::parse(src).unwrap();
            let c = CpsProgram::from_anf(&p);
            let r = pushdown_cfa(&c).unwrap();
            certify_pushdown(&c, &r).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn mfp_answers_certify() {
        for src in ["(let (x 1) (add1 x))", "(let (c (if0 0 1 2)) (add1 c))"] {
            let p = AnfProgram::parse(src).unwrap();
            let cfg = Cfg::from_first_order(&p).unwrap();
            let s = cfg.solve_mfp::<Flat>(cfg.initial_env(&p)).unwrap();
            certify_mfp(&p, &s).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn added_fact_refutes_as_unsupported_even_when_self_justified() {
        // `(f f)` wires x ⊆ x via the self-application: an extra closure in
        // x stays closed under every edge, so a pure closure check would
        // accept it. The least-model comparison refutes it.
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let mut r = zero_cfa(&p).unwrap();
        let x = p.var_named("x").unwrap();
        let mut poisoned = (*r.vars[x.index()]).clone();
        poisoned.insert(AbsClo::Inc);
        r.vars[x.index()] = Rc::new(poisoned);
        let err = certify_cfa_src(&p, &r).unwrap_err();
        assert!(
            matches!(
                err,
                Refutation::Unclosed { .. } | Refutation::Unsupported { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn removed_fact_refutes_with_counterexample_edge() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let mut r = zero_cfa(&p).unwrap();
        let f = p.var_named("f").unwrap();
        r.vars[f.index()] = Rc::new(BTreeSet::new());
        match certify_cfa_src(&p, &r).unwrap_err() {
            Refutation::Unclosed { edge, missing } => {
                assert!(!edge.is_empty() && !missing.is_empty());
            }
            other => panic!("expected Unclosed, got {other}"),
        }
    }

    #[test]
    fn dropped_call_edge_refutes() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let mut r = zero_cfa(&p).unwrap();
        let mut calls = (*r.calls).clone();
        let site = calls.keys().next().unwrap();
        calls.insert(site, BTreeSet::new());
        r.calls = Rc::new(calls);
        assert!(certify_cfa_src(&p, &r).is_err());
    }

    #[test]
    fn wrong_shape_refutes() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let mut r = zero_cfa(&p).unwrap();
        r.vars.pop();
        assert!(matches!(
            certify_cfa_src(&p, &r).unwrap_err(),
            Refutation::Shape { .. }
        ));
    }

    #[test]
    fn mutated_mfp_summary_refutes_both_directions() {
        let p = AnfProgram::parse("(let (x 1) (add1 x))").unwrap();
        let cfg = Cfg::from_first_order(&p).unwrap();
        let s = cfg.solve_mfp::<Flat>(cfg.initial_env(&p)).unwrap();
        for (i, v) in s.vars.iter().enumerate() {
            let mut up = s.clone();
            up.vars[i] = Flat::top();
            let mut down = s.clone();
            down.vars[i] = Flat::bot();
            if *v != Flat::top() {
                assert!(certify_mfp(&p, &up).is_err(), "⊤ at v{i} accepted");
            }
            if *v != Flat::bot() {
                assert!(certify_mfp(&p, &down).is_err(), "⊥ at v{i} accepted");
            }
        }
    }

    #[test]
    fn certify_answer_dispatches_all_kinds() {
        let src = "(let (f (lambda (x) x)) (f f))";
        let p = AnfProgram::parse(src).unwrap();
        let r = zero_cfa(&p).unwrap();
        let ans = CachedAnswer::CfaSrc(crate::cache::SendCfa::from_result(&r));
        assert!(certify_answer(&p, &ans).is_ok());
        assert!(certify_source(src, &ans).is_ok());
        assert!(certify_source("(let (y 1) (add1 y))", &ans).is_err());
    }
}
