//! Executable correctness criterion (§4.3): "if the variable x gets bound
//! to 5 along any actual execution path, the abstract collecting
//! interpreter should associate an abstract value u ⊒ (5, ⊥) with x."
//!
//! These helpers abstract the *concrete* stores produced by the
//! interpreters of `cpsdfa-interp` and check containment in an abstract
//! result; the workspace property tests run them over random programs for
//! all three analyzer/interpreter pairs.

use crate::absval::{AbsClo, AbsKont, AbsStore, CAbsStore};
use crate::domain::NumDomain;
use cpsdfa_anf::AnfProgram;
use cpsdfa_cps::{CpsProgram, VarKey};
use cpsdfa_interp::{CRVal, DVal, Store};

/// A violation of the §4.3 criterion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsound {
    /// The variable whose concrete binding escaped the abstract value.
    pub var: String,
    /// Description of the concrete value.
    pub concrete: String,
    /// Description of the abstract value that failed to contain it.
    pub abstract_: String,
}

impl std::fmt::Display for Unsound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsound at `{}`: concrete {} ⋢ abstract {}",
            self.var, self.concrete, self.abstract_
        )
    }
}

/// Checks a concrete run of the direct (or semantic-CPS) interpreter
/// against a direct/semantic-CPS abstract store. Every location allocated
/// for a variable `x` must hold a value abstracted by `σ̂(x)`.
pub fn check_direct<D: NumDomain>(
    prog: &AnfProgram,
    concrete: &Store<DVal<'_>>,
    abs: &AbsStore<D>,
) -> Result<(), Unsound> {
    for (x, v) in concrete.iter() {
        let Some(id) = prog.var_id(x) else { continue };
        let a = abs.get(id);
        let ok = match v {
            DVal::Num(n) => a.num.contains(*n),
            DVal::Inc => a.clos.contains(&AbsClo::Inc),
            DVal::Dec => a.clos.contains(&AbsClo::Dec),
            DVal::Clo { label, .. } => a.clos.contains(&AbsClo::Lam(*label)),
        };
        if !ok {
            return Err(Unsound {
                var: x.to_string(),
                concrete: v.to_string(),
                abstract_: a.to_string(),
            });
        }
    }
    Ok(())
}

/// Checks a concrete run of the syntactic-CPS interpreter against a
/// syntactic-CPS abstract store (both namespaces, including continuation
/// values).
pub fn check_syncps<D: NumDomain>(
    prog: &CpsProgram,
    concrete: &Store<CRVal<'_>, VarKey>,
    abs: &CAbsStore<D>,
) -> Result<(), Unsound> {
    for (key, v) in concrete.iter() {
        let Some(id) = prog.var_id(key) else { continue };
        let a = abs.get(id);
        let ok = match v {
            CRVal::Num(n) => a.num.contains(*n),
            CRVal::IncK => a.clos.contains(&AbsClo::Inc),
            CRVal::DecK => a.clos.contains(&AbsClo::Dec),
            CRVal::Clo { label, .. } => a.clos.contains(&AbsClo::Lam(*label)),
            CRVal::Co { label, .. } => a.konts.contains(&AbsKont::Co(*label)),
            CRVal::Stop => a.konts.contains(&AbsKont::Stop),
        };
        if !ok {
            return Err(Unsound {
                var: key.to_string(),
                concrete: v.to_string(),
                abstract_: a.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectAnalyzer;
    use crate::domain::{Flat, PowerSet};
    use crate::semcps::SemCpsAnalyzer;
    use crate::syncps::SynCpsAnalyzer;
    use cpsdfa_interp::{run_direct, run_semcps, run_syncps, Fuel};

    const SAMPLES: &[&str] = &[
        "(let (f (lambda (x) (add1 x))) (f (f 0)))",
        "(let (a (if0 0 1 2)) (add1 a))",
        "(let (f (lambda (x) (if0 x 10 20))) (let (a (f 0)) (let (b (f 3)) b)))",
        "(let (g (lambda (h) (h 3))) (g (lambda (y) (add1 y))))",
        "(lambda (x) x)",
    ];

    /// Parses one corpus sample, naming it on failure.
    fn parse(src: &str) -> AnfProgram {
        AnfProgram::parse(src).unwrap_or_else(|e| panic!("parse failed on {src:?}: {e}"))
    }

    #[test]
    fn direct_analysis_covers_direct_runs() {
        for src in SAMPLES {
            let p = parse(src);
            let conc = run_direct(&p, &[], Fuel::default())
                .unwrap_or_else(|e| panic!("concrete direct run failed on {src:?}: {e}"));
            let abs = DirectAnalyzer::<Flat>::new(&p)
                .analyze()
                .unwrap_or_else(|e| panic!("direct analysis failed on {src:?}: {e}"));
            check_direct(&p, &conc.store, &abs.store).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn semcps_analysis_covers_semcps_runs() {
        for src in SAMPLES {
            let p = parse(src);
            let conc = run_semcps(&p, &[], Fuel::default())
                .unwrap_or_else(|e| panic!("concrete semantic-CPS run failed on {src:?}: {e}"));
            let abs = SemCpsAnalyzer::<PowerSet<8>>::new(&p)
                .analyze()
                .unwrap_or_else(|e| panic!("semantic-CPS analysis failed on {src:?}: {e}"));
            check_direct(&p, &conc.store, &abs.store).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn syncps_analysis_covers_syncps_runs() {
        for src in SAMPLES {
            let p = parse(src);
            let c = CpsProgram::from_anf(&p);
            let conc = run_syncps(&c, &[], Fuel::default())
                .unwrap_or_else(|e| panic!("concrete syntactic-CPS run failed on {src:?}: {e}"));
            let abs = SynCpsAnalyzer::<Flat>::new(&c)
                .analyze()
                .unwrap_or_else(|e| panic!("syntactic-CPS analysis failed on {src:?}: {e}"));
            check_syncps(&c, &conc.store, &abs.store).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn violations_are_reported() {
        let src = "(let (a 1) a)";
        let p = parse(src);
        let conc = run_direct(&p, &[], Fuel::default())
            .unwrap_or_else(|e| panic!("concrete direct run failed on {src:?}: {e}"));
        // An all-⊥ "abstract result" cannot cover the run.
        let bogus: AbsStore<Flat> = AbsStore::bottom(p.num_vars());
        let err = check_direct(&p, &conc.store, &bogus).unwrap_err();
        assert_eq!(err.var, "a");
        assert!(err.to_string().contains("unsound"));
    }
}
