//! The three abstract collecting interpreters of Sabry & Felleisen (PLDI
//! 1994) — the paper's data flow analyzers — plus everything needed to
//! reproduce its formal results:
//!
//! * [`DirectAnalyzer`] — `M_e`, **Figure 4**: abstract interpretation of
//!   the direct semantics; merges at conditionals and call sites.
//! * [`SemCpsAnalyzer`] — `C_e`, **Figure 5**: abstract interpretation of
//!   the continuation semantics; duplicates the analysis of the current
//!   continuation along every path (more precise for non-distributive
//!   analyses, Theorem 5.4; exponential, §6.2; non-computable with `loop`).
//! * [`SynCpsAnalyzer`] — `M_s`, **Figure 6**: direct-style analysis of the
//!   CPS-transformed program; collects *sets* of continuations at `k`
//!   variables and so suffers §6.1's false returns (Theorem 5.1) while
//!   still gaining from duplication (Theorem 5.2) — the source and CPS
//!   analyses are *incomparable*.
//!
//! Supporting modules: a constraint-based [0CFA baseline](cfa) (Shivers
//! 1991) over both representations, the generic numeric [domains](domain) (§4.2), the
//! [abstract value/store lattices](absval) (§4.1), the [δₑ](deltae)
//! mapping and [`precision`] comparisons (§5), an executable
//! [soundness criterion](soundness) (§4.3), [distributivity](distrib)
//! checks (Definition 5.3), machine-independent [cost counters](stats) and
//! [flow logs](flow) (§6.1–6.2), a structured [trace/metrics layer](trace)
//! (spans, counters, timers; no-op / aggregating / JSONL sinks) that the
//! solvers and analyzers flush their counters into at phase boundaries,
//! the classical [MFP/MOP
//! substrate](mfp) for the Nielson / Kam–Ullman discussion (§6.2), and the
//! shared sparse [worklist fixpoint engine](solver) — semi-naïve: firings
//! consume per-watch *deltas*, not whole sets — with its [hash-consed set
//! arena and in-place set builders](setpool) that the 0CFA and MFP solvers
//! run on.
//!
//! # Quick tour: Theorem 5.1 in five lines
//!
//! ```
//! use cpsdfa_anf::AnfProgram;
//! use cpsdfa_core::{domain::{Flat, NumDomain}, DirectAnalyzer, SynCpsAnalyzer};
//! use cpsdfa_cps::CpsProgram;
//!
//! let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a1 (f 1)) (let (a2 (f 2)) a1)))")?;
//! let direct = DirectAnalyzer::<Flat>::new(&p).analyze()?;
//! let cps = CpsProgram::from_anf(&p);
//! let syn = SynCpsAnalyzer::<Flat>::new(&cps).analyze()?;
//! assert_eq!(direct.store.get(p.var_named("a1").unwrap()).num.as_const(), Some(1));
//! assert!(syn.store.get(cps.var_named("a1").unwrap()).num.is_top()); // false return
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod absval;
pub mod budget;
pub mod cache;
pub mod certify;
pub mod cfa;
pub mod deltae;
pub mod direct;
pub mod distrib;
pub mod domain;
pub mod faultinject;
pub mod flow;
pub mod fxhash;
pub mod govern;
pub mod incremental;
pub mod kcfa;
pub mod kernels;
pub mod labtab;
pub mod mfp;
pub mod precision;
pub mod pushdown;
pub mod report;
pub mod semcps;
pub mod setpool;
pub mod solver;
pub mod soundness;
pub mod stats;
pub mod syncps;
pub mod trace;

pub use absval::{AbsAnswer, AbsClo, AbsKont, AbsStore, AbsVal, CAbsAnswer, CAbsStore, CAbsVal};
pub use budget::{AnalysisBudget, AnalysisError};
pub use cache::{
    AnalysisKind, Ancestor, ArenaDigests, CacheKey, CacheStats, CachedAnswer, CachedFixpoint,
    FixpointCache, PersistDir, RecoveryReport, SendCfa, SendCpsCfa, SendPushdown,
};
pub use certify::{
    certify_answer, certify_cfa_cps, certify_cfa_src, certify_mfp, certify_pushdown,
    certify_source, Certificate, Refutation,
};
pub use direct::{DirectAnalyzer, DirectResult};
pub use faultinject::{FaultKind, FaultPlan, PersistFault, PersistFaultPlan};
pub use flow::FlowLog;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use govern::{
    CancelToken, CfaAnswer, Deadline, DegradationLadder, DegradationReport, GovernPolicy, Governed,
    RunGuard, RungAttempt, ValueAnswer,
};
pub use labtab::{LabelLookup, LabelTable};
pub use precision::PrecisionOrder;
pub use pushdown::{pushdown_cfa, MatchedReturn, PushdownCfaResult};
pub use semcps::{SemCpsAnalyzer, SemCpsResult};
pub use setpool::{DeltaNodes, PoolStats, SetBuilder, SetId, SetPool};
pub use solver::{worker_count, DeltaRange, SolverMode, WorklistSolver};
pub use stats::{AnalysisStats, SolverStats};
pub use syncps::{SynCpsAnalyzer, SynCpsResult};
pub use trace::{AggSink, JsonlSink, NoopSink, TraceSink};
