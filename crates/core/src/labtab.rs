//! Dense label-indexed tables.
//!
//! Labels are dense `u32`s assigned by the labeling passes (`0..label_count`
//! per program), so any per-program-point table can be a flat `Vec` indexed
//! by [`Label::index`] instead of a `HashMap`/`BTreeMap` keyed on labels.
//! [`LabelTable`] is that table: O(1) unhashed lookup, one allocation, and
//! iteration in label order — which coincides with the `BTreeMap` iteration
//! order the analyses used before, so downstream consumers observe the same
//! sequences.
//!
//! Equality compares *occupied entries only*: two tables built for programs
//! of different label counts (or grown lazily) are equal iff they hold the
//! same `(label, value)` pairs, exactly like the maps they replace.

use cpsdfa_syntax::Label;

/// A flat table mapping dense [`Label`]s to values.
#[derive(Clone)]
pub struct LabelTable<T> {
    slots: Vec<Option<T>>,
    occupied: usize,
}

impl<T> LabelTable<T> {
    /// An empty table pre-sized for labels `0..label_count`.
    pub fn new(label_count: u32) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(label_count as usize, || None);
        LabelTable { slots, occupied: 0 }
    }

    /// The value at `l`, if one was inserted.
    pub fn get(&self, l: Label) -> Option<&T> {
        self.slots.get(l.index() as usize).and_then(Option::as_ref)
    }

    /// Inserts `v` at `l`, returning the previous value if any. Grows the
    /// table when `l` exceeds the pre-sized capacity (hand-built programs).
    pub fn insert(&mut self, l: Label, v: T) -> Option<T> {
        let i = l.index() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(v);
        if old.is_none() {
            self.occupied += 1;
        }
        old
    }

    /// The value at `l`, inserting `T::default()` first if absent — the
    /// dense analogue of `map.entry(l).or_default()`.
    pub fn entry_or_default(&mut self, l: Label) -> &mut T
    where
        T: Default,
    {
        let i = l.index() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].is_none() {
            self.slots[i] = Some(T::default());
            self.occupied += 1;
        }
        self.slots[i].as_mut().expect("just filled")
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True if no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Occupied entries in ascending label order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (Label::new(i as u32), v)))
    }

    /// Occupied values in ascending label order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Occupied labels in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = Label> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| Label::new(i as u32)))
    }
}

impl<T: PartialEq> PartialEq for LabelTable<T> {
    fn eq(&self, other: &Self) -> bool {
        self.occupied == other.occupied && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for LabelTable<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for LabelTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<(Label, T)> for LabelTable<T> {
    fn from_iter<I: IntoIterator<Item = (Label, T)>>(iter: I) -> Self {
        let mut t = LabelTable::new(0);
        for (l, v) in iter {
            t.insert(l, v);
        }
        t
    }
}

/// A dense partial map from [`Label`] to `Copy` references (λ and
/// continuation tables): the flat replacement for the `HashMap<Label, …>`
/// lookups on the solvers' hot paths.
#[derive(Debug, Clone)]
pub struct LabelLookup<T: Copy> {
    slots: Vec<Option<T>>,
}

impl<T: Copy> LabelLookup<T> {
    /// Builds a lookup sized for `label_count` from `(label, value)` pairs.
    pub fn build(label_count: u32, entries: impl IntoIterator<Item = (Label, T)>) -> Self {
        let mut slots = vec![None; label_count as usize];
        for (l, v) in entries {
            let i = l.index() as usize;
            if i >= slots.len() {
                slots.resize(i + 1, None);
            }
            slots[i] = Some(v);
        }
        LabelLookup { slots }
    }

    /// The entry at `l`; panics (like `map[&l]`) if absent.
    pub fn expect(&self, l: Label) -> T {
        self.slots[l.index() as usize].expect("label not in lookup table")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_in_label_order_like_a_btreemap() {
        let mut t: LabelTable<&str> = LabelTable::new(8);
        t.insert(Label::new(5), "five");
        t.insert(Label::new(1), "one");
        t.insert(Label::new(3), "three");
        let keys: Vec<u32> = t.keys().map(Label::index).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        let vals: Vec<&&str> = t.values().collect();
        assert_eq!(vals, vec![&"one", &"three", &"five"]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a: LabelTable<u32> = LabelTable::new(4);
        let mut b: LabelTable<u32> = LabelTable::new(64);
        a.insert(Label::new(2), 7);
        b.insert(Label::new(2), 7);
        assert_eq!(a, b);
        b.insert(Label::new(3), 9);
        assert_ne!(a, b);
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut t: LabelTable<Vec<u32>> = LabelTable::new(2);
        t.entry_or_default(Label::new(1)).push(10);
        t.entry_or_default(Label::new(1)).push(11);
        assert_eq!(t.get(Label::new(1)), Some(&vec![10, 11]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_grows_past_presized_capacity() {
        let mut t: LabelTable<u8> = LabelTable::new(1);
        assert_eq!(t.insert(Label::new(9), 3), None);
        assert_eq!(t.insert(Label::new(9), 4), Some(3));
        assert_eq!(t.get(Label::new(9)), Some(&4));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_expects_registered_labels() {
        let lk = LabelLookup::build(4, [(Label::new(2), 42u64)]);
        assert_eq!(lk.expect(Label::new(2)), 42);
    }
}
