//! Word-level bitset kernels for the delta store's hot loops.
//!
//! The semi-naïve solvers spend their propagation time in three loops over
//! `Vec<u64>` membership bitsets: union-with-diff when a whole growth log is
//! forwarded across a `Sub` edge, the set-bit walk that extracts a node's
//! canonical index run at commit time, and popcounts for sizing. This module
//! rewrites those as chunked kernels — [`CHUNK`] words per step, plain
//! shift/mask/`count_ones`/`trailing_zeros` ops with no cross-iteration
//! dependence inside a chunk — the shape LLVM's autovectorizer turns into
//! SIMD on every target the workspace builds for, while staying 100% stable
//! Rust with zero `unsafe`. Both the sequential solver paths and the
//! sharded parallel engine ([`crate::solver::par`]) call through here, so
//! there is exactly one implementation of each hot loop to keep correct.

/// Words processed per unrolled step. Four `u64`s = one 256-bit lane on
/// AVX2-class hardware and two 128-bit lanes on NEON/SSE2; wider chunks
/// (8) measured the same here while bloating the scalar remainder, so 4 is
/// the word width both kernels use.
pub const CHUNK: usize = 4;

/// `dst |= src`, recording the newly-set words: `newly[i] = src[i] & !old
/// dst[i]`. `dst` must already be at least `src.len()` words long (callers
/// resize before the call so the kernel itself never reallocates). `newly`
/// is cleared and filled to `src.len()` words. Returns `true` iff any new
/// bit was set.
pub fn union_into_diff(dst: &mut [u64], src: &[u64], newly: &mut Vec<u64>) -> bool {
    debug_assert!(dst.len() >= src.len());
    newly.clear();
    newly.resize(src.len(), 0);
    let n = src.len();
    let mut any = 0u64;
    let mut i = 0;
    while i + CHUNK <= n {
        // Chunked body: independent word ops, no early exit — exactly the
        // pattern the autovectorizer lifts into vector or/andnot lanes.
        for k in 0..CHUNK {
            let s = src[i + k];
            let d = dst[i + k];
            let fresh = s & !d;
            newly[i + k] = fresh;
            dst[i + k] = d | s;
            any |= fresh;
        }
        i += CHUNK;
    }
    while i < n {
        let fresh = src[i] & !dst[i];
        newly[i] = fresh;
        dst[i] |= src[i];
        any |= fresh;
        i += 1;
    }
    any != 0
}

/// Calls `f(bit_index)` for every set bit of `words`, in ascending index
/// order. Scans [`CHUNK`] words at a time, skipping all-zero chunks with a
/// single OR-reduction before falling into the per-word
/// `trailing_zeros`/clear-lowest loop — sparse bitsets (the common case for
/// flow-node membership) touch most of their words only in the vectorized
/// zero test.
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(u32)) {
    let n = words.len();
    let mut i = 0;
    while i + CHUNK <= n {
        if (words[i] | words[i + 1] | words[i + 2] | words[i + 3]) != 0 {
            for k in 0..CHUNK {
                scan_word(words[i + k], ((i + k) * 64) as u32, &mut f);
            }
        }
        i += CHUNK;
    }
    while i < n {
        scan_word(words[i], (i * 64) as u32, &mut f);
        i += 1;
    }
}

#[inline]
fn scan_word(mut w: u64, base: u32, f: &mut impl FnMut(u32)) {
    while w != 0 {
        f(base + w.trailing_zeros());
        w &= w - 1;
    }
}

/// Total set bits, as a chunked `count_ones` reduction.
pub fn popcount(words: &[u64]) -> u64 {
    let n = words.len();
    let mut acc = [0u64; CHUNK];
    let mut i = 0;
    while i + CHUNK <= n {
        for k in 0..CHUNK {
            acc[k] += words[i + k].count_ones() as u64;
        }
        i += CHUNK;
    }
    let mut total: u64 = acc.iter().sum();
    while i < n {
        total += words[i].count_ones() as u64;
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_bits(words: &[u64]) -> Vec<u32> {
        let mut out = Vec::new();
        for (w, &word) in words.iter().enumerate() {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    out.push((w * 64 + b) as u32);
                }
            }
        }
        out
    }

    #[test]
    fn union_diff_matches_the_scalar_definition() {
        // Sizes straddle the chunk boundary: 0..=2*CHUNK+1 words.
        for n in 0..=(2 * CHUNK + 1) {
            let src: Vec<u64> = (0..n)
                .map(|i| 0x9e3779b97f4a7c15u64.rotate_left(i as u32))
                .collect();
            let mut dst: Vec<u64> = (0..n)
                .map(|i| 0x2545f4914f6cdd1du64.rotate_right(i as u32))
                .collect();
            let expect_new: Vec<u64> = src.iter().zip(&dst).map(|(s, d)| s & !d).collect();
            let expect_dst: Vec<u64> = src.iter().zip(&dst).map(|(s, d)| s | d).collect();
            let mut newly = Vec::new();
            let changed = union_into_diff(&mut dst, &src, &mut newly);
            assert_eq!(dst, expect_dst, "n={n}");
            assert_eq!(newly, expect_new, "n={n}");
            assert_eq!(changed, expect_new.iter().any(|&w| w != 0), "n={n}");
        }
    }

    #[test]
    fn union_diff_handles_longer_dst() {
        let src = vec![u64::MAX, 0b1010];
        let mut dst = vec![0b1, 0, 0xff, 0xee];
        let mut newly = Vec::new();
        assert!(union_into_diff(&mut dst, &src, &mut newly));
        assert_eq!(dst, vec![u64::MAX, 0b1010, 0xff, 0xee]);
        assert_eq!(newly, vec![!0b1_u64, 0b1010]);
    }

    #[test]
    fn union_diff_of_subset_reports_no_change() {
        let src = vec![0b0110; 9];
        let mut dst = vec![0b1111; 9];
        let mut newly = Vec::new();
        assert!(!union_into_diff(&mut dst, &src, &mut newly));
        assert!(newly.iter().all(|&w| w == 0));
    }

    #[test]
    fn set_bit_walk_visits_every_bit_in_order() {
        for n in 0..=(2 * CHUNK + 2) {
            let words: Vec<u64> = (0..n)
                .map(|i| {
                    if i % 3 == 1 {
                        0
                    } else {
                        0x8000000000400081u64 >> (i % 7)
                    }
                })
                .collect();
            let mut seen = Vec::new();
            for_each_set_bit(&words, |b| seen.push(b));
            assert_eq!(seen, naive_bits(&words), "n={n}");
            assert_eq!(popcount(&words), seen.len() as u64, "n={n}");
        }
    }

    #[test]
    fn popcount_empty_and_full() {
        assert_eq!(popcount(&[]), 0);
        assert_eq!(popcount(&[u64::MAX; 5]), 320);
    }
}
