//! Content-addressed fixpoint cache: cross-request reuse of committed
//! analysis answers.
//!
//! The experiment harness (and the `cpsdfa-service` daemon built on this
//! module) re-runs the same three analyses over large program corpora, and
//! real corpora repeat themselves: identical programs recur across
//! requests, and the hash-consed [`TermArena`] already proves how much
//! structure is shared. Before this module every repeat was re-solved from
//! scratch; with it, a repeated request is a lookup.
//!
//! # Content addressing
//!
//! A cache key is `(analysis kind, engine shards, subtree digest, rung)`:
//!
//! * **kind** — which fixpoint was asked for ([`AnalysisKind`]): source
//!   0CFA, CPS 0CFA, or first-order MFP over `Flat`.
//! * **shards** — the [`SolverMode`](crate::solver::SolverMode) shard count
//!   (0 for `Seq`). `Par(k)` and `Seq` are result-identical by the PR 6
//!   differential suite, but the engine is part of the request contract, so
//!   it stays in the key and the differential tests assert hit ≡ fresh
//!   per mode rather than across modes.
//! * **digest** — a structural 128-bit FNV-1a digest of the hash-consed
//!   [`TermArena`] subtree ([`ArenaDigests`]), memoized per [`TermId`]:
//!   because the arena hash-conses, a repeated program parses to the same
//!   `TermId` and its digest is an `O(1)` memo hit. Identifiers are hashed
//!   by *name*, so the digest is stable across arenas and processes. The
//!   byte stream fed to the hash is prefix-free: every variable-length
//!   field (identifier names) is length-prefixed, so no two distinct trees
//!   fold the same bytes, and the 128-bit width keeps even a
//!   million-program corpus far below birthday-collision territory. (FNV
//!   is not cryptographic; a shared deployment that must resist
//!   *adversarially crafted* collisions should front the service with a
//!   keyed MAC of the program text — see DESIGN.md §11.)
//! * **rung** — the [`DegradationLadder`](crate::govern::DegradationLadder)
//!   rung that produced the answer. Lookups for fresh work use
//!   [`CacheKey::full`] (the finest rung of the kind's canonical ladder);
//!   an answer computed on a *degraded* rung is inserted under its own rung
//!   name ([`CacheKey::for_rung`]) and therefore can never shadow a
//!   full-precision answer — the soundness condition the differential
//!   suite pins down.
//!
//! # Eviction accounting
//!
//! Every cached value carries an `approx_bytes` estimate (same spirit as
//! [`DeltaNodes::approx_bytes`](crate::setpool::DeltaNodes::approx_bytes):
//! a cheap, capacity-aware upper-ish bound, not a malloc census). The cache
//! holds a byte ceiling and evicts least-recently-used entries until an
//! insert fits, so cache growth goes through the same memory-governance
//! discipline as live solves. An entry larger than the whole ceiling is
//! rejected outright rather than flushing the cache for one tenant.
//!
//! # Observability
//!
//! [`CacheStats`] counts hits, misses, inserts, evictions, and rejects, and
//! gauges resident bytes/entries. [`CacheStats::emit_into`] flushes them as
//! `cache.*` trace events and [`CacheStats::from_agg`] inverts that, so a
//! JSONL trace reproduces the cache report byte-for-byte
//! ([`render_cache_stats_from_agg`](crate::report::render_cache_stats_from_agg)).

pub mod persist;

pub use persist::{PersistDir, RecoveryReport};

use crate::absval::{AbsClo, AbsKont};
use crate::cfa::{CfaResult, CpsCfaResult, CpsFlow};
use crate::domain::Flat;
use crate::fxhash::FxHashMap;
use crate::govern::DegradationReport;
use crate::mfp::DfSummary;
use crate::pushdown::{MatchedReturn, PushdownCfaResult};
use crate::solver::SolverMode;
use crate::trace::{AggSink, TraceSink};
use cpsdfa_syntax::arena::{TermArena, TermId, TermNode, ValueId, ValueNode};
use cpsdfa_syntax::Label;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h`.
#[inline]
fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// 128-bit FNV-1a: the structural program digests use the wide variant so
// cache-key collisions across a large corpus stay in birthday-bound
// territory (~2^64 programs for a 50% chance) instead of the ~2^32 a
// 64-bit key would give.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 128-bit FNV-1a over a byte slice, continuing from `h`.
#[inline]
fn fnv128_bytes(mut h: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// 128-bit FNV-1a over a `u64`, continuing from `h` (little-endian bytes —
/// a fixed-width field, so no framing is needed).
#[inline]
fn fnv128_u64(h: u128, v: u64) -> u128 {
    fnv128_bytes(h, &v.to_le_bytes())
}

/// Folds a child subtree digest: fixed-width 16 bytes, little-endian.
#[inline]
fn fnv128_child(h: u128, d: u128) -> u128 {
    fnv128_bytes(h, &d.to_le_bytes())
}

/// Folds an identifier name with a length prefix. The prefix makes the
/// overall byte stream prefix-free: without it, a name's bytes would run
/// into whatever follows (e.g. a child digest), and two different
/// name/child splits could fold identical streams.
#[inline]
fn fnv128_name(h: u128, name: &str) -> u128 {
    let h = fnv128_u64(h, name.len() as u64);
    fnv128_bytes(h, name.as_bytes())
}

/// A stable digest of an answer's canonical `Debug` rendering (`BTreeSet`
/// iterates sorted, `LabelTable` iterates in label order), FNV-1a folded to
/// one `u64` — the same discipline the parallel differential suite uses to
/// pin bit-for-bit repeatability. Two answers digest equal iff their
/// canonical forms coincide.
pub fn debug_digest(value: &impl std::fmt::Debug) -> u64 {
    fnv_bytes(FNV_OFFSET, format!("{value:?}").as_bytes())
}

// ---------------------------------------------------------------------------
// Structural arena digests
// ---------------------------------------------------------------------------

/// Memoized structural digests over a [`TermArena`]. The arena is
/// append-only and hash-consed, so digests are computed once per distinct
/// node id and shared by every request that parses to the same subtree.
#[derive(Debug, Default)]
pub struct ArenaDigests {
    terms: Vec<Option<u128>>,
    values: Vec<Option<u128>>,
}

impl ArenaDigests {
    /// A fresh, empty memo (pair it with exactly one arena).
    pub fn new() -> Self {
        ArenaDigests::default()
    }

    /// The structural digest of term `id`. Identifiers hash by name
    /// (length-prefixed) and node shapes by tag, so the digest is
    /// independent of interner state, arena insertion order, and process,
    /// and the folded byte stream is unambiguous: every node's encoding is
    /// a fixed-arity sequence of fixed-width fields once names carry their
    /// length.
    pub fn term_digest(&mut self, arena: &TermArena, id: TermId) -> u128 {
        if let Some(Some(d)) = self.terms.get(id.index()) {
            return *d;
        }
        let d = match arena.term(id).clone() {
            TermNode::Value(v) => fnv128_child(
                fnv128_bytes(FNV128_OFFSET, b"val"),
                self.value_digest(arena, v),
            ),
            TermNode::App(f, a) => {
                let h = fnv128_bytes(FNV128_OFFSET, b"app");
                let h = fnv128_child(h, self.term_digest(arena, f));
                fnv128_child(h, self.term_digest(arena, a))
            }
            TermNode::Let(x, rhs, body) => {
                let h = fnv128_bytes(FNV128_OFFSET, b"let");
                let h = fnv128_name(h, x.as_str());
                let h = fnv128_child(h, self.term_digest(arena, rhs));
                fnv128_child(h, self.term_digest(arena, body))
            }
            TermNode::If0(c, t, e) => {
                let h = fnv128_bytes(FNV128_OFFSET, b"if0");
                let h = fnv128_child(h, self.term_digest(arena, c));
                let h = fnv128_child(h, self.term_digest(arena, t));
                fnv128_child(h, self.term_digest(arena, e))
            }
            TermNode::Loop => fnv128_bytes(FNV128_OFFSET, b"loop"),
        };
        if self.terms.len() <= id.index() {
            self.terms.resize(id.index() + 1, None);
        }
        self.terms[id.index()] = Some(d);
        d
    }

    fn value_digest(&mut self, arena: &TermArena, id: ValueId) -> u128 {
        if let Some(Some(d)) = self.values.get(id.index()) {
            return *d;
        }
        let d = match arena.value(id).clone() {
            ValueNode::Num(n) => fnv128_u64(fnv128_bytes(FNV128_OFFSET, b"num"), n as u64),
            ValueNode::Var(x) => fnv128_name(fnv128_bytes(FNV128_OFFSET, b"var"), x.as_str()),
            ValueNode::Add1 => fnv128_bytes(FNV128_OFFSET, b"add1"),
            ValueNode::Sub1 => fnv128_bytes(FNV128_OFFSET, b"sub1"),
            ValueNode::Lam(x, body) => {
                let h = fnv128_bytes(FNV128_OFFSET, b"lam");
                let h = fnv128_name(h, x.as_str());
                fnv128_child(h, self.term_digest(arena, body))
            }
        };
        if self.values.len() <= id.index() {
            self.values.resize(id.index() + 1, None);
        }
        self.values[id.index()] = Some(d);
        d
    }
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// Which fixpoint a cache entry answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// Constraint 0CFA over the ANF source ([`crate::cfa::zero_cfa`]).
    CfaSrc,
    /// Constraint 0CFA over cps(Λ) ([`crate::cfa::zero_cfa_cps`]).
    CfaCps,
    /// Pushdown (summary-based) CFA over cps(Λ)
    /// ([`crate::pushdown::pushdown_cfa`]).
    CfaPushdown,
    /// First-order MFP over the [`Flat`] domain
    /// ([`crate::mfp::Cfg::solve_mfp`]).
    MfpFlat,
}

impl AnalysisKind {
    /// Every kind, for exhaustive sweeps (the wire round-trip test, the
    /// service admission table). The round-trip test pins this list with
    /// an exhaustive `match`, so adding a variant without extending it is
    /// a compile error there, not silent drift.
    pub const ALL: [AnalysisKind; 4] = [
        AnalysisKind::CfaSrc,
        AnalysisKind::CfaCps,
        AnalysisKind::CfaPushdown,
        AnalysisKind::MfpFlat,
    ];

    /// The wire / trace name.
    pub fn as_str(self) -> &'static str {
        match self {
            AnalysisKind::CfaSrc => "cfa.src",
            AnalysisKind::CfaCps => "cfa.cps",
            AnalysisKind::CfaPushdown => "cfa.pushdown",
            AnalysisKind::MfpFlat => "mfp.flat",
        }
    }

    /// Parses a wire name (`cfa.src` / `cfa.cps` / `cfa.pushdown` /
    /// `mfp.flat`).
    pub fn parse(s: &str) -> Option<AnalysisKind> {
        match s {
            "cfa.src" => Some(AnalysisKind::CfaSrc),
            "cfa.cps" => Some(AnalysisKind::CfaCps),
            "cfa.pushdown" => Some(AnalysisKind::CfaPushdown),
            "mfp.flat" => Some(AnalysisKind::MfpFlat),
            _ => None,
        }
    }

    /// The finest (full-precision) rung of this kind's canonical ladder —
    /// the rung name cold lookups address.
    pub fn full_rung(self) -> &'static str {
        self.as_str()
    }
}

/// A content address: analysis kind × engine shard count × structural
/// program digest × producing rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The analysis requested.
    pub kind: AnalysisKind,
    /// [`SolverMode::shards`]: 0 for the sequential engine.
    pub shards: usize,
    /// Structural digest of the program ([`ArenaDigests::term_digest`]).
    pub digest: u128,
    /// The ladder rung that produced (or is asked for) the answer.
    /// `&'static str` equality/hashing is by content, so rung names from
    /// different ladders unify as expected.
    pub rung: &'static str,
}

impl CacheKey {
    /// The key a fresh request looks up: the kind's full-precision rung.
    pub fn full(kind: AnalysisKind, mode: SolverMode, digest: u128) -> CacheKey {
        CacheKey {
            kind,
            shards: mode.shards(),
            digest,
            rung: kind.full_rung(),
        }
    }

    /// The key an *answered* request inserts under: the rung that actually
    /// produced the value. For an undegraded run this equals
    /// [`CacheKey::full`]; for a degraded run it is a distinct key, so the
    /// degraded answer can never shadow a full-precision one.
    pub fn for_rung(
        kind: AnalysisKind,
        mode: SolverMode,
        digest: u128,
        rung: &'static str,
    ) -> CacheKey {
        CacheKey {
            kind,
            shards: mode.shards(),
            digest,
            rung,
        }
    }
}

// ---------------------------------------------------------------------------
// Send-safe answer mirrors
// ---------------------------------------------------------------------------

/// Rough per-set bookkeeping overhead charged by the byte estimators: one
/// `BTreeSet` header plus a leaf node. Deliberately coarse — the estimate
/// only has to be monotone in content for eviction accounting to work.
const SET_OVERHEAD: u64 = 64;

fn sets_bytes<T>(sets: impl Iterator<Item = usize>) -> u64 {
    sets.map(|len| SET_OVERHEAD + (len as u64) * std::mem::size_of::<T>() as u64)
        .sum()
}

/// [`CfaResult`] with the `Rc` sharing flattened out: `Send + Sync`, so it
/// can live in a cache shared across service worker threads. Round-trips
/// losslessly ([`SendCfa::to_result`] compares `same_solution`-equal, and
/// `==` on every field, with the run it mirrors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendCfa {
    /// Mirror of [`CfaResult::vars`] (contents, not handles).
    pub vars: Vec<BTreeSet<AbsClo>>,
    /// Mirror of [`CfaResult::terms`], occupied entries in label order.
    pub terms: Vec<(Label, BTreeSet<AbsClo>)>,
    /// Mirror of [`CfaResult::calls`], occupied entries in label order.
    pub calls: Vec<(Label, BTreeSet<AbsClo>)>,
    /// Fixpoint work the producing run performed.
    pub iterations: u64,
}

impl SendCfa {
    /// Snapshots a solve result into the cacheable mirror.
    pub fn from_result(r: &CfaResult) -> SendCfa {
        SendCfa {
            vars: r.vars.iter().map(|s| s.as_ref().clone()).collect(),
            terms: r
                .terms
                .iter()
                .map(|(l, s)| (l, s.as_ref().clone()))
                .collect(),
            calls: r.calls.iter().map(|(l, s)| (l, s.clone())).collect(),
            iterations: r.iterations,
        }
    }

    /// Reconstitutes the analyzer-shaped result (fresh `Rc` handles).
    pub fn to_result(&self) -> CfaResult {
        CfaResult {
            vars: self.vars.iter().map(|s| Rc::new(s.clone())).collect(),
            terms: self
                .terms
                .iter()
                .map(|(l, s)| (*l, Rc::new(s.clone())))
                .collect(),
            calls: Rc::new(self.calls.iter().map(|(l, s)| (*l, s.clone())).collect()),
            iterations: self.iterations,
        }
    }

    fn approx_bytes(&self) -> u64 {
        sets_bytes::<AbsClo>(self.vars.iter().map(BTreeSet::len))
            + sets_bytes::<AbsClo>(self.terms.iter().map(|(_, s)| s.len()))
            + sets_bytes::<AbsClo>(self.calls.iter().map(|(_, s)| s.len()))
    }

    /// Digest of the *solution* alone. `iterations` is excluded on
    /// purpose: it is a work counter, and under `Par(k)` work stealing it
    /// varies run to run on a loaded host even though the solution is
    /// bit-identical — two equal answers must digest equal.
    pub fn solution_digest(&self) -> u64 {
        debug_digest(&(&self.vars, &self.terms, &self.calls))
    }
}

/// [`CpsCfaResult`] mirror, same contract as [`SendCfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendCpsCfa {
    /// Mirror of [`CpsCfaResult::vars`].
    pub vars: Vec<BTreeSet<CpsFlow>>,
    /// Mirror of [`CpsCfaResult::returns`], occupied entries in label order.
    pub returns: Vec<(Label, BTreeSet<AbsKont>)>,
    /// Mirror of [`CpsCfaResult::calls`], occupied entries in label order.
    pub calls: Vec<(Label, BTreeSet<AbsClo>)>,
    /// Fixpoint work the producing run performed.
    pub iterations: u64,
}

impl SendCpsCfa {
    /// Snapshots a solve result into the cacheable mirror.
    pub fn from_result(r: &CpsCfaResult) -> SendCpsCfa {
        SendCpsCfa {
            vars: r.vars.iter().map(|s| s.as_ref().clone()).collect(),
            returns: r.returns.iter().map(|(l, s)| (l, s.clone())).collect(),
            calls: r.calls.iter().map(|(l, s)| (l, s.clone())).collect(),
            iterations: r.iterations,
        }
    }

    /// Reconstitutes the analyzer-shaped result (fresh `Rc` handles).
    pub fn to_result(&self) -> CpsCfaResult {
        CpsCfaResult {
            vars: self.vars.iter().map(|s| Rc::new(s.clone())).collect(),
            returns: self.returns.iter().map(|(l, s)| (*l, s.clone())).collect(),
            calls: self.calls.iter().map(|(l, s)| (*l, s.clone())).collect(),
            iterations: self.iterations,
        }
    }

    fn approx_bytes(&self) -> u64 {
        sets_bytes::<CpsFlow>(self.vars.iter().map(BTreeSet::len))
            + sets_bytes::<AbsKont>(self.returns.iter().map(|(_, s)| s.len()))
            + sets_bytes::<AbsClo>(self.calls.iter().map(|(_, s)| s.len()))
    }

    /// Digest of the *solution* alone, excluding the schedule-dependent
    /// `iterations` counter — see [`SendCfa::solution_digest`].
    pub fn solution_digest(&self) -> u64 {
        debug_digest(&(&self.vars, &self.returns, &self.calls))
    }
}

/// [`PushdownCfaResult`] mirror, same contract as [`SendCfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendPushdown {
    /// Mirror of [`PushdownCfaResult::vars`].
    pub vars: Vec<BTreeSet<CpsFlow>>,
    /// Mirror of [`PushdownCfaResult::returns`], occupied entries in
    /// label order.
    pub returns: Vec<(Label, BTreeSet<AbsKont>)>,
    /// Mirror of [`PushdownCfaResult::calls`], occupied entries in label
    /// order.
    pub calls: Vec<(Label, BTreeSet<AbsClo>)>,
    /// Mirror of [`PushdownCfaResult::matched`], in set order.
    pub matched: Vec<MatchedReturn>,
    /// Summary instantiations the producing run performed.
    pub summaries: u64,
    /// Fixpoint work the producing run performed.
    pub iterations: u64,
}

impl SendPushdown {
    /// Snapshots a solve result into the cacheable mirror.
    pub fn from_result(r: &PushdownCfaResult) -> SendPushdown {
        SendPushdown {
            vars: r.vars.iter().map(|s| s.as_ref().clone()).collect(),
            returns: r.returns.iter().map(|(l, s)| (l, s.clone())).collect(),
            calls: r.calls.iter().map(|(l, s)| (l, s.clone())).collect(),
            matched: r.matched.iter().copied().collect(),
            summaries: r.summaries,
            iterations: r.iterations,
        }
    }

    /// Reconstitutes the analyzer-shaped result (fresh `Rc` handles).
    pub fn to_result(&self) -> PushdownCfaResult {
        PushdownCfaResult {
            vars: self.vars.iter().map(|s| Rc::new(s.clone())).collect(),
            returns: self.returns.iter().map(|(l, s)| (*l, s.clone())).collect(),
            calls: self.calls.iter().map(|(l, s)| (*l, s.clone())).collect(),
            matched: self.matched.iter().copied().collect(),
            summaries: self.summaries,
            iterations: self.iterations,
        }
    }

    fn approx_bytes(&self) -> u64 {
        sets_bytes::<CpsFlow>(self.vars.iter().map(BTreeSet::len))
            + sets_bytes::<AbsKont>(self.returns.iter().map(|(_, s)| s.len()))
            + sets_bytes::<AbsClo>(self.calls.iter().map(|(_, s)| s.len()))
            + (self.matched.len() as u64) * std::mem::size_of::<MatchedReturn>() as u64
    }

    /// Digest of the *solution* alone, excluding the work counters — see
    /// [`SendCfa::solution_digest`]. The matched-return witnesses are part
    /// of the solution (they are what distinguishes this rung).
    pub fn solution_digest(&self) -> u64 {
        debug_digest(&(&self.vars, &self.returns, &self.calls, &self.matched))
    }
}

/// A committed, `Send`-safe analysis answer — the value side of the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedAnswer {
    /// Source-level 0CFA.
    CfaSrc(SendCfa),
    /// CPS-level 0CFA.
    CfaCps(SendCpsCfa),
    /// Pushdown CFA over cps(Λ).
    CfaPushdown(SendPushdown),
    /// First-order MFP over [`Flat`].
    MfpFlat(DfSummary<Flat>),
}

impl CachedAnswer {
    /// The kind this answer actually is (may be coarser than the request's
    /// kind when a ladder degraded `cfa.cps → cfa.src`).
    pub fn kind(&self) -> AnalysisKind {
        match self {
            CachedAnswer::CfaSrc(_) => AnalysisKind::CfaSrc,
            CachedAnswer::CfaCps(_) => AnalysisKind::CfaCps,
            CachedAnswer::CfaPushdown(_) => AnalysisKind::CfaPushdown,
            CachedAnswer::MfpFlat(_) => AnalysisKind::MfpFlat,
        }
    }

    /// Fixpoint iterations/firings the producing run performed (0 for MFP,
    /// whose summary carries no work counter).
    pub fn iterations(&self) -> u64 {
        match self {
            CachedAnswer::CfaSrc(r) => r.iterations,
            CachedAnswer::CfaCps(r) => r.iterations,
            CachedAnswer::CfaPushdown(r) => r.iterations,
            CachedAnswer::MfpFlat(_) => 0,
        }
    }

    /// The eviction-accounting estimate for this answer.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            CachedAnswer::CfaSrc(r) => r.approx_bytes(),
            CachedAnswer::CfaCps(r) => r.approx_bytes(),
            CachedAnswer::CfaPushdown(r) => r.approx_bytes(),
            CachedAnswer::MfpFlat(s) => {
                SET_OVERHEAD + (s.vars.len() as u64) * std::mem::size_of::<Flat>() as u64
            }
        }
    }

    /// Canonical-form digest of the *solution* — what service responses
    /// carry so clients can assert bit-identity without shipping stores.
    /// Work counters are excluded: under `Par(k)` work stealing,
    /// `iterations` varies run to run while the solution does not, and
    /// equal answers must digest equal.
    pub fn digest(&self) -> u64 {
        match self {
            CachedAnswer::CfaSrc(r) => r.solution_digest(),
            CachedAnswer::CfaCps(r) => r.solution_digest(),
            CachedAnswer::CfaPushdown(r) => r.solution_digest(),
            CachedAnswer::MfpFlat(s) => debug_digest(s),
        }
    }
}

/// One cached fixpoint: the committed answer, the governance report of the
/// producing run, and the digests/accounting computed once at insert so the
/// warm path never re-renders.
#[derive(Debug, Clone)]
pub struct CachedFixpoint {
    /// The committed answer.
    pub answer: CachedAnswer,
    /// The producing run's [`DegradationReport`].
    pub report: DegradationReport,
    /// [`CachedAnswer::digest`], precomputed.
    pub answer_digest: u64,
    /// [`CachedAnswer::approx_bytes`], precomputed (what eviction charges).
    pub approx_bytes: u64,
}

impl CachedFixpoint {
    /// Packages an answer + report, computing the digest and byte estimate.
    pub fn new(answer: CachedAnswer, report: DegradationReport) -> CachedFixpoint {
        let answer_digest = answer.digest();
        let approx_bytes = answer.approx_bytes();
        CachedFixpoint {
            answer,
            report,
            answer_digest,
            approx_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Cumulative cache counters, emitted as `cache.*` trace events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries admitted.
    pub inserts: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts refused (entry alone exceeds the ceiling, or key collision
    /// with a resident entry).
    pub rejects: u64,
    /// Resident payload bytes (estimate; gauge).
    pub bytes: u64,
    /// Resident entries (gauge).
    pub entries: u64,
    /// The configured ceiling (gauge).
    pub ceiling_bytes: u64,
    /// Served answers that passed a sampled certification check.
    pub certify_ok: u64,
    /// Served answers a certification check *refuted* (each one is an
    /// evicted-and-recomputed wrong answer that was never served).
    pub certify_fail: u64,
    /// Persisted entries re-admitted by startup recovery.
    pub persist_recovered: u64,
    /// Persisted entries dropped by recovery (framing/checksum/decode
    /// failures plus stale-key mismatches).
    pub persist_corrupt: u64,
    /// Bytes of persisted entries evicted after a failed certification.
    pub persist_evicted_bytes: u64,
    /// Watch-session ancestors evicted by the deadline-clock TTL.
    pub session_ttl_evictions: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Flushes the counters into a sink under `prefix` (conventionally
    /// `cache`): `<prefix>.hit/miss/insert/evict/reject` counters and
    /// `<prefix>.bytes/entries/ceiling_bytes` gauges.
    pub fn emit_into(&self, sink: &mut impl TraceSink, prefix: &str) {
        if !sink.enabled() {
            return;
        }
        sink.counter(&format!("{prefix}.hit"), self.hits);
        sink.counter(&format!("{prefix}.miss"), self.misses);
        sink.counter(&format!("{prefix}.insert"), self.inserts);
        sink.counter(&format!("{prefix}.evict"), self.evictions);
        sink.counter(&format!("{prefix}.reject"), self.rejects);
        sink.gauge(&format!("{prefix}.bytes"), self.bytes);
        sink.gauge(&format!("{prefix}.entries"), self.entries);
        sink.gauge(&format!("{prefix}.ceiling_bytes"), self.ceiling_bytes);
        sink.counter(&format!("{prefix}.certify.ok"), self.certify_ok);
        sink.counter(&format!("{prefix}.certify.fail"), self.certify_fail);
        sink.counter(
            &format!("{prefix}.persist.recovered"),
            self.persist_recovered,
        );
        sink.counter(&format!("{prefix}.persist.corrupt"), self.persist_corrupt);
        sink.counter(
            &format!("{prefix}.persist.evicted_bytes"),
            self.persist_evicted_bytes,
        );
        sink.counter(
            &format!("{prefix}.session.ttl_evict"),
            self.session_ttl_evictions,
        );
    }

    /// Inverts [`emit_into`](CacheStats::emit_into) from an aggregated
    /// trace — the replay path `render_cache_stats_from_agg` uses.
    pub fn from_agg(agg: &AggSink, prefix: &str) -> CacheStats {
        let c = |name: &str| agg.counter_value(&format!("{prefix}.{name}"));
        let g = |name: &str| agg.gauge_value(&format!("{prefix}.{name}"));
        CacheStats {
            hits: c("hit"),
            misses: c("miss"),
            inserts: c("insert"),
            evictions: c("evict"),
            rejects: c("reject"),
            bytes: g("bytes"),
            entries: g("entries"),
            ceiling_bytes: g("ceiling_bytes"),
            certify_ok: c("certify.ok"),
            certify_fail: c("certify.fail"),
            persist_recovered: c("persist.recovered"),
            persist_corrupt: c("persist.corrupt"),
            persist_evicted_bytes: c("persist.evicted_bytes"),
            session_ttl_evictions: c("session.ttl_evict"),
        }
    }
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

struct Entry {
    value: Arc<CachedFixpoint>,
    last_used: u64,
}

/// One watch-mode session's most recent fixpoint: the source it was
/// computed over plus the committed answer — the seed the service
/// warm-starts the session's *next* edit from (PR 9).
///
/// Ancestors live beside the content-addressed entries, keyed by session
/// id instead of program digest: an edited program has a *new* digest, so
/// the ordinary lookup can never find its predecessor.
#[derive(Debug, Clone)]
pub struct Ancestor {
    /// The analysis the session is running (the *answer's* kind — a
    /// degraded answer records the rung that actually produced it).
    pub kind: AnalysisKind,
    /// Structural digest of `source`.
    pub digest: u128,
    /// The program source the fixpoint was computed over. Stored as text:
    /// the warm path re-parses it into the worker's own arena, so
    /// ancestors stay `Send` without sharing term graphs across workers.
    pub source: String,
    /// The committed fixpoint.
    pub fixpoint: Arc<CachedFixpoint>,
}

/// Sessions remembered at once. Ancestors are deliberately outside the
/// byte ceiling: they are the live working set of open sessions, and
/// letting bulk cache traffic evict them would silently turn every watch
/// step cold. A small count cap bounds them instead.
const MAX_ANCESTORS: usize = 64;

/// The content-addressed, byte-ceilinged, LRU fixpoint cache.
///
/// Values are handed out as [`Arc`]s, so a warm hit is a pointer clone —
/// no store is copied on the serve path. The struct itself is not
/// synchronized; the service wraps it in a `Mutex` (lookups and inserts
/// are O(1) + eviction, so the critical section is tiny next to a solve).
pub struct FixpointCache {
    entries: FxHashMap<CacheKey, Entry>,
    /// Session id → latest fixpoint slot for watch mode.
    ancestors: FxHashMap<u64, SessionSlot>,
    /// Deadline-clock TTL for ancestors; `None` disables expiry.
    session_ttl: Option<Duration>,
    ceiling_bytes: u64,
    bytes: u64,
    tick: u64,
    stats: CacheStats,
}

/// One watch session's slot in the ancestor side-table: LRU recency for
/// the count cap, plus a wall-clock deadline for the TTL. Every touch
/// refreshes both; a session whose deadline passes is evicted the next
/// time the table is consulted, so abandoned sessions stop pinning
/// fixpoints even though nothing ever touches them again.
struct SessionSlot {
    last_used: u64,
    deadline: Option<Instant>,
    ancestor: Arc<Ancestor>,
}

impl FixpointCache {
    /// An empty cache with an eviction ceiling of `ceiling_bytes` of
    /// estimated payload.
    pub fn new(ceiling_bytes: u64) -> FixpointCache {
        FixpointCache {
            entries: FxHashMap::default(),
            ancestors: FxHashMap::default(),
            session_ttl: None,
            ceiling_bytes,
            bytes: 0,
            tick: 0,
            stats: CacheStats {
                ceiling_bytes,
                ..CacheStats::default()
            },
        }
    }

    /// The configured ceiling.
    pub fn ceiling_bytes(&self) -> u64 {
        self.ceiling_bytes
    }

    /// Estimated resident payload bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.bytes
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A snapshot of the counters (gauges refreshed to current residency).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            bytes: self.bytes,
            entries: self.entries.len() as u64,
            ceiling_bytes: self.ceiling_bytes,
            ..self.stats
        }
    }

    /// Looks `key` up, counting a hit or miss and refreshing LRU order.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<CachedFixpoint>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Admits `value` under `key`, evicting LRU entries until it fits.
    /// Returns `false` (a counted reject) when the value alone exceeds the
    /// ceiling or the key is already resident (first writer wins — two
    /// racing solves of the same program commit identical answers anyway,
    /// and keeping the first preserves its LRU position).
    pub fn insert(&mut self, key: CacheKey, value: CachedFixpoint) -> bool {
        let cost = value.approx_bytes;
        if cost > self.ceiling_bytes || self.entries.contains_key(&key) {
            self.stats.rejects += 1;
            return false;
        }
        while self.bytes + cost > self.ceiling_bytes {
            if !self.evict_lru() {
                break;
            }
        }
        self.tick += 1;
        self.bytes += cost;
        self.stats.inserts += 1;
        self.entries.insert(
            key,
            Entry {
                value: Arc::new(value),
                last_used: self.tick,
            },
        );
        true
    }

    /// Evicts the least-recently-used entry; `false` if the cache is empty.
    fn evict_lru(&mut self) -> bool {
        let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        else {
            return false;
        };
        if let Some(entry) = self.entries.remove(&victim) {
            self.bytes = self.bytes.saturating_sub(entry.value.approx_bytes);
            self.stats.evictions += 1;
        }
        true
    }

    /// Flushes the current counter snapshot as `cache.*` events.
    pub fn emit_into(&self, sink: &mut impl TraceSink) {
        self.stats().emit_into(sink, "cache");
    }

    /// Removes the entry under `key` (a certify-failure eviction: the
    /// answer was refuted, so it must not be served again). Counted as an
    /// eviction. Returns the removed fixpoint, if one was resident.
    pub fn remove(&mut self, key: &CacheKey) -> Option<Arc<CachedFixpoint>> {
        let entry = self.entries.remove(key)?;
        self.bytes = self.bytes.saturating_sub(entry.value.approx_bytes);
        self.stats.evictions += 1;
        Some(entry.value)
    }

    /// Configures the ancestor deadline-clock TTL (`None` disables it).
    /// Applies to sessions noted from now on; existing deadlines are
    /// rewritten on their next touch.
    pub fn set_session_ttl(&mut self, ttl: Option<Duration>) {
        self.session_ttl = ttl;
    }

    /// Evicts every ancestor whose deadline has passed, counting each in
    /// `session.ttl_evict`. Called on the session-table paths, so expiry
    /// needs no background thread — an abandoned session is reaped the
    /// next time *any* session traffic consults the table.
    fn purge_expired_sessions(&mut self) {
        if self.session_ttl.is_none() {
            return;
        }
        let now = Instant::now();
        let before = self.ancestors.len();
        self.ancestors
            .retain(|_, slot| slot.deadline.is_none_or(|d| d > now));
        self.stats.session_ttl_evictions += (before - self.ancestors.len()) as u64;
    }

    /// Records `session`'s latest fixpoint, replacing any predecessor.
    /// Beyond [`MAX_ANCESTORS`] sessions, the least-recently-touched
    /// session is forgotten (its *content-addressed* entries survive —
    /// only the warm-start shortcut is lost).
    pub fn note_ancestor(&mut self, session: u64, ancestor: Ancestor) {
        self.purge_expired_sessions();
        self.tick += 1;
        let slot = SessionSlot {
            last_used: self.tick,
            deadline: self.session_ttl.map(|ttl| Instant::now() + ttl),
            ancestor: Arc::new(ancestor),
        };
        if self.ancestors.len() >= MAX_ANCESTORS && !self.ancestors.contains_key(&session) {
            if let Some(victim) = self
                .ancestors
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(s, _)| *s)
            {
                self.ancestors.remove(&victim);
            }
        }
        self.ancestors.insert(session, slot);
    }

    /// The latest fixpoint noted for `session`, refreshing its recency and
    /// TTL deadline. An expired session reads as absent.
    pub fn ancestor(&mut self, session: u64) -> Option<Arc<Ancestor>> {
        self.purge_expired_sessions();
        self.tick += 1;
        let tick = self.tick;
        let deadline = self.session_ttl.map(|ttl| Instant::now() + ttl);
        self.ancestors.get_mut(&session).map(|slot| {
            slot.last_used = tick;
            slot.deadline = deadline;
            Arc::clone(&slot.ancestor)
        })
    }

    /// Forgets `session`'s ancestor (certify refuted its fixpoint, or the
    /// client closed the session). Returns whether one was present.
    pub fn evict_session(&mut self, session: u64) -> bool {
        self.ancestors.remove(&session).is_some()
    }

    /// Sessions currently remembered.
    pub fn ancestor_count(&self) -> usize {
        self.ancestors.len()
    }

    /// Counts a passed certification check.
    pub fn note_certify_ok(&mut self) {
        self.stats.certify_ok += 1;
    }

    /// Counts a refuted certification check, optionally charging the disk
    /// bytes its eviction freed.
    pub fn note_certify_fail(&mut self, evicted_disk_bytes: u64) {
        self.stats.certify_fail += 1;
        self.stats.persist_evicted_bytes += evicted_disk_bytes;
    }

    /// Folds a startup [`RecoveryReport`] into the persistent-cache
    /// counters.
    pub fn note_recovery(&mut self, report: &RecoveryReport) {
        self.stats.persist_recovered += report.recovered;
        self.stats.persist_corrupt += report.dropped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfa::zero_cfa;
    use cpsdfa_anf::AnfProgram;

    fn digest_of(src: &str) -> u128 {
        let mut arena = TermArena::new();
        let id = arena.parse(src).expect("parses");
        ArenaDigests::new().term_digest(&arena, id)
    }

    #[test]
    fn name_framing_is_prefix_free() {
        // Without the length prefix, folding "a" then "b" is byte-for-byte
        // the same stream as folding "ab" — the ambiguity class that let
        // distinct trees collide. The prefix separates them.
        let h = FNV128_OFFSET;
        assert_ne!(fnv128_name(fnv128_name(h, "a"), "b"), fnv128_name(h, "ab"));
        // And names can never be mistaken for the fixed-width fields that
        // follow them: a name whose bytes equal a child-digest prefix still
        // folds differently because its length is folded first.
        let d = fnv128_bytes(h, b"whatever");
        assert_ne!(
            fnv128_child(fnv128_name(h, "x"), d),
            fnv128_name(h, &format!("x{}", "y".repeat(16)))
        );
    }

    #[test]
    fn digests_are_structural_and_arena_independent() {
        let a = digest_of("(let (f (lambda (x) x)) (f 1))");
        let b = digest_of("(let (f (lambda (x) x)) (f 1))");
        let c = digest_of("(let (f (lambda (x) x)) (f 2))");
        assert_eq!(a, b, "same program, different arenas, same digest");
        assert_ne!(a, c, "different constants, different digests");
        // Renamed binder: structural digest distinguishes it (content
        // addressing is syntactic, not alpha-equivalent).
        let d = digest_of("(let (g (lambda (x) x)) (g 1))");
        assert_ne!(a, d);
    }

    #[test]
    fn shared_subtrees_memoize_in_one_arena() {
        let mut arena = TermArena::new();
        let a = arena.parse("(let (f (lambda (x) x)) (f 1))").unwrap();
        let b = arena.parse("(let (f (lambda (x) x)) (f 1))").unwrap();
        assert_eq!(a, b, "hash-consing gives one id");
        let mut memo = ArenaDigests::new();
        let d1 = memo.term_digest(&arena, a);
        let d2 = memo.term_digest(&arena, b);
        assert_eq!(d1, d2);
    }

    #[test]
    fn analysis_kind_wire_names_round_trip_exhaustively() {
        // The match pins exhaustiveness: adding an `AnalysisKind` variant
        // without extending `ALL` (and the wire tables) fails to compile
        // here instead of silently drifting between `as_str` and `parse`.
        for k in AnalysisKind::ALL {
            match k {
                AnalysisKind::CfaSrc
                | AnalysisKind::CfaCps
                | AnalysisKind::CfaPushdown
                | AnalysisKind::MfpFlat => {}
            }
            assert_eq!(AnalysisKind::parse(k.as_str()), Some(k), "{k:?}");
            assert_eq!(k.full_rung(), k.as_str());
        }
        // Names are pairwise distinct.
        let names: std::collections::BTreeSet<&str> =
            AnalysisKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(names.len(), AnalysisKind::ALL.len());
        // Near-misses do not parse.
        for junk in ["", "cfa", "cfa.pushdown.seq", "cfa.cps ", "CFA.SRC", "mfp"] {
            assert_eq!(AnalysisKind::parse(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn pushdown_round_trips_through_the_mirror() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a (f 1)) (f a)))").unwrap();
        let cps = cpsdfa_cps::CpsProgram::from_anf(&p);
        let fresh = crate::pushdown::pushdown_cfa(&cps).unwrap();
        let mirror = SendPushdown::from_result(&fresh);
        let back = mirror.to_result();
        assert!(back.same_solution(&fresh));
        assert_eq!(back.iterations, fresh.iterations);
        assert_eq!(back.summaries, fresh.summaries);
        assert_eq!(SendPushdown::from_result(&back), mirror);
        // Work counters stay out of the canonical digest.
        let mut skewed = mirror.clone();
        skewed.iterations += 5;
        skewed.summaries += 5;
        assert_eq!(mirror.solution_digest(), skewed.solution_digest());
    }

    #[test]
    fn cfa_round_trips_through_the_mirror() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a (f 1)) (f a)))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let mirror = SendCfa::from_result(&fresh);
        let back = mirror.to_result();
        assert!(back.same_solution(&fresh));
        assert_eq!(back.iterations, fresh.iterations);
        assert_eq!(SendCfa::from_result(&back), mirror);
    }

    #[test]
    fn answer_digest_ignores_schedule_dependent_work_counters() {
        // Under Par(k) work stealing, `iterations` varies run to run on a
        // loaded host while the solution stays bit-identical; the canonical
        // digest must see through that.
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (let (a (f 1)) (f a)))").unwrap();
        let a = SendCfa::from_result(&zero_cfa(&p).unwrap());
        let mut b = a.clone();
        b.iterations += 17;
        assert_ne!(a, b, "premise: the mirrors differ as values");
        assert_eq!(a.solution_digest(), b.solution_digest());
        let fixpoint =
            |m: SendCfa| CachedFixpoint::new(CachedAnswer::CfaSrc(m), DegradationReport::default());
        assert_eq!(fixpoint(a).answer_digest, fixpoint(b).answer_digest);
    }

    #[test]
    fn lru_evicts_oldest_first_and_accounts_bytes() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let value = || {
            CachedFixpoint::new(
                CachedAnswer::CfaSrc(SendCfa::from_result(&fresh)),
                DegradationReport::default(),
            )
        };
        let one = value().approx_bytes;
        assert!(one > 0);
        // Room for exactly two entries.
        let mut cache = FixpointCache::new(2 * one);
        let key = |d: u128| CacheKey::full(AnalysisKind::CfaSrc, SolverMode::Seq, d);
        assert!(cache.insert(key(1), value()));
        assert!(cache.insert(key(2), value()));
        assert_eq!(cache.len(), 2);
        // Touch key 1 so key 2 is LRU.
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.insert(key(3), value()));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key(2)).is_none(), "LRU victim evicted");
        assert!(cache.lookup(&key(1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.bytes, 2 * one);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn oversized_and_duplicate_inserts_are_rejected() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let value = || {
            CachedFixpoint::new(
                CachedAnswer::CfaSrc(SendCfa::from_result(&fresh)),
                DegradationReport::default(),
            )
        };
        let one = value().approx_bytes;
        let mut tiny = FixpointCache::new(one / 2);
        let key = CacheKey::full(AnalysisKind::CfaSrc, SolverMode::Seq, 7);
        assert!(!tiny.insert(key, value()), "entry alone exceeds ceiling");
        assert!(tiny.is_empty());
        let mut cache = FixpointCache::new(10 * one);
        assert!(cache.insert(key, value()));
        assert!(!cache.insert(key, value()), "first writer wins");
        assert_eq!(cache.stats().rejects, 1);
    }

    #[test]
    fn degraded_rung_key_never_shadows_the_full_key() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let mut cache = FixpointCache::new(u64::MAX);
        let degraded = CacheKey::for_rung(AnalysisKind::CfaCps, SolverMode::Seq, 42, "cfa.src");
        assert_ne!(
            degraded,
            CacheKey::full(AnalysisKind::CfaCps, SolverMode::Seq, 42)
        );
        cache.insert(
            degraded,
            CachedFixpoint::new(
                CachedAnswer::CfaSrc(SendCfa::from_result(&fresh)),
                DegradationReport::default(),
            ),
        );
        assert!(
            cache
                .lookup(&CacheKey::full(AnalysisKind::CfaCps, SolverMode::Seq, 42))
                .is_none(),
            "full-precision lookup must miss a degraded-rung entry"
        );
    }

    #[test]
    fn remove_frees_bytes_and_counts_an_eviction() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let mut cache = FixpointCache::new(u64::MAX);
        let key = CacheKey::full(AnalysisKind::CfaSrc, SolverMode::Seq, 11);
        cache.insert(
            key,
            CachedFixpoint::new(
                CachedAnswer::CfaSrc(SendCfa::from_result(&fresh)),
                DegradationReport::default(),
            ),
        );
        assert!(cache.remove(&key).is_some());
        assert!(cache.remove(&key).is_none());
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.stats().evictions, 1);
        // The key is insertable again — eviction must not poison it.
        assert!(cache.insert(
            key,
            CachedFixpoint::new(
                CachedAnswer::CfaSrc(SendCfa::from_result(&fresh)),
                DegradationReport::default(),
            ),
        ));
    }

    fn dummy_ancestor(fresh: &crate::cfa::CfaResult) -> Ancestor {
        Ancestor {
            kind: AnalysisKind::CfaSrc,
            digest: 1,
            source: String::new(),
            fixpoint: Arc::new(CachedFixpoint::new(
                CachedAnswer::CfaSrc(SendCfa::from_result(fresh)),
                DegradationReport::default(),
            )),
        }
    }

    #[test]
    fn expired_sessions_are_reaped_and_counted() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let mut cache = FixpointCache::new(u64::MAX);
        cache.set_session_ttl(Some(std::time::Duration::from_millis(20)));
        cache.note_ancestor(1, dummy_ancestor(&fresh));
        assert!(cache.ancestor(1).is_some(), "fresh session is warm");
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert!(cache.ancestor(1).is_none(), "expired session reads cold");
        assert_eq!(cache.ancestor_count(), 0);
        assert_eq!(cache.stats().session_ttl_evictions, 1);
        // A touch within the TTL refreshes the deadline.
        cache.note_ancestor(2, dummy_ancestor(&fresh));
        std::thread::sleep(std::time::Duration::from_millis(12));
        assert!(cache.ancestor(2).is_some());
        std::thread::sleep(std::time::Duration::from_millis(12));
        assert!(cache.ancestor(2).is_some(), "refreshed deadline holds");
    }

    #[test]
    fn without_a_ttl_sessions_never_expire() {
        let p = AnfProgram::parse("(let (f (lambda (x) x)) (f f))").unwrap();
        let fresh = zero_cfa(&p).unwrap();
        let mut cache = FixpointCache::new(u64::MAX);
        cache.note_ancestor(1, dummy_ancestor(&fresh));
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(cache.ancestor(1).is_some());
        assert!(cache.evict_session(1));
        assert!(!cache.evict_session(1));
        assert!(cache.ancestor(1).is_none());
        assert_eq!(cache.stats().session_ttl_evictions, 0);
    }

    #[test]
    fn stats_round_trip_through_a_trace_agg() {
        let mut stats = CacheStats {
            hits: 5,
            misses: 3,
            inserts: 3,
            evictions: 1,
            rejects: 2,
            bytes: 4096,
            entries: 2,
            ceiling_bytes: 1 << 20,
            certify_ok: 9,
            certify_fail: 1,
            persist_recovered: 4,
            persist_corrupt: 2,
            persist_evicted_bytes: 512,
            session_ttl_evictions: 3,
        };
        let mut agg = AggSink::new();
        stats.emit_into(&mut agg, "cache");
        assert_eq!(CacheStats::from_agg(&agg, "cache"), stats);
        stats.hits += 1;
        assert_ne!(CacheStats::from_agg(&agg, "cache"), stats);
    }
}
